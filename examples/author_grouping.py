"""The paper's evaluation (Sec. 6) end to end: experiments E1 and E2.

Generates a synthetic DBLP-journals database, runs the titles-by-author
and count-by-author queries under the direct baselines and the GROUPBY
plan, and prints the comparison against the paper's reference numbers.

Run:  python examples/author_grouping.py [scale]
      scale (float, default 1.0) multiplies the default workload size.
"""

import sys

from repro.bench import (
    DEFAULT_CONFIG,
    format_report,
    format_scaling,
    run_experiment1,
    run_experiment2,
    run_scaling,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    config = DEFAULT_CONFIG.scaled(scale)

    print(format_report(run_experiment1(config), "E1"))
    print()
    print(format_report(run_experiment2(config), "E2"))
    print()
    print(format_scaling(run_scaling(scales=(0.25, 0.5, 1.0), base=config)))


if __name__ == "__main__":
    main()
