"""Persistence: build an on-disk database, close it, reopen it, query it.

Shows the storage substrate doing its job: 8 KB slotted pages in
``data.pages``, the catalog in ``meta.json``, checksummed reads, and the
buffer pool absorbing repeated access.

Run:  python examples/persistent_store.py
"""

import os
import shutil
import tempfile

from repro import Database
from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_COUNT


def main() -> None:
    directory = tempfile.mkdtemp(prefix="timber-py-")
    try:
        print(f"database directory: {directory}")
        with Database(directory=directory) as db:
            db.load(tree=generate_dblp(DBLPConfig(n_articles=300, n_authors=80)), name="bib.xml")
            print(f"loaded {db.store.n_nodes()} nodes "
                  f"across {db.store.disk.n_pages} pages")

        size = os.path.getsize(os.path.join(directory, "data.pages"))
        print(f"page file on disk: {size} bytes")

        # Reopen: metadata comes back from meta.json, records from pages,
        # indexes are rebuilt with one sequential scan.
        with Database(directory=directory) as db:
            print(f"reopened with documents: {db.documents()}")
            result = db.query(QUERY_COUNT, plan="groupby")
            print(f"{len(result.collection)} authors, "
                  f"{result.statistics['physical_reads']} physical page reads, "
                  f"buffer hit ratio "
                  f"{result.statistics['hits'] / max(1, result.statistics['hits'] + result.statistics['misses']):.2%}")
            print()
            print(list(result.collection)[0].sketch())
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
