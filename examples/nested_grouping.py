"""Two-level grouping: the third query of the paper's introduction.

"For instance, we may be interested in grouping by both author and
institution" — institutions on the outside, authors within, titles
innermost.  Two routes are shown:

1. the query as written, evaluated by the engine (the nested XQuery is
   outside the single-level rewrite family, so `auto` falls back to
   direct evaluation);
2. the same result composed *algebraically*: because TAX is closed, a
   second GROUPBY can be applied to the members of each first-level
   group — the group trees are ordinary trees.

Run:  python examples/nested_grouping.py
"""

from repro import Database
from repro.core import GroupBy, Selection, Projection
from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.pattern import Axis, PatternNode, PatternTree, tag
from repro.xmlmodel import Collection, DataTree, XMLNode

NESTED_QUERY = """
FOR $i IN distinct-values(document("bib.xml")//institution)
RETURN
<instpubs>
{$i}
{
FOR $a IN distinct-values(document("bib.xml")//author)
WHERE $i = $a/institution
RETURN
<authorpubs>
{$a}
{
FOR $b IN document("bib.xml")//article
WHERE $a = $b/author
RETURN $b/title
}
</authorpubs>
}
</instpubs>
"""


def institution_pattern() -> PatternTree:
    root = PatternNode("$1", tag("article"))
    author = root.add("$2", tag("author"), Axis.PC)
    author.add("$3", tag("institution"), Axis.PC)
    return PatternTree(root)


def author_pattern() -> PatternTree:
    root = PatternNode("$1", tag("article"))
    root.add("$2", tag("author"), Axis.PC)
    return PatternTree(root)


def algebraic_nested_grouping(db: Database) -> list[XMLNode]:
    """Compose GROUPBY twice over the article collection."""
    # Articles with their full subtrees (Fig. 9's shape).
    doc_pattern_root = PatternNode("$1", tag("doc_root"))
    doc_pattern_root.add("$2", tag("article"), Axis.AD)
    doc_pattern = PatternTree(doc_pattern_root)
    info = db.store.document("bib.xml")
    database = Collection([DataTree(db.store.materialize(info.root_nid))])
    articles = Projection(doc_pattern, ["$2*"]).apply(
        Selection(doc_pattern, {"$2"}).apply(database)
    )

    # Level 1: group articles by institution.
    by_institution = GroupBy(institution_pattern(), ["$3"]).apply(articles)

    output: list[XMLNode] = []
    for group in by_institution:
        basis, subroot = group.root.children
        institution = basis.children[0]
        # Closure at work: the group's members are an ordinary collection
        # that the next GROUPBY consumes directly.  Two same-institution
        # authors on one article put it in the group twice; dedup by the
        # stored node id (the "dup-elim based on articles" of Sec. 4.1).
        member_trees = []
        seen_members: set[int] = set()
        for member in subroot.children:
            if member.nid in seen_members:
                continue
            seen_members.add(member.nid)
            member_trees.append(DataTree(member))
        members = Collection(member_trees)
        by_author = GroupBy(author_pattern(), ["$2"]).apply(members)

        inst_node = XMLNode("instpubs")
        inst_node.append_child(XMLNode("institution", institution.content))
        for author_group in by_author:
            author_basis, author_subroot = author_group.root.children
            # Keep only authors of this institution (the member articles
            # carry all their authors).
            author_name = author_basis.children[0].content
            if not _author_in_institution(author_subroot, author_name, institution.content):
                continue
            pubs = inst_node.add("authorpubs")
            pubs.append_child(author_basis.children[0].deep_copy())
            for member in author_subroot.children:
                title = member.find("title")
                if title is not None:
                    pubs.append_child(title.deep_copy())
        output.append(inst_node)
    return output


def _author_in_institution(subroot: XMLNode, author: str, institution: str) -> bool:
    for member in subroot.children:
        for candidate in member.findall("author"):
            if candidate.content == author:
                inst = candidate.find("institution")
                if inst is not None and inst.content == institution:
                    return True
    return False


def main() -> None:
    config = DBLPConfig(n_articles=40, n_authors=10, seed=3, with_institutions=True)
    db = Database()
    db.load(tree=generate_dblp(config), name="bib.xml")

    result = db.query(NESTED_QUERY, plan="auto")
    print(f"engine route: {result.plan_mode} plan, {len(result.collection)} institutions")
    print(result.collection[0].sketch())

    print("\nalgebraic route (two composed GROUPBYs):")
    composed = algebraic_nested_grouping(db)
    print(composed[0].sketch())

    # Cross-check: same institutions, same author/title sets.
    engine_summary = _summarize(tree.root for tree in result.collection)
    algebra_summary = _summarize(composed)
    assert engine_summary == algebra_summary, "routes disagree"
    print("\nboth routes agree on every institution/author/title set")


def _summarize(trees) -> dict:
    summary = {}
    for tree in trees:
        inst = tree.children[0].content
        authors = {}
        for pubs in tree.children[1:]:
            name = pubs.children[0].content
            titles = frozenset(c.content for c in pubs.children[1:] if c.tag == "title")
            authors[name] = titles
        summary[inst] = authors
    return summary


if __name__ == "__main__":
    main()
