"""Quickstart: load a bibliography, run the paper's Query 1, compare engines.

Run:  python examples/quickstart.py
"""

from repro import Database
from repro.datagen.sample import QUERY_1, QUERY_COUNT, figure6_database

from repro.xmlmodel import serialize


def main() -> None:
    db = Database()  # in-memory; pass directory="..." to persist
    db.load(tree=figure6_database(), name="bib.xml")

    print("=== the database (Fig. 6 of the paper) ===")
    info = db.store.document("bib.xml")
    print(serialize(db.store.materialize(info.root_nid)))

    print("=== the plans the optimizer considers ===")
    print(db.explain(QUERY_1).render())

    print("\n=== Query 1: titles grouped by author ===")
    result = db.query(QUERY_1)  # auto mode: rewritten to the GROUPBY plan
    print(f"(executed with the {result.plan_mode!r} plan)")
    print(result.collection.sketch())

    print("\n=== the same query, evaluated directly as written ===")
    direct = db.query(QUERY_1, plan="direct")
    assert direct.collection.structurally_equal(result.collection)
    print("direct execution produced identical results "
          f"({direct.elapsed_seconds:.4f}s vs {result.elapsed_seconds:.4f}s)")

    print("\n=== the COUNT variant ===")
    counted = db.query(QUERY_COUNT)
    print(counted.collection.sketch())

    print("\n=== EXPLAIN ANALYZE: where each plan spends its lookups ===")
    grouped = db.query(QUERY_COUNT, plan="groupby", analyze=True)
    naive = db.query(QUERY_COUNT, plan="naive", analyze=True)
    print(grouped.profile.render())
    print(
        f"\nGROUPBY populated {grouped.profile.total('value_lookups')} values "
        f"and touched {grouped.profile.total('pages_touched')} pages; "
        f"the naive plan needed {naive.profile.total('value_lookups')} values "
        f"and {naive.profile.total('pages_touched')} pages."
    )


if __name__ == "__main__":
    main()
