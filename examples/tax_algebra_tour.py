"""A tour of the TAX algebra: Figs. 1-3 of the paper, operator by operator.

Builds the 'Transaction' bibliography, matches the pattern tree of
Fig. 1, shows the witness trees of Fig. 2, groups them by author with
descending title order as in Fig. 3, and finishes with an aggregation
that counts each author's articles (Sec. 4.3).

Run:  python examples/tax_algebra_tour.py
"""

from repro.core import (
    AggregateFunction,
    Aggregation,
    GroupBy,
    Selection,
    UpdatePosition,
    UpdateSpec,
)
from repro.datagen.sample import transaction_database
from repro.pattern import Axis, ContentWildcard, PatternNode, PatternTree, conjoin, tag
from repro.xmlmodel import Collection, DataTree


def fig1_pattern() -> PatternTree:
    """$1[article] with pc edges to $2[title ~ *Transaction*] and $3[author]."""
    root = PatternNode("$1", tag("article"))
    root.add("$2", conjoin(tag("title"), ContentWildcard("*Transaction*")), Axis.PC)
    root.add("$3", tag("author"), Axis.PC)
    return PatternTree(root)


def main() -> None:
    database = Collection([DataTree(transaction_database())])
    pattern = fig1_pattern()
    print("=== the pattern tree (Fig. 1) ===")
    print(pattern.sketch())

    # Selection returns one witness tree per embedding (Fig. 2): the
    # two-author article yields two witnesses.
    witnesses = Selection(pattern, selection_list={"$2", "$3"}).apply(database)
    print(f"\n=== witness trees (Fig. 2): {len(witnesses)} matches ===")
    print(witnesses.sketch())

    # Grouping by author content, each group ordered by descending title
    # (Fig. 3).  Note the article with two authors appears in two groups.
    groups = GroupBy(
        fig1_pattern(),
        grouping_basis=["$3"],
        ordering=[("$2", "DESCENDING")],
    ).apply(witnesses)
    print(f"\n=== grouped by author (Fig. 3): {len(groups)} groups ===")
    print(groups.sketch())

    # Aggregation (Sec. 4.3): count each group's members and append the
    # result after the last child of the group root.
    count_pattern_root = PatternNode("$1", tag("tax_group_root"))
    subroot = count_pattern_root.add("$2", tag("tax_group_subroot"), Axis.PC)
    subroot.add("$3", tag("article"), Axis.PC)
    counted = Aggregation(
        PatternTree(count_pattern_root),
        AggregateFunction.COUNT,
        source_label="$3",
        new_tag="articles",
        update=UpdateSpec(UpdatePosition.AFTER_LAST_CHILD, "$1"),
    ).apply(groups)
    print("\n=== with per-group COUNT aggregation ===")
    print(counted.sketch())


if __name__ == "__main__":
    main()
