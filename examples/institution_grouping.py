"""Grouping by a nested path: the institution variant of Sec. 1.

"The rich structure of XML allows complex grouping specification.  For
example, we could modify the above query to group not by author but by
author's institution."  The join value here lives two steps below the
article (``article/author/institution``), which exercises the
multi-step condition chain in the join-plan pattern tree and in the
GROUPBY input pattern.

Run:  python examples/institution_grouping.py
"""

from repro import Database
from repro.datagen.dblp import DBLPConfig, generate_dblp

INSTITUTION_QUERY = """
FOR $i IN distinct-values(document("bib.xml")//institution)
RETURN
<instpubs>
{$i}
{
FOR $b IN document("bib.xml")//article
WHERE $i = $b/author/institution
RETURN $b/title
}
</instpubs>
"""


def main() -> None:
    config = DBLPConfig(n_articles=120, n_authors=40, seed=11, with_institutions=True)
    db = Database()
    db.load(tree=generate_dblp(config), name="bib.xml")

    print("=== plans ===")
    print(db.explain(INSTITUTION_QUERY))

    grouped = db.query(INSTITUTION_QUERY, plan="groupby")
    direct = db.query(INSTITUTION_QUERY, plan="direct")
    assert grouped.collection.structurally_equal(direct.collection), (
        "engines disagree on the institution grouping"
    )

    print(f"\n{len(grouped.collection)} institutions "
          f"(groupby {grouped.elapsed_seconds:.4f}s, direct {direct.elapsed_seconds:.4f}s)")
    for tree in list(grouped.collection)[:3]:
        print()
        print(tree.sketch())


if __name__ == "__main__":
    main()
