"""The Query Optimizer box (Fig. 12): estimates, annotated plans, and
the rewrite decision.

Builds databases at three scales, shows the verbose explain output with
per-operator cardinality/cost annotations, and checks that the
optimizer's estimated advantage tracks the measured lookup ratio.

Run:  python examples/optimizer_tour.py
"""

from repro.bench.harness import build_database, measured_run
from repro.datagen.dblp import DBLPConfig
from repro.datagen.sample import QUERY_1
from repro.query.estimate import CardinalityEstimator


def main() -> None:
    config = DBLPConfig(n_articles=300, n_authors=90, seed=7)
    db, profile = build_database(config)
    print(
        f"workload: {profile.n_articles} articles, "
        f"{profile.n_distinct_authors} distinct authors, {profile.n_nodes} nodes\n"
    )

    print(db.explain(QUERY_1, verbose=True))

    estimator = CardinalityEstimator(db.store, db.indexes)
    naive, grouped = db.plans_for(QUERY_1)
    choice = estimator.compare_plans(naive, grouped)

    measured_naive = measured_run(db, "naive", QUERY_1, "naive")
    measured_grouped = measured_run(db, "groupby", QUERY_1, "groupby")
    measured_ratio = (
        measured_naive.statistics["record_lookups"]
        / measured_grouped.statistics["record_lookups"]
    )

    print()
    print(f"optimizer's estimated advantage: {choice.advantage:.1f}x")
    print(f"measured record-lookup ratio:    {measured_ratio:.1f}x")
    assert choice.winner == "groupby"
    within = max(choice.advantage, measured_ratio) / min(choice.advantage, measured_ratio)
    print(f"estimate within {within:.1f}x of measurement")

    # Value predicates change the estimates: an equality filter on the
    # author cuts the expected witnesses by 1/distinct.
    from repro.pattern import ContentEquals, PatternNode, PatternTree, conjoin, tag

    name, _ = db.indexes.distinct_values("author")[0]
    root = PatternNode("$1", conjoin(tag("author"), ContentEquals(name)))
    print(
        f"\nselectivity: //author[.='{name}'] estimated at "
        f"{estimator.pattern_cardinality(PatternTree(root)):.1f} matches "
        f"(uniformity over {profile.n_distinct_authors} distinct authors)"
    )


if __name__ == "__main__":
    main()
