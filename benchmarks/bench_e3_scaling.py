"""E3 — scaling sweep (extension; the paper reports one database size).

Benchmarks the GROUPBY plan and the hash-join direct baseline at three
database scales; the grouping advantage must persist (and the
nested-loop baseline's disadvantage grows quadratically — covered at
the default scale only, to keep runtimes sane).
"""

import pytest

from repro.bench.harness import build_database
from repro.datagen.dblp import DBLPConfig
from repro.datagen.sample import QUERY_1

from conftest import BENCH_CONFIG, run_query

SCALES = (0.25, 0.5, 1.0)


@pytest.fixture(scope="module")
def scaled_dbs():
    out = {}
    for scale in SCALES:
        config = BENCH_CONFIG.scaled(scale)
        out[scale] = build_database(config)[0]
    return out


@pytest.mark.parametrize("scale", SCALES)
def test_e3_groupby_scaling(benchmark, scaled_dbs, scale):
    db = scaled_dbs[scale]
    result = benchmark.pedantic(
        run_query, args=(db, QUERY_1, "groupby"), rounds=3, iterations=1
    )
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]


@pytest.mark.parametrize("scale", SCALES)
def test_e3_direct_hash_scaling(benchmark, scaled_dbs, scale):
    db = scaled_dbs[scale]
    result = benchmark.pedantic(
        run_query, args=(db, QUERY_1, "naive-hash"), rounds=3, iterations=1
    )
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]
