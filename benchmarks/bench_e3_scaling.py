"""E3 — scaling sweep (extension; the paper reports one database size).

Benchmarks the GROUPBY plan and the hash-join direct baseline at three
database scales; the grouping advantage must persist (and the
nested-loop baseline's disadvantage grows quadratically — covered at
the default scale only, to keep runtimes sane).

The columnar sweep runs the match-stage comparison (columnar staircase
vs object walk) at every scale, recording both timings per scale; at
the largest scale the speedup must clear
:data:`COLUMNAR_SPEEDUP_FLOOR`, and the full E1 results of the two
strategies must be structurally identical (``xmlmodel.diff``).
"""

import pytest

from repro.bench.harness import build_database
from repro.bench.trajectory import record_run
from repro.datagen.dblp import DBLPConfig
from repro.datagen.sample import QUERY_1
from repro.pattern.matcher import StoreMatcher
from repro.xmlmodel.diff import diff_collections

from bench_a1_match_strategies import (
    COLUMNAR_SPEEDUP_FLOOR,
    binding_nids,
    expansion_pattern,
)
from conftest import BENCH_CONFIG, run_query, time_best

SCALES = (0.25, 0.5, 1.0)
LARGEST_SCALE = max(SCALES)


@pytest.fixture(scope="module")
def scaled_dbs():
    out = {}
    for scale in SCALES:
        config = BENCH_CONFIG.scaled(scale)
        out[scale] = build_database(config)[0]
    return out


@pytest.mark.parametrize("scale", SCALES)
def test_e3_groupby_scaling(benchmark, scaled_dbs, scale):
    db = scaled_dbs[scale]
    result = benchmark.pedantic(
        run_query, args=(db, QUERY_1, "groupby"), rounds=3, iterations=1
    )
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]


@pytest.mark.parametrize("scale", SCALES)
def test_e3_direct_hash_scaling(benchmark, scaled_dbs, scale):
    db = scaled_dbs[scale]
    result = benchmark.pedantic(
        run_query, args=(db, QUERY_1, "naive-hash"), rounds=3, iterations=1
    )
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]


# ----------------------------------------------------------------------
# Columnar hot path scaling
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scale", SCALES)
def test_e3_columnar_match_scaling(scaled_dbs, scale):
    """Match-stage columnar vs object walk, per scale; the largest
    scale must clear the ISSUE's speedup floor."""
    db = scaled_dbs[scale]
    table = db.indexes.ensure_columnar()
    columnar = StoreMatcher(db.store, db.indexes, columnar=table)
    object_walk = StoreMatcher(db.store, db.indexes)
    pattern = expansion_pattern()

    seconds_columnar, got = time_best(lambda: columnar.match(pattern), rounds=7)
    seconds_object, want = time_best(lambda: object_walk.match(pattern), rounds=7)
    assert binding_nids(got) == binding_nids(want)

    speedup = seconds_object / seconds_columnar
    record_run(
        "e3_match_stage_columnar",
        seconds_columnar,
        scale=scale,
        strategy="columnar",
        witnesses=len(got),
        speedup=round(speedup, 2),
    )
    record_run(
        "e3_match_stage_object_walk",
        seconds_object,
        scale=scale,
        strategy="object-walk",
        witnesses=len(want),
    )
    if scale == LARGEST_SCALE:
        assert speedup >= COLUMNAR_SPEEDUP_FLOOR, (
            f"columnar match stage only {speedup:.2f}x faster at scale {scale} "
            f"({seconds_columnar * 1000:.2f}ms vs {seconds_object * 1000:.2f}ms)"
        )


def test_e3_columnar_identity_at_largest_scale(scaled_dbs):
    """Full E1 results, columnar vs forced object walk, must be
    structurally identical at the largest scale."""
    fallback_db = build_database(
        BENCH_CONFIG.scaled(LARGEST_SCALE), columnar=False
    )[0]
    columnar = run_query(scaled_dbs[LARGEST_SCALE], QUERY_1, "groupby").collection
    fallback = run_query(fallback_db, QUERY_1, "groupby").collection
    assert diff_collections(columnar, fallback) is None
