"""E3 — scaling sweep (extension; the paper reports one database size).

Benchmarks the GROUPBY plan and the hash-join direct baseline at three
database scales; the grouping advantage must persist (and the
nested-loop baseline's disadvantage grows quadratically — covered at
the default scale only, to keep runtimes sane).

The columnar sweep runs the match-stage comparison (columnar staircase
vs object walk) at every scale, recording both timings per scale; at
the largest scale the speedup must clear
:data:`COLUMNAR_SPEEDUP_FLOOR`, and the full E1 results of the two
strategies must be structurally identical (``xmlmodel.diff``).
"""

import pytest

from repro.bench.harness import build_database
from repro.bench.trajectory import record_run
from repro.datagen.dblp import DBLPConfig
from repro.datagen.sample import QUERY_1
from repro.pattern.matcher import StoreMatcher
from repro.xmlmodel.diff import diff_collections

from bench_a1_match_strategies import (
    COLUMNAR_SPEEDUP_FLOOR,
    binding_nids,
    expansion_pattern,
)
from conftest import BENCH_CONFIG, run_query, time_best

SCALES = (0.25, 0.5, 1.0)
LARGEST_SCALE = max(SCALES)


@pytest.fixture(scope="module")
def scaled_dbs():
    out = {}
    for scale in SCALES:
        config = BENCH_CONFIG.scaled(scale)
        out[scale] = build_database(config)[0]
    return out


@pytest.mark.parametrize("scale", SCALES)
def test_e3_groupby_scaling(benchmark, scaled_dbs, scale):
    db = scaled_dbs[scale]
    result = benchmark.pedantic(
        run_query, args=(db, QUERY_1, "groupby"), rounds=3, iterations=1
    )
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]


@pytest.mark.parametrize("scale", SCALES)
def test_e3_direct_hash_scaling(benchmark, scaled_dbs, scale):
    db = scaled_dbs[scale]
    result = benchmark.pedantic(
        run_query, args=(db, QUERY_1, "naive-hash"), rounds=3, iterations=1
    )
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]


# ----------------------------------------------------------------------
# Columnar hot path scaling
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scale", SCALES)
def test_e3_columnar_match_scaling(scaled_dbs, scale):
    """Match-stage columnar vs object walk, per scale; the largest
    scale must clear the ISSUE's speedup floor."""
    db = scaled_dbs[scale]
    table = db.indexes.ensure_columnar()
    columnar = StoreMatcher(db.store, db.indexes, columnar=table)
    object_walk = StoreMatcher(db.store, db.indexes)
    pattern = expansion_pattern()

    seconds_columnar, got = time_best(lambda: columnar.match(pattern), rounds=7)
    seconds_object, want = time_best(lambda: object_walk.match(pattern), rounds=7)
    assert binding_nids(got) == binding_nids(want)

    speedup = seconds_object / seconds_columnar
    record_run(
        "e3_match_stage_columnar",
        seconds_columnar,
        scale=scale,
        strategy="columnar",
        witnesses=len(got),
        speedup=round(speedup, 2),
    )
    record_run(
        "e3_match_stage_object_walk",
        seconds_object,
        scale=scale,
        strategy="object-walk",
        witnesses=len(want),
    )
    if scale == LARGEST_SCALE:
        assert speedup >= COLUMNAR_SPEEDUP_FLOOR, (
            f"columnar match stage only {speedup:.2f}x faster at scale {scale} "
            f"({seconds_columnar * 1000:.2f}ms vs {seconds_object * 1000:.2f}ms)"
        )


def test_e3_columnar_identity_at_largest_scale(scaled_dbs):
    """Full E1 results, columnar vs forced object walk, must be
    structurally identical at the largest scale."""
    fallback_db = build_database(
        BENCH_CONFIG.scaled(LARGEST_SCALE), columnar=False
    )[0]
    columnar = run_query(scaled_dbs[LARGEST_SCALE], QUERY_1, "groupby").collection
    fallback = run_query(fallback_db, QUERY_1, "groupby").collection
    assert diff_collections(columnar, fallback) is None


# ----------------------------------------------------------------------
# Cost-based optimizer: costed AUTO vs the old heuristic AUTO
# ----------------------------------------------------------------------
#: Generous noise bound for same-plan timing comparisons at bench scale.
OPTIMIZER_NOISE_FACTOR = 2.0


@pytest.mark.parametrize("scale", SCALES)
def test_e3_optimizer_vs_heuristic(scale):
    """AUTO with the cost model on vs off, per scale: both trajectories
    are recorded, and the costed choice must never be slower than the
    old always-rewrite heuristic beyond noise."""
    from conftest import timed_query

    config = BENCH_CONFIG.scaled(scale)
    costed_db = build_database(config)[0]
    heuristic_db = build_database(config, optimizer=False)[0]

    seconds_costed, costed = timed_query(
        costed_db, QUERY_1, "auto", bench="e3_auto_optimizer_on", scale=scale
    )
    seconds_heuristic, heuristic = timed_query(
        heuristic_db, QUERY_1, "auto", bench="e3_auto_optimizer_off", scale=scale
    )
    assert diff_collections(costed.collection, heuristic.collection) is None
    assert seconds_costed <= seconds_heuristic * OPTIMIZER_NOISE_FACTOR, (
        f"costed AUTO {seconds_costed * 1000:.2f}ms vs heuristic "
        f"{seconds_heuristic * 1000:.2f}ms at scale {scale}"
    )


def test_e3_optimizer_picks_cheapest_candidate():
    """At the default scale the chosen plan's cost is the candidate
    minimum, and EXPLAIN carries at least one rejected alternative."""
    db = build_database(BENCH_CONFIG)[0]
    cost = db.explain(QUERY_1).to_dict()["cost_model"]
    assert cost["enabled"] and cost["costed"]
    costs = {c["name"]: c["cost"] for c in cost["candidates"]}
    assert cost["chosen"]["cost"] == min(costs.values())
    assert len(costs) >= 2
