"""A3 — ablation: buffer-pool sensitivity.

The paper fixes a 32 MB pool on a 256 MB machine so the data does not
fully fit.  We sweep the frame budget from starved to ample on an
on-disk database and benchmark the GROUPBY plan from a cold cache; the
physical-read count falls as frames grow.
"""

import os

import pytest

from repro.datagen.dblp import generate_dblp
from repro.datagen.sample import QUERY_1
from repro.query.database import Database

from conftest import BENCH_CONFIG

FRAME_BUDGETS = (2, 8, 64, 512)


@pytest.fixture(scope="module")
def disk_db_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("a3") / "db")
    with Database(directory=directory) as db:
        db.load(tree=generate_dblp(BENCH_CONFIG), name="bib.xml")
    return directory


def cold_run(directory: str, frames: int):
    with Database(directory=directory, pool_frames=frames) as db:
        db.store.pool.clear()
        db.store.reset_statistics()
        return db.query(QUERY_1, plan="groupby", reset_statistics=False)


@pytest.mark.parametrize("frames", FRAME_BUDGETS)
def test_a3_pool_budget(benchmark, disk_db_dir, frames):
    result = benchmark.pedantic(
        cold_run, args=(disk_db_dir, frames), rounds=3, iterations=1
    )
    benchmark.extra_info["frames"] = frames
    benchmark.extra_info["physical_reads"] = result.statistics["physical_reads"]


def test_a3_more_frames_fewer_reads(disk_db_dir):
    starved = cold_run(disk_db_dir, 2).statistics["physical_reads"]
    ample = cold_run(disk_db_dir, 512).statistics["physical_reads"]
    assert ample <= starved
    assert os.path.exists(os.path.join(disk_db_dir, "data.pages"))
