"""E6 — throughput under network chaos, and the cost of resilience.

Beyond the paper: the network resilience layer (`repro.service.server`
hardening + `repro.service.client` + `repro.service.chaos`).  Two
questions:

* **clean-path overhead** — queries/sec through the full TCP stack
  with a transparent :class:`ChaosProxy` in the path, versus a direct
  connection.  The proxy (and the client's retry/breaker machinery)
  should cost little when nothing fails;
* **throughput under a storm** — the same workload through a seeded
  chaotic plan.  Recorded, not asserted: chaos qps depends on the
  fault mix.  What *is* asserted is the resilience contract — every
  failure is a typed :class:`~repro.errors.ClientError`, some requests
  still succeed, and after ``heal()`` the service answers cleanly with
  the breaker closed.

All fault/retry/breaker counts land in ``extra_info`` so a regression
in retry behavior is visible across runs.
"""

from __future__ import annotations

import time

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1, QUERY_2
from repro.errors import ClientError
from repro.query.database import Database
from repro.service import (
    ChaosProxy,
    NetFaultPlan,
    QueryService,
    ServiceConfig,
)
from repro.service.client import BreakerConfig, RetryPolicy, ServiceClient
from repro.service.server import ServerConfig, serve

import pytest

STORM = NetFaultPlan(
    seed=11,
    refuse_rate=0.05,
    reset_rate=0.03,
    delay_rate=0.05,
    delay_seconds=0.002,
    partial_write_rate=0.05,
    truncate_rate=0.02,
)

BATCH = 40  # requests per measured run


@pytest.fixture(scope="module")
def service_stack():
    """A small dedicated db + service + server (module-scoped: the
    resilience benchmarks measure the network edge, not build time)."""
    db = Database()
    db.load(tree=generate_dblp(DBLPConfig(n_articles=40, n_authors=12, seed=5)), name="bib.xml")
    service = QueryService(db, ServiceConfig(workers=4))
    server = serve(service, port=0, config=ServerConfig(poll_interval=0.02))
    server.serve_background()
    yield server
    server.shutdown()
    server.server_close()
    service.close()
    db.close()


def _client(endpoint, read_timeout: float = 5.0) -> ServiceClient:
    return ServiceClient(
        endpoint[0],
        endpoint[1],
        retry=RetryPolicy(max_attempts=6, base_delay=0.01, max_delay=0.1, jitter_seed=7),
        breaker=BreakerConfig(failure_threshold=8, reset_timeout=0.1),
        read_timeout=read_timeout,
    )


def _run_batch(client: ServiceClient) -> tuple[int, int, float]:
    """(successes, typed_failures, elapsed).  Anything untyped raises."""
    successes = failures = 0
    started = time.perf_counter()
    for index in range(BATCH):
        query = QUERY_1 if index % 2 == 0 else QUERY_2
        try:
            payload = client.query(query)
        except ClientError:
            failures += 1
        else:
            assert payload["rows"] > 0
            successes += 1
    return successes, failures, time.perf_counter() - started


def test_e6_clean_path_overhead(benchmark, service_stack):
    """Direct vs transparent-proxy throughput: the resilience stack's
    no-fault cost."""
    direct = _client(service_stack.endpoint)
    successes, failures, direct_elapsed = _run_batch(direct)
    assert failures == 0
    assert successes == BATCH
    direct.close()

    with ChaosProxy(service_stack.endpoint).start() as proxy:
        proxied = _client(proxy.endpoint)

        def measured():
            ok, bad, _ = _run_batch(proxied)
            assert bad == 0 and ok == BATCH

        benchmark.pedantic(measured, rounds=3, iterations=1, warmup_rounds=1)
        assert proxy.fault_counters.total_faults() == 0  # transparent
        proxied.close()
    benchmark.extra_info["direct_qps"] = round(BATCH / direct_elapsed, 2)
    benchmark.extra_info["batch"] = BATCH


def test_e6_throughput_under_storm(benchmark, service_stack):
    """The mixed workload through the seeded storm, then heal and
    verify the post-storm contract."""
    with ChaosProxy(service_stack.endpoint, STORM).start() as proxy:
        client = _client(proxy.endpoint, read_timeout=2.0)
        totals = {"successes": 0, "failures": 0}

        def measured():
            ok, bad, _ = _run_batch(client)
            totals["successes"] += ok
            totals["failures"] += bad

        benchmark.pedantic(measured, rounds=3, iterations=1, warmup_rounds=1)
        assert totals["successes"] > 0, "storm drowned every request"

        # Post-storm contract: heal, and the path is clean again.
        proxy.heal()
        survivor = _client(proxy.endpoint)
        assert survivor.ping() == {"pong": True}
        assert survivor.breaker.state == "closed"
        survivor.close()

        snap = client.counter_snapshot()
        benchmark.extra_info["storm_plan"] = STORM.describe()
        benchmark.extra_info["successes"] = totals["successes"]
        benchmark.extra_info["typed_failures"] = totals["failures"]
        benchmark.extra_info["faults_injected"] = dict(
            proxy.fault_counters.snapshot()
        )
        benchmark.extra_info["client_retries"] = snap["client_retries"]
        benchmark.extra_info["client_reconnects"] = snap["client_reconnects"]
        benchmark.extra_info["breaker_opens"] = snap["client_breaker_opens"]
        client.close()
    server_snap = service_stack.stats()
    assert server_snap["server_handler_crashes"] == 0
