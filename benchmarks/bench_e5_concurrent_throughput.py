"""E5 — concurrent service throughput and cache effectiveness.

Beyond the paper: the service layer (`repro.service`) turns the
embedded engine into a concurrent server.  Two questions:

* **throughput vs worker count** — queries/sec for a fixed batch of
  distinct (uncacheable) query shapes, across 1/2/4/8 workers, recorded
  as ``extra_info["qps_by_workers"]``;
* **warm vs cold latency** — the same repeated query with the result
  cache on vs off.  The acceptance bar: warm repeat-query throughput is
  at least 5x cold.

Pure-Python execution holds the GIL for compute, so qps scaling across
workers is modest — the win of the worker pool here is queueing,
isolation, and cache sharing, and the cache is where the numbers move.
"""

from __future__ import annotations

import time

from repro.datagen.sample import QUERY_1, QUERY_2

from conftest import bench_db  # noqa: F401 - session fixture

from repro.service import QueryService, ServiceConfig

#: Distinct query shapes (different tags => different fingerprints), so
#: the throughput batch cannot be served from the result cache.
_SHAPES = [
    QUERY_1.replace("authorpubs", f"authorpubs{i}") for i in range(4)
] + [QUERY_2.replace("authorpubs", f"byauthor{i}") for i in range(4)]

WORKER_COUNTS = (1, 2, 4, 8)
BATCH = 16  # queries per throughput measurement


def _run_batch(service: QueryService) -> float:
    """Submit BATCH queries (cycling the distinct shapes), wait for all,
    return elapsed seconds."""
    started = time.perf_counter()
    tickets = [
        service.submit(_SHAPES[i % len(_SHAPES)]) for i in range(BATCH)
    ]
    for ticket in tickets:
        assert len(ticket.result(120.0)) > 0
    return time.perf_counter() - started


def test_e5_throughput_vs_workers(benchmark, bench_db):  # noqa: F811
    db, _ = bench_db
    qps_by_workers: dict[int, float] = {}
    for workers in WORKER_COUNTS:
        with QueryService(
            db,
            ServiceConfig(
                workers=workers, queue_depth=BATCH, result_cache_entries=0
            ),
        ) as service:
            _run_batch(service)  # warm the plan cache
            elapsed = _run_batch(service)
        qps_by_workers[workers] = round(BATCH / elapsed, 2)

    def measured():
        with QueryService(
            db, ServiceConfig(workers=4, queue_depth=BATCH, result_cache_entries=0)
        ) as service:
            _run_batch(service)

    benchmark.pedantic(measured, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["qps_by_workers"] = qps_by_workers
    benchmark.extra_info["batch"] = BATCH
    benchmark.extra_info["distinct_shapes"] = len(_SHAPES)


def test_e5_cold_latency(benchmark, bench_db):  # noqa: F811
    """Repeated query with the result cache disabled: every run pays
    full execution."""
    db, _ = bench_db
    with QueryService(
        db, ServiceConfig(workers=1, result_cache_entries=0)
    ) as service:
        service.query(QUERY_1)  # plan cache warm, results never cached
        outcome = benchmark.pedantic(
            service.query, args=(QUERY_1,), rounds=5, iterations=1, warmup_rounds=1
        )
        assert not outcome.cached
        benchmark.extra_info["result_cache"] = "disabled"


def test_e5_warm_latency(benchmark, bench_db):  # noqa: F811
    """The same repeated query served from the result cache."""
    db, _ = bench_db
    with QueryService(db, ServiceConfig(workers=1)) as service:
        service.query(QUERY_1)  # populate
        outcome = benchmark.pedantic(
            service.query, args=(QUERY_1,), rounds=5, iterations=1, warmup_rounds=1
        )
        assert outcome.cached
        benchmark.extra_info["result_cache"] = "enabled"
        benchmark.extra_info["hit_rate"] = round(service.cache_hit_rate(), 3)


def test_e5_warm_beats_cold_5x(bench_db):
    """The acceptance criterion, asserted directly (not just recorded):
    warm repeat-query throughput >= 5x cold."""
    db, _ = bench_db
    repeats = 5
    with QueryService(
        db, ServiceConfig(workers=1, result_cache_entries=0)
    ) as service:
        service.query(QUERY_1)
        started = time.perf_counter()
        for _ in range(repeats):
            assert not service.query(QUERY_1).cached
        cold = time.perf_counter() - started
    with QueryService(db, ServiceConfig(workers=1)) as service:
        service.query(QUERY_1)
        started = time.perf_counter()
        for _ in range(repeats):
            assert service.query(QUERY_1).cached
        warm = time.perf_counter() - started
    speedup = cold / warm
    assert speedup >= 5.0, f"warm path only {speedup:.1f}x faster than cold"
