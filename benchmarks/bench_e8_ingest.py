"""E8 — streaming ingest (extension; no paper analogue).

Measures the three claims the ingest subsystem makes:

* **identity** — an N-batch streaming load answers E1/E2 structurally
  identically to a whole-document load of the same text (checked via
  :mod:`repro.xmlmodel.diff` on every measured round);
* **online reads** — four reader threads querying through the
  :class:`~repro.service.service.QueryService` keep at least half
  their quiescent throughput while a second document streams in
  (the write gate is per *batch*, not per load);
* **incremental maintenance** — committing each batch by updating the
  tag/value/statistics/columnar structures in place beats rebuilding
  them from scratch per batch by a measured factor.

All rows land in the benchmark trajectory under ``ingest-*`` ids.
Wall-clock ratio assertions live in tests named ``floor``/``speedup``
so smoke jobs on shared runners can exclude them with ``-k``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.datagen.dblp import generate_dblp
from repro.datagen.sample import QUERY_1, QUERY_2
from repro.observability import snapshot_counters
from repro.query.database import Database
from repro.service.service import QueryService, ServiceConfig
from repro.xmlmodel.diff import assert_collections_equal
from repro.xmlmodel.serialize import serialize
from repro.bench.trajectory import record_run

from conftest import BENCH_CONFIG

# Half the E1-E3 scale: ingest cost is linear in nodes, and the
# rebuild-per-batch baseline is quadratic-ish (it rebuilds over all
# committed nodes every batch), so this keeps the suite in seconds.
INGEST_CONFIG = BENCH_CONFIG.scaled(0.5)
BATCH_NODES = 512
READERS = 4


@pytest.fixture(scope="module")
def corpus_text():
    return serialize(generate_dblp(INGEST_CONFIG), indent=None)


@pytest.fixture(scope="module")
def whole_doc(corpus_text):
    db = Database()
    db.load(text=corpus_text, name="bib.xml")
    return db


def test_e8_ingest_identity(corpus_text, whole_doc):
    """N-batch streaming load == whole-document load, per E1 and E2."""
    db = Database()
    started = time.perf_counter()
    report = db.load(text=corpus_text, name="bib.xml", batch_size=BATCH_NODES)
    elapsed = time.perf_counter() - started
    assert report.batches > 2
    assert report.nodes == report.nodes_streamed
    for query in (QUERY_1, QUERY_2):
        assert_collections_equal(
            whole_doc.query(query).collection, db.query(query).collection
        )
    assert db.verify().ok
    counters = snapshot_counters(db.store, db.indexes)
    assert counters["ingest_batches_committed"] == report.batches
    assert counters["index_incremental_updates"] > 0
    assert counters["index_rebuild_avoided"] > 0
    record_run(
        "ingest-identity",
        elapsed,
        nodes=report.nodes,
        batches=report.batches,
        nodes_per_second=round(report.nodes / elapsed),
        counters={
            key: counters[key]
            for key in (
                "ingest_batches_committed",
                "ingest_nodes_streamed",
                "index_incremental_updates",
                "index_rebuild_avoided",
            )
        },
    )


def _reader_qps(service, stop, seconds=None):
    """Aggregate qps of READERS threads running E1 until ``stop`` is
    set (or for ``seconds`` when driving the quiescent baseline)."""
    counts = [0] * READERS

    def run(slot):
        while not stop.is_set():
            service.query(QUERY_1)
            counts[slot] += 1

    threads = [
        threading.Thread(target=run, args=(slot,), daemon=True)
        for slot in range(READERS)
    ]
    started = time.perf_counter()
    for worker in threads:
        worker.start()
    if seconds is not None:
        time.sleep(seconds)
        stop.set()
    for worker in threads:
        worker.join()
    elapsed = time.perf_counter() - started
    return sum(counts) / elapsed


def test_e8_reader_qps_floor_during_ingest(corpus_text):
    """Readers keep >= 50% of quiescent throughput mid-ingest."""
    # The incoming document is 4x the served one and cut into small
    # batches, so the ingest window is long enough (seconds) for the
    # reader throughput measurement to dominate ramp-up noise.
    incoming = serialize(generate_dblp(BENCH_CONFIG.scaled(2.0)), indent=None)
    db = Database()
    service = QueryService(db, ServiceConfig(workers=READERS))
    try:
        service.load_text(corpus_text, "bib.xml")
        service.query(QUERY_1)  # warm plan/result caches and indexes

        quiescent = _reader_qps(service, threading.Event(), seconds=1.5)

        stop = threading.Event()
        report_box = []

        def ingest():
            # A second document streaming in while the readers run.
            report_box.append(
                service.load_stream(incoming, "incoming.xml", batch_size=2048)
            )
            stop.set()

        writer = threading.Thread(target=ingest, daemon=True)
        writer.start()
        concurrent = _reader_qps(service, stop)
        writer.join()

        report = report_box[0]
        assert report.batches > 4
        ratio = concurrent / quiescent
        record_run(
            "ingest-reader-qps",
            concurrent,
            quiescent_qps=round(quiescent, 1),
            concurrent_qps=round(concurrent, 1),
            ratio=round(ratio, 3),
            readers=READERS,
            batches=report.batches,
        )
        assert ratio >= 0.5, (
            f"reader throughput collapsed during ingest: {concurrent:.1f} "
            f"qps vs {quiescent:.1f} quiescent ({ratio:.0%})"
        )
    finally:
        service.close()


def test_e8_incremental_vs_rebuild_speedup(corpus_text, whole_doc):
    """In-place index maintenance beats rebuild-per-batch."""
    from repro.ingest import IngestSession, chunks_of

    # Small batches: many commits, so the per-batch maintenance
    # strategy dominates the comparison (the rebuild baseline redoes
    # all committed nodes every batch — quadratic in batch count).
    batch_nodes = 128

    # Incremental path: the normal streaming load.
    incremental_db = Database()
    started = time.perf_counter()
    report = incremental_db.load(
        text=corpus_text, name="bib.xml", batch_size=batch_nodes
    )
    incremental = time.perf_counter() - started

    # Baseline: same batches, but every commit rebuilds all four index
    # structures from scratch (what load() did before this subsystem).
    rebuild_db = Database()
    started = time.perf_counter()
    session = IngestSession(
        rebuild_db.store,
        "bib.xml",
        batch_size=batch_nodes,
        on_batch=lambda event: rebuild_db._reindex(),
    )
    for chunk in chunks_of(corpus_text):
        session.feed(chunk)
    session.finish()
    rebuild = time.perf_counter() - started

    # Both databases answer identically (the baseline is correct, just
    # slow) — the factor compares equivalent end states.
    for db in (incremental_db, rebuild_db):
        assert_collections_equal(
            whole_doc.query(QUERY_1).collection, db.query(QUERY_1).collection
        )

    factor = rebuild / incremental
    record_run(
        "ingest-incremental-speedup",
        incremental,
        rebuild_seconds=round(rebuild, 4),
        factor=round(factor, 2),
        batches=report.batches,
        nodes=report.nodes,
    )
    assert factor > 1.5, (
        f"incremental maintenance should beat rebuild-per-batch: "
        f"{incremental:.3f}s vs {rebuild:.3f}s (factor {factor:.2f})"
    )
