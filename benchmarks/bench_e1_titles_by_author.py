"""E1 — Sec. 6, titles grouped by author (paper's Query 1).

Paper reference (DBLP Journals, P-III 550 MHz, 32 MB pool):
direct 323.966 s vs GROUPBY 178.607 s — a 1.81x advantage.

We benchmark three plans: the nested-loops direct baseline (the paper's
wording), the amortized hash-join direct baseline (the paper's
description), and the GROUPBY plan.  The paper's 1.81x sits between the
two baselines' advantages; see EXPERIMENTS.md.
"""

from repro.datagen.sample import QUERY_1

from conftest import run_query


def bench(benchmark, db, plan):
    result = benchmark.pedantic(
        run_query, args=(db, QUERY_1, plan), rounds=3, iterations=1, warmup_rounds=1
    )
    assert len(result.collection) > 0
    return result


def test_e1_direct_nested_loop(benchmark, bench_db):
    db, _ = bench_db
    result = bench(benchmark, db, "naive")
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]


def test_e1_direct_hash_join(benchmark, bench_db):
    db, _ = bench_db
    result = bench(benchmark, db, "naive-hash")
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]


def test_e1_groupby(benchmark, bench_db):
    db, _ = bench_db
    result = bench(benchmark, db, "groupby")
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]
    benchmark.extra_info["paper_seconds"] = {"direct": 323.966, "groupby": 178.607}
