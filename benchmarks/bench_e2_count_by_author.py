"""E2 — Sec. 6, count of articles per author.

Paper reference: direct 155.564 s vs GROUPBY 23.033 s — "more than 6
times as fast".  The output shrinks to counts, the title lookups vanish,
and the grouping plan's identifier-only processing (Sec. 5.3) dominates:
"we can perform the count without physically instantiating the book
elements."
"""

from repro.datagen.sample import QUERY_COUNT

from conftest import run_query


def bench(benchmark, db, plan):
    result = benchmark.pedantic(
        run_query, args=(db, QUERY_COUNT, plan), rounds=3, iterations=1, warmup_rounds=1
    )
    assert len(result.collection) > 0
    return result


def test_e2_direct_nested_loop(benchmark, bench_db):
    db, _ = bench_db
    result = bench(benchmark, db, "naive")
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]


def test_e2_direct_hash_join(benchmark, bench_db):
    db, _ = bench_db
    result = bench(benchmark, db, "naive-hash")
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]


def test_e2_groupby(benchmark, bench_db):
    db, _ = bench_db
    result = bench(benchmark, db, "groupby")
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]
    benchmark.extra_info["paper_seconds"] = {"direct": 155.564, "groupby": 23.033}


def test_e2_groupby_never_materializes_members(bench_db):
    """Late-materialization check, benchmarked as a correctness property:
    the COUNT plan touches no article subtree — only the (leaf) author
    group nodes are built for output."""
    db, _ = bench_db
    result = run_query(db, QUERY_COUNT, "groupby")
    assert result.statistics["nodes_materialized"] == len(result.collection)
