"""E2 — Sec. 6, count of articles per author.

Paper reference: direct 155.564 s vs GROUPBY 23.033 s — "more than 6
times as fast".  The output shrinks to counts, the title lookups vanish,
and the grouping plan's identifier-only processing (Sec. 5.3) dominates:
"we can perform the count without physically instantiating the book
elements."
"""

from repro.datagen.sample import QUERY_COUNT

from conftest import run_query


def bench(benchmark, db, plan):
    result = benchmark.pedantic(
        run_query, args=(db, QUERY_COUNT, plan), rounds=3, iterations=1, warmup_rounds=1
    )
    assert len(result.collection) > 0
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]
    benchmark.extra_info["io_stats"] = dict(result.io_stats)
    return result


def test_e2_direct_nested_loop(benchmark, bench_db):
    db, _ = bench_db
    bench(benchmark, db, "naive")


def test_e2_direct_hash_join(benchmark, bench_db):
    db, _ = bench_db
    bench(benchmark, db, "naive-hash")


def test_e2_groupby(benchmark, bench_db):
    db, _ = bench_db
    bench(benchmark, db, "groupby")
    benchmark.extra_info["paper_seconds"] = {"direct": 155.564, "groupby": 23.033}


def test_e2_analyze_groupby_beats_naive(bench_db):
    """The EXPLAIN ANALYZE view of the paper's E2 result: on the
    count-by-author query the GROUPBY plan populates fewer data values
    and touches fewer buffer pages than the naive join plan."""
    db, _ = bench_db
    naive = run_query(db, QUERY_COUNT, "naive", analyze=True)
    grouped = run_query(db, QUERY_COUNT, "groupby", analyze=True)
    assert naive.profile is not None and grouped.profile is not None
    assert grouped.profile.total("value_lookups") < naive.profile.total("value_lookups")
    assert grouped.profile.total("pages_touched") < naive.profile.total("pages_touched")
    # The profile's counter totals agree with the store's statistics.
    assert grouped.profile.total("value_lookups") == grouped.statistics["value_lookups"]


def test_e2_groupby_never_materializes_members(bench_db):
    """Late-materialization check, benchmarked as a correctness property:
    the COUNT plan touches no article subtree — only the (leaf) author
    group nodes are built for output."""
    db, _ = bench_db
    result = run_query(db, QUERY_COUNT, "groupby")
    assert result.statistics["nodes_materialized"] == len(result.collection)
