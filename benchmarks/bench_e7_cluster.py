"""E7 — sharded cluster scatter-gather (extension; no paper analogue).

Measures the distributed GROUPBY across 1/2/4-shard in-process
topologies on E1 (nested-FLWR grouping) and E2 (LET-based grouping),
asserting on every measured round that the merged answer is
structurally identical to the single-node one.  A final storm kills
one shard of a proxied 2-shard cluster mid-run and measures the
degraded path: strict queries must fail *typed*
(:class:`~repro.errors.PartialResultError`), ``allow_partial`` queries
must keep answering, and healing the proxy must return HEALTH to
``ok``.

All rows land in the benchmark trajectory under ``cluster-*`` ids.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import ClusterConfig, LocalCluster, LocalClusterConfig
from repro.datagen.dblp import generate_dblp
from repro.datagen.sample import QUERY_1, QUERY_2
from repro.errors import ClusterError, PartialResultError
from repro.query.database import Database
from repro.service.client import RetryPolicy
from repro.bench.trajectory import record_run

from conftest import BENCH_CONFIG

# Cluster benches run a reduced scale: every query crosses the wire
# once per shard, so the absolute numbers measure coordination cost,
# not raw plan cost (E1-E3 cover that).
CLUSTER_CONFIG = BENCH_CONFIG.scaled(0.25)
TOPOLOGIES = (1, 2, 4)
QUERIES = {"e1": QUERY_1, "e2": QUERY_2}


@pytest.fixture(scope="module")
def corpus():
    return generate_dblp(CLUSTER_CONFIG)


@pytest.fixture(scope="module")
def single_node(corpus):
    db = Database()
    db.load(tree=corpus.deep_copy(), name="bib.xml")
    return db


@pytest.fixture(scope="module", params=TOPOLOGIES)
def topology(request, corpus):
    shards = request.param
    with LocalCluster(LocalClusterConfig(shards=shards)) as cluster:
        cluster.load(tree=corpus.deep_copy(), name="bib.xml")
        yield shards, cluster


@pytest.mark.parametrize("which", sorted(QUERIES))
def test_e7_cluster_qps(topology, single_node, which):
    shards, cluster = topology
    query = QUERIES[which]
    want = single_node.query(query).collection

    from repro.xmlmodel.diff import assert_collections_equal

    best = float("inf")
    rounds = 3
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = cluster.query(query)
        best = min(best, time.perf_counter() - started)
        assert_collections_equal(want, result.collection)
        assert not result.partial
    record_run(
        f"cluster-{which}-{shards}shard",
        best,
        results=len(result),
        qps=round(1.0 / best, 2),
        shards=shards,
        merge=result.plan_kind,
    )


def test_e7_degraded_storm(corpus, single_node):
    """Kill one shard of a proxied 2-shard cluster mid-storm: typed
    errors only, partial results keep flowing, heal restores ``ok``."""
    config = LocalClusterConfig(
        shards=2,
        cluster=ClusterConfig(
            query_timeout=10.0,
            quarantine_threshold=2,
            probe_interval=0.05,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
            connect_timeout=1.0,
        ),
        proxy_all=True,
    )
    with LocalCluster(config) as cluster:
        cluster.load(tree=corpus.deep_copy(), name="bib.xml")
        want = single_node.query(QUERY_1).collection

        healthy = cluster.query(QUERY_1)
        assert len(healthy) == len(want)

        victim = cluster.shards[1]
        upstream = victim.proxy.upstream
        victim.proxy.close()

        typed, answered, started = 0, 0, time.perf_counter()
        for _ in range(5):
            try:
                cluster.query(QUERY_1)
            except (PartialResultError, ClusterError):
                typed += 1
            partial = cluster.query(QUERY_1, allow_partial=True)
            assert partial.missing_shards == frozenset({1})
            answered += 1
        storm_seconds = time.perf_counter() - started
        assert typed == 5 and answered == 5
        assert cluster.health().status == "degraded"

        # Heal: bring a fresh proxy up on the old upstream and point a
        # new coordinator at it (the old listener port is gone) — the
        # equivalent of the shard's network path coming back.
        from repro.service.chaos import ChaosProxy

        victim.proxy = ChaosProxy(upstream).start()
        endpoints = [stack.endpoint for stack in cluster.shards]
        from repro.cluster import ClusterCoordinator

        fresh = ClusterCoordinator(endpoints, config.cluster)
        try:
            fresh.shard_map._placements.update(  # noqa: SLF001 - bench-only
                cluster.coordinator.shard_map._placements
            )
            recovered = fresh.query(QUERY_1)
            assert not recovered.partial
            assert fresh.health().status == "ok"
        finally:
            fresh.close()
        record_run(
            "cluster-degraded-storm",
            storm_seconds,
            typed_errors=typed,
            partial_answers=answered,
        )
