"""E4 — query variants beyond the paper's two measurements (extensions).

* the **institution** grouping of Sec. 1 (multi-step condition path
  ``article/author/institution``), and
* Query 1 with a user-requested **ordering list** (SORTBY — Fig. 3's
  descending-title groups at query level),

each under the amortized direct baseline and the GROUPBY plan.
"""

import pytest

from repro.bench.harness import build_database
from repro.datagen.dblp import DBLPConfig

from conftest import BENCH_CONFIG, run_query

INSTITUTION_QUERY = """
FOR $i IN distinct-values(document("bib.xml")//institution)
RETURN
<instpubs>
{$i}
{
FOR $b IN document("bib.xml")//article
WHERE $i = $b/author/institution
RETURN $b/title
}
</instpubs>
"""

SORTED_QUERY = """
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
{$a}
{
FOR $b IN document("bib.xml")//article
WHERE $a = $b/author
RETURN $b/title SORTBY(. DESCENDING)
}
</authorpubs>
"""


@pytest.fixture(scope="module")
def inst_db():
    config = DBLPConfig(
        n_articles=BENCH_CONFIG.n_articles,
        n_authors=BENCH_CONFIG.n_authors,
        seed=BENCH_CONFIG.seed,
        with_institutions=True,
    )
    db, _ = build_database(config)
    return db


def test_e4_institution_direct_hash(benchmark, inst_db):
    result = benchmark.pedantic(
        run_query, args=(inst_db, INSTITUTION_QUERY, "naive-hash"), rounds=3, iterations=1
    )
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]


def test_e4_institution_groupby(benchmark, inst_db):
    result = benchmark.pedantic(
        run_query, args=(inst_db, INSTITUTION_QUERY, "groupby"), rounds=3, iterations=1
    )
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]


def test_e4_sorted_direct_hash(benchmark, bench_db):
    db, _ = bench_db
    result = benchmark.pedantic(
        run_query, args=(db, SORTED_QUERY, "naive-hash"), rounds=3, iterations=1
    )
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]


def test_e4_sorted_groupby(benchmark, bench_db):
    db, _ = bench_db
    result = benchmark.pedantic(
        run_query, args=(db, SORTED_QUERY, "groupby"), rounds=3, iterations=1
    )
    benchmark.extra_info["value_lookups"] = result.statistics["value_lookups"]


def test_e4_results_agree(inst_db, bench_db):
    db, _ = bench_db
    for database, query in ((inst_db, INSTITUTION_QUERY), (db, SORTED_QUERY)):
        grouped = run_query(database, query, "groupby").collection
        direct = run_query(database, query, "naive-hash").collection
        assert grouped.structurally_equal(direct)


# ----------------------------------------------------------------------
# 3-level nesting: join-graph isolation collapse
# ----------------------------------------------------------------------
NESTED_3LEVEL_QUERY = """
FOR $i IN distinct-values(document("bib.xml")//institution)
RETURN
<instpubs>
{$i}
{
FOR $a IN distinct-values(document("bib.xml")//author)
WHERE $i = $a/institution
RETURN
<authorpubs>
{$a}
{
FOR $b IN document("bib.xml")//article
WHERE $a = $b/author
RETURN $b/title
}
</authorpubs>
}
</instpubs>
"""


def test_e4_nested_collapse_explain(inst_db):
    """EXPLAIN on the 3-level variant: the cost model section names the
    collapsed single-block plan and the rejected direct evaluation."""
    explanation = inst_db.explain(NESTED_3LEVEL_QUERY)
    assert "=== cost model ===" in explanation
    cost = explanation.to_dict()["cost_model"]
    assert cost["kind"] == "nested-grouping"
    assert cost["chosen"]["name"] == "isolated-groupby"
    assert any(c["name"] == "direct-nested-loop" for c in cost["candidates"])


def test_e4_nested_direct(benchmark, inst_db):
    result = benchmark.pedantic(
        run_query, args=(inst_db, NESTED_3LEVEL_QUERY, "direct"), rounds=3, iterations=1
    )
    benchmark.extra_info["results"] = len(result.collection)


def test_e4_nested_collapsed_auto(benchmark, inst_db):
    result = benchmark.pedantic(
        run_query, args=(inst_db, NESTED_3LEVEL_QUERY, "auto"), rounds=3, iterations=1
    )
    assert result.plan_mode == "groupby"  # collapsed, not direct fallback
    benchmark.extra_info["results"] = len(result.collection)


def test_e4_nested_results_agree(inst_db):
    collapsed = run_query(inst_db, NESTED_3LEVEL_QUERY, "auto").collection
    direct = run_query(inst_db, NESTED_3LEVEL_QUERY, "direct").collection
    assert collapsed.structurally_equal(direct)
