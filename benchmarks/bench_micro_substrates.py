"""Microbenchmarks of the substrates the grouping pipeline stands on:
structural joins, B+tree lookups, pattern matching, store access."""

import pytest

from repro.indexing.btree import BPlusTree
from repro.pattern.matcher import StoreMatcher
from repro.pattern.pattern import Axis, PatternNode, PatternTree
from repro.pattern.predicates import tag
from repro.pattern.structural_join import brute_force_join, structural_join


@pytest.fixture(scope="module")
def streams(bench_db):
    db, _ = bench_db
    articles = db.indexes.labels_for_tag("article")
    authors = db.indexes.labels_for_tag("author")
    return articles, authors


def test_micro_structural_join(benchmark, streams):
    articles, authors = streams
    pairs = benchmark(structural_join, articles, authors, Axis.AD)
    assert len(pairs) > 0


def test_micro_structural_join_brute_force(benchmark, streams):
    """The quadratic reference — the stack join should beat it clearly."""
    articles, authors = streams
    pairs = benchmark(brute_force_join, articles, authors, Axis.AD)
    assert len(pairs) > 0


def test_micro_pattern_match(benchmark, bench_db):
    db, _ = bench_db
    root = PatternNode("$1", tag("article"))
    root.add("$2", tag("author"), Axis.PC)
    root.add("$3", tag("title"), Axis.PC)
    pattern = PatternTree(root)

    def match():
        return StoreMatcher(db.store, db.indexes).match(pattern)

    assert len(benchmark(match)) > 0


def test_micro_btree_insert(benchmark):
    def build():
        tree = BPlusTree(order=32)
        for i in range(5000):
            tree.insert((i * 37) % 10000, i)
        return tree

    tree = benchmark(build)
    assert len(tree) > 0


def test_micro_btree_search(benchmark):
    tree = BPlusTree(order=32)
    for i in range(5000):
        tree.insert(i, i)

    def probe():
        return [tree.search(i) for i in range(0, 5000, 7)]

    assert benchmark(probe)


def test_micro_store_materialize(benchmark, bench_db):
    db, _ = bench_db
    info = db.store.document("bib.xml")
    first_article = db.store.children(info.root_nid)[0]
    node = benchmark(db.store.materialize, first_article)
    assert node.tag == "article"


def test_micro_value_index_distinct(benchmark, bench_db):
    db, _ = bench_db
    values = benchmark(db.indexes.distinct_values, "author")
    assert len(values) > 0
