"""A2 — ablation: grouping implementations (Sec. 5.3).

* ``sort`` — the paper's: identifier-only witnesses, populate only the
  grouping-basis values, sort on them;
* ``hash`` — identifier-only hash grouping;
* ``replicate`` — the strawman the paper argues against: "replicate
  elements an appropriate number of times ... the difficulty with this
  approach is that large amounts of data may be replicated early";
* ``value-index`` — the footnote-8 alternative: distinct values come off
  the value index (no value lookups at all), but the index "only
  return[s] the identifier of the node with the value in question" so
  every posting pays a parent-chain navigation to the grouped node.

The COUNT query makes the difference stark: sort/hash never materialize
a source tree; replicate materializes one replica per witness.
"""

import pytest

from repro.bench.harness import build_database
from repro.datagen.sample import QUERY_COUNT

from conftest import BENCH_CONFIG, run_query

STRATEGIES = ("sort", "hash", "replicate", "value-index")


@pytest.fixture(scope="module")
def strategy_dbs():
    return {
        strategy: build_database(BENCH_CONFIG, grouping_strategy=strategy)[0]
        for strategy in STRATEGIES
    }


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_a2_grouping_strategy(benchmark, strategy_dbs, strategy):
    db = strategy_dbs[strategy]
    result = benchmark.pedantic(
        run_query, args=(db, QUERY_COUNT, "groupby"), rounds=3, iterations=1
    )
    benchmark.extra_info["nodes_materialized"] = result.statistics["nodes_materialized"]
    benchmark.extra_info["record_lookups"] = result.statistics["record_lookups"]


def test_a2_replication_materializes_eagerly(strategy_dbs):
    lean_result = run_query(strategy_dbs["sort"], QUERY_COUNT, "groupby")
    lean = lean_result.statistics
    eager = run_query(strategy_dbs["replicate"], QUERY_COUNT, "groupby").statistics
    # Sort grouping materializes only the ``{$g}`` rep per emitted group
    # — never a member source tree; replication pays a full replica per
    # witness before grouping even starts.
    assert lean["nodes_materialized"] <= len(lean_result.collection)
    assert eager["nodes_materialized"] > lean["nodes_materialized"]


def test_a2_optimizer_choice_tracks_best_strategy(strategy_dbs):
    """The costed grouping choice (no forced strategy) must not be
    slower than the old heuristic's fixed ``sort`` beyond noise; both
    trajectories are recorded for the A2 story."""
    from conftest import timed_query

    costed_db = build_database(BENCH_CONFIG)[0]  # optimizer picks
    heuristic_db = build_database(BENCH_CONFIG, optimizer=False)[0]

    decision = costed_db.prepare(QUERY_COUNT).decision
    assert decision is not None and decision.grouping_strategy in (
        "sort",
        "hash",
        "value-index",
    )
    seconds_costed, costed = timed_query(
        costed_db,
        QUERY_COUNT,
        "auto",
        bench="a2_grouping_optimizer_on",
        strategy=decision.grouping_strategy,
    )
    seconds_heuristic, heuristic = timed_query(
        heuristic_db, QUERY_COUNT, "auto", bench="a2_grouping_optimizer_off"
    )
    assert costed.collection.structurally_equal(heuristic.collection)
    assert seconds_costed <= seconds_heuristic * 2.0, (
        f"costed grouping {seconds_costed * 1000:.2f}ms vs heuristic "
        f"{seconds_heuristic * 1000:.2f}ms"
    )
