"""A1 — ablation: index-assisted pattern matching vs full database scan.

Sec. 5.2: "under most circumstances it is preferable to use all the
indices available and independently locate candidates for as many nodes
in the pattern tree as possible" rather than scanning.  Both strategies
run the GROUPBY plan; only candidate generation differs.
"""

from repro.datagen.sample import QUERY_1

from conftest import run_query


def test_a1_indexed_matching(benchmark, bench_db):
    db, _ = bench_db
    result = benchmark.pedantic(
        run_query, args=(db, QUERY_1, "groupby"), rounds=3, iterations=1
    )
    benchmark.extra_info["record_lookups"] = result.statistics["record_lookups"]


def test_a1_full_scan_matching(benchmark, bench_db_scan):
    db, _ = bench_db_scan
    result = benchmark.pedantic(
        run_query, args=(db, QUERY_1, "groupby"), rounds=3, iterations=1
    )
    benchmark.extra_info["record_lookups"] = result.statistics["record_lookups"]


def test_a1_equivalence(bench_db, bench_db_scan):
    """Both strategies must return identical results."""
    indexed = run_query(bench_db[0], QUERY_1, "groupby").collection
    scanned = run_query(bench_db_scan[0], QUERY_1, "groupby").collection
    assert indexed.structurally_equal(scanned)
