"""A1 — ablation: index-assisted pattern matching vs full database scan,
and the columnar staircase hot path vs the object-walk fallback.

Sec. 5.2: "under most circumstances it is preferable to use all the
indices available and independently locate candidates for as many nodes
in the pattern tree as possible" rather than scanning.  Both strategies
run the GROUPBY plan; only candidate generation differs.

The columnar comparison isolates the *match stage* — the part the
columnar table accelerates — on an expansion-heavy pattern
(``article//*``), where the staircase kernels must beat the per-label
object walk by at least :data:`COLUMNAR_SPEEDUP_FLOOR`.  Full-query
timings for both strategies are recorded to the trajectory without a
floor: end-to-end E1 time is dominated by grouping and construction,
so the honest artifact shows both numbers.
"""

from repro.bench.trajectory import record_run
from repro.datagen.sample import QUERY_1
from repro.pattern.matcher import StoreMatcher
from repro.pattern.pattern import Axis, PatternNode, PatternTree
from repro.pattern.predicates import tag
from repro.xmlmodel.diff import diff_collections

from conftest import run_query, time_best, timed_query

#: Required match-stage speedup, columnar vs object walk (ISSUE 6).
COLUMNAR_SPEEDUP_FLOOR = 5.0


def test_a1_indexed_matching(benchmark, bench_db):
    db, _ = bench_db
    result = benchmark.pedantic(
        run_query, args=(db, QUERY_1, "groupby"), rounds=3, iterations=1
    )
    benchmark.extra_info["record_lookups"] = result.statistics["record_lookups"]


def test_a1_full_scan_matching(benchmark, bench_db_scan):
    db, _ = bench_db_scan
    result = benchmark.pedantic(
        run_query, args=(db, QUERY_1, "groupby"), rounds=3, iterations=1
    )
    benchmark.extra_info["record_lookups"] = result.statistics["record_lookups"]


def test_a1_equivalence(bench_db, bench_db_scan):
    """Both strategies must return identical results."""
    indexed = run_query(bench_db[0], QUERY_1, "groupby").collection
    scanned = run_query(bench_db_scan[0], QUERY_1, "groupby").collection
    assert indexed.structurally_equal(scanned)


# ----------------------------------------------------------------------
# Columnar hot path vs object-walk fallback
# ----------------------------------------------------------------------
def expansion_pattern() -> PatternTree:
    """``article//*`` — the wildcard-expansion workload the staircase
    kernels accelerate most (every article node fans out to all its
    descendants)."""
    root = PatternNode("$1", tag("article"))
    root.add("$2", None, Axis.AD)
    return PatternTree(root)


def binding_nids(matches):
    return [
        {label: node.nid for label, node in match.bindings.items()}
        for match in matches
    ]


def test_a1_columnar_match_stage_speedup(bench_db):
    db, _ = bench_db
    table = db.indexes.ensure_columnar()
    columnar = StoreMatcher(db.store, db.indexes, columnar=table)
    object_walk = StoreMatcher(db.store, db.indexes)
    pattern = expansion_pattern()

    seconds_columnar, got = time_best(lambda: columnar.match(pattern), rounds=7)
    seconds_object, want = time_best(lambda: object_walk.match(pattern), rounds=7)
    assert binding_nids(got) == binding_nids(want)

    speedup = seconds_object / seconds_columnar
    record_run(
        "a1_match_stage_columnar",
        seconds_columnar,
        strategy="columnar",
        witnesses=len(got),
        speedup=round(speedup, 2),
    )
    record_run(
        "a1_match_stage_object_walk",
        seconds_object,
        strategy="object-walk",
        witnesses=len(want),
    )
    assert speedup >= COLUMNAR_SPEEDUP_FLOOR, (
        f"columnar match stage only {speedup:.2f}x faster "
        f"({seconds_columnar * 1000:.2f}ms vs {seconds_object * 1000:.2f}ms)"
    )


def test_a1_columnar_full_query_trajectory(bench_db, bench_db_fallback):
    """End-to-end E1 under both strategies, recorded without a floor."""
    timed_query(
        bench_db[0], QUERY_1, "groupby",
        bench="a1_full_query_columnar", strategy="columnar",
    )
    timed_query(
        bench_db_fallback[0], QUERY_1, "groupby",
        bench="a1_full_query_object_walk", strategy="object-walk",
    )


def test_a1_columnar_structural_identity(bench_db, bench_db_fallback):
    """Columnar and fallback E1 results are structurally identical."""
    columnar = run_query(bench_db[0], QUERY_1, "groupby").collection
    fallback = run_query(bench_db_fallback[0], QUERY_1, "groupby").collection
    assert diff_collections(columnar, fallback) is None


def test_a1_explain_reports_strategy(bench_db, bench_db_fallback):
    """EXPLAIN surfaces which match strategy the executor will use."""
    assert "structural match: columnar" in bench_db[0].explain(QUERY_1)
    assert "structural match: object-walk" in bench_db_fallback[0].explain(QUERY_1)
