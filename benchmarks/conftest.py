"""Shared benchmark fixtures.

One database per scale is built once per session; every benchmark run
resets the statistics counters so measured work is the query's own.
The default benchmark scale keeps the full suite in the minutes range
while leaving the plan-cost differences dominant.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import DEFAULT_CONFIG
from repro.bench.harness import build_database

# Same scale as repro.bench.experiments so EXPERIMENTS.md numbers and
# `pytest benchmarks/` numbers tell one story.
BENCH_CONFIG = DEFAULT_CONFIG


@pytest.fixture(scope="session")
def bench_db():
    db, profile = build_database(BENCH_CONFIG)
    return db, profile


@pytest.fixture(scope="session")
def bench_db_scan():
    """Same workload with index-assisted matching disabled (A1)."""
    db, profile = build_database(BENCH_CONFIG, use_indexes=False)
    return db, profile


def run_query(db, query: str, plan: str, analyze: bool = False):
    db.store.reset_stats()
    return db.query(query, plan=plan, analyze=analyze, reset_statistics=False)
