"""Shared benchmark fixtures.

One database per scale is built once per session; every benchmark run
resets the statistics counters so measured work is the query's own.
The default benchmark scale keeps the full suite in the minutes range
while leaving the plan-cost differences dominant.

Besides the pytest-benchmark tables, measured runs append to the
process-global benchmark trajectory (:mod:`repro.bench.trajectory`);
at session end the consolidated ``BENCH_trajectory.json`` is written at
the repository root — one machine-readable artifact per benchmark run.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.experiments import DEFAULT_CONFIG
from repro.bench.harness import build_database
from repro.bench.trajectory import TRAJECTORY_FILE, record_run, write_trajectory
from repro.indexing.columnar import columnar_statistics
from repro.pattern.structural_join import join_statistics

# Same scale as repro.bench.experiments so EXPERIMENTS.md numbers and
# `pytest benchmarks/` numbers tell one story.
BENCH_CONFIG = DEFAULT_CONFIG


@pytest.fixture(scope="session")
def bench_db():
    db, profile = build_database(BENCH_CONFIG)
    return db, profile


@pytest.fixture(scope="session")
def bench_db_scan():
    """Same workload with index-assisted matching disabled (A1)."""
    db, profile = build_database(BENCH_CONFIG, use_indexes=False)
    return db, profile


@pytest.fixture(scope="session")
def bench_db_fallback():
    """Same workload with the columnar hot path forced off — the
    object-walk fallback baseline for the columnar comparisons."""
    db, profile = build_database(BENCH_CONFIG, columnar=False)
    return db, profile


def run_query(db, query: str, plan: str, analyze: bool = False):
    db.store.reset_stats()
    return db.query(query, plan=plan, analyze=analyze, reset_statistics=False)


def timed_query(
    db, query: str, plan: str, *, bench: str, scale=None, rounds: int = 3, **extra
):
    """Best-of-``rounds`` query timing, recorded into the trajectory.

    Returns ``(seconds, result)`` for the fastest round; the recorded
    counters (store + columnar + join deltas) are that round's own.
    """
    best_seconds = float("inf")
    best_stats: dict[str, int] = {}
    result = None
    for _ in range(rounds):
        db.store.reset_stats()
        before = columnar_statistics().snapshot()
        before.update(join_statistics().snapshot())
        started = time.perf_counter()
        result = db.query(query, plan=plan, reset_statistics=False)
        seconds = time.perf_counter() - started
        if seconds < best_seconds:
            after = columnar_statistics().snapshot()
            after.update(join_statistics().snapshot())
            best_stats = db.store.statistics()
            best_stats.update({key: after[key] - before[key] for key in after})
            best_seconds = seconds
    record_run(
        bench,
        best_seconds,
        scale=scale,
        counters=best_stats,
        plan=result.plan_mode,
        results=len(result.collection),
        **extra,
    )
    return best_seconds, result


def time_best(fn, rounds: int = 5):
    """Best-of-``rounds`` wall time of ``fn()``; returns (seconds, value)."""
    best = float("inf")
    value = None
    for _ in range(rounds):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def pytest_sessionfinish(session, exitstatus):
    path = write_trajectory(str(session.config.rootpath / TRAJECTORY_FILE))
    if path is not None:
        reporter = session.config.pluginmanager.get_plugin("terminalreporter")
        if reporter is not None:
            reporter.write_line(f"benchmark trajectory written to {path}")
