"""QueryTrace: the context-manager hook API."""

from repro.datagen.sample import QUERY_1, QUERY_COUNT
from repro.observability import QueryTrace, TraceEvent, active_traces, tracing_is_active


class TestQueryTrace:
    def test_collects_one_event_per_query(self, db):
        with QueryTrace() as trace:
            db.query(QUERY_1, plan="groupby")
            db.query(QUERY_COUNT, plan="naive")
        assert [e.plan_mode for e in trace.events] == ["groupby", "naive"]
        assert trace.events[0].query == QUERY_1

    def test_events_carry_profiles(self, db):
        with QueryTrace() as trace:
            db.query(QUERY_1, plan="groupby")
        event = trace.events[0]
        assert event.profile is not None
        assert event.counters == event.profile.totals
        assert trace.profiles == [event.profile]

    def test_no_events_outside_block(self, db):
        with QueryTrace() as trace:
            pass
        db.query(QUERY_1, plan="groupby")
        assert trace.events == []

    def test_on_event_callback(self, db):
        seen = []
        with QueryTrace(on_event=seen.append):
            db.query(QUERY_1, plan="groupby")
        assert len(seen) == 1
        assert isinstance(seen[0], TraceEvent)

    def test_traces_nest(self, db):
        with QueryTrace() as outer:
            db.query(QUERY_1, plan="groupby")
            with QueryTrace() as inner:
                db.query(QUERY_COUNT, plan="groupby")
        assert len(outer.events) == 2
        assert len(inner.events) == 1

    def test_active_traces_bookkeeping(self, db):
        assert not tracing_is_active()
        with QueryTrace() as trace:
            assert tracing_is_active()
            assert trace in active_traces()
        assert not tracing_is_active()

    def test_explicit_trace_without_activation(self, db):
        trace = QueryTrace()
        db.query(QUERY_1, plan="groupby", trace=trace)
        assert len(trace.events) == 1
        db.query(QUERY_1, plan="groupby")
        assert len(trace.events) == 1

    def test_callable_trace_argument(self, db):
        seen = []
        db.query(QUERY_1, plan="groupby", trace=seen.append)
        assert len(seen) == 1 and isinstance(seen[0], TraceEvent)

    def test_event_to_dict(self, db):
        with QueryTrace() as trace:
            db.query(QUERY_1, plan="groupby")
        payload = trace.events[0].to_dict()
        assert payload["plan_mode"] == "groupby"
        assert payload["profile"]["root"]["op"]
        assert isinstance(payload["counters"], dict)
