"""The redesigned Database API: PlanMode, keyword options, Explanation."""

import pytest

from repro.datagen.sample import QUERY_1
from repro.errors import DatabaseError
from repro.query.database import PLAN_MODES, Database, Explanation, PlanMode


class TestPlanMode:
    def test_members_equal_their_string_values(self):
        assert PlanMode.GROUPBY == "groupby"
        assert PlanMode.NAIVE_HASH == "naive-hash"
        assert PlanMode("logical-naive") is PlanMode.LOGICAL_NAIVE

    def test_plan_modes_tuple_matches_enum(self):
        assert PLAN_MODES == tuple(mode.value for mode in PlanMode)
        assert "auto" in PLAN_MODES and "groupby" in PLAN_MODES

    def test_enum_and_string_run_identically(self, db):
        by_enum = db.query(QUERY_1, plan=PlanMode.GROUPBY)
        by_string = db.query(QUERY_1, plan="groupby")
        assert by_enum.plan_mode == by_string.plan_mode == "groupby"
        assert by_enum.collection.structurally_equal(by_string.collection)

    def test_unknown_mode_raises_database_error(self, db):
        with pytest.raises(DatabaseError):
            db.query(QUERY_1, plan="warp-speed")

    def test_default_is_auto(self, db):
        assert db.query(QUERY_1).plan_mode == "groupby"


class TestPositionalFormsRemoved:
    """The pre-redesign positional shims are gone: options are
    keyword-only, and positional forms raise ``TypeError`` outright."""

    def test_positional_plan_raises_type_error(self, db):
        with pytest.raises(TypeError):
            db.query(QUERY_1, "naive")

    def test_positional_reset_statistics_raises_type_error(self, db):
        with pytest.raises(TypeError):
            db.query(QUERY_1, "groupby", False)

    def test_keyword_form_does_not_warn(self, db, recwarn):
        db.query(QUERY_1, plan="groupby")
        assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]


class TestExplanation:
    def test_explain_is_still_a_string(self, db):
        text = db.explain(QUERY_1)
        assert isinstance(text, str)
        assert "naive (join) plan" in text
        assert "GROUPBY" in text

    def test_render_matches_text(self, db):
        explanation = db.explain(QUERY_1)
        assert explanation.render() == str(explanation)

    def test_to_dict_exposes_both_plans(self, db):
        payload = db.explain(QUERY_1).to_dict()
        assert payload["query"] == QUERY_1
        naive = payload["plans"]["naive"]
        grouped = payload["plans"]["groupby"]
        ops = {node["op"] for node in _walk_dict(grouped)}
        assert "groupby" in ops
        assert {node["op"] for node in _walk_dict(naive)} >= {"scan", "select"}

    def test_verbose_adds_optimizer_estimates(self, db):
        explanation = db.explain(QUERY_1, verbose=True)
        payload = explanation.to_dict()
        assert payload["optimizer"]["winner"] in ("naive", "groupby")
        assert payload["optimizer"]["groupby_cost"] > 0
        assert "optimizer" in explanation

    def test_explain_does_not_execute(self, db):
        db.store.reset_stats()
        db.explain(QUERY_1)
        assert db.store.stats().get("nodes_materialized") == 0

    def test_explanation_type(self, db):
        assert isinstance(db.explain(QUERY_1), Explanation)


class TestPositionalExplainRemoved:
    def test_positional_verbose_raises_type_error(self, db):
        with pytest.raises(TypeError):
            db.explain(QUERY_1, True)

    def test_keyword_form_does_not_warn(self, db, recwarn):
        db.explain(QUERY_1, verbose=True)
        assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]


class TestPrepareExecute:
    """The prepare/execute split underpinning the service's plan cache."""

    def test_prepare_resolves_auto(self, db):
        prepared = db.prepare(QUERY_1)
        assert prepared.requested is PlanMode.AUTO
        assert prepared.resolved is PlanMode.GROUPBY
        assert prepared.plan is not None
        assert prepared.generation == db.data_generation

    def test_prepare_direct_has_no_plan(self, db):
        prepared = db.prepare(QUERY_1, plan="direct")
        assert prepared.resolved is PlanMode.DIRECT
        assert prepared.plan is None

    def test_execute_matches_query(self, db):
        prepared = db.prepare(QUERY_1)
        executed = db.execute(prepared)
        direct = db.query(QUERY_1)
        assert executed.plan_mode == direct.plan_mode
        assert executed.collection.structurally_equal(direct.collection)

    def test_prepared_query_is_reusable(self, db):
        prepared = db.prepare(QUERY_1, plan="naive")
        first = db.execute(prepared)
        second = db.execute(prepared)
        assert first.collection.structurally_equal(second.collection)

    def test_generation_tracks_mutations(self, db, fig6_tree):
        before = db.data_generation
        db.load(tree=fig6_tree, name="again.xml")
        assert db.data_generation == before + 1
        db.drop_document("again.xml")
        assert db.data_generation == before + 2


def _walk_dict(node):
    yield node
    for child in node["inputs"]:
        yield from _walk_dict(child)
