"""Execution profiles: span trees, counter attribution, analyze output."""

import pytest

from repro.datagen.sample import QUERY_1, QUERY_COUNT
from repro.observability import CounterSnapshot, ExecutionProfile, ProfileNode, Profiler


class TestProfiler:
    def test_nested_spans_mirror_call_stack(self):
        counters = {"work": 0}
        profiler = Profiler(lambda: CounterSnapshot(counters))
        with profiler.operator("outer"):
            counters["work"] += 1
            with profiler.operator("inner"):
                counters["work"] += 2
        root = profiler.root()
        assert root.op == "outer"
        assert [child.op for child in root.children] == ["inner"]
        assert root.counters["work"] == 3
        assert root.children[0].counters["work"] == 2

    def test_self_counters_exclude_children(self):
        counters = {"work": 0}
        profiler = Profiler(lambda: CounterSnapshot(counters))
        with profiler.operator("outer"):
            counters["work"] += 1
            with profiler.operator("inner"):
                counters["work"] += 2
            counters["work"] += 4
        root = profiler.root()
        assert root.self_counters()["work"] == 5

    def test_root_requires_exactly_one(self):
        profiler = Profiler(lambda: CounterSnapshot())
        with pytest.raises(ValueError):
            profiler.root()
        with profiler.operator("a"):
            pass
        with profiler.operator("b"):
            pass
        with pytest.raises(ValueError):
            profiler.root()

    def test_span_closed_on_exception(self):
        profiler = Profiler(lambda: CounterSnapshot())
        with pytest.raises(RuntimeError):
            with profiler.operator("boom"):
                raise RuntimeError("operator failed")
        assert profiler.root().op == "boom"


class TestAnalyze:
    def test_profile_attached_only_when_asked(self, db):
        assert db.query(QUERY_1, plan="groupby").profile is None
        result = db.query(QUERY_1, plan="groupby", analyze=True)
        assert isinstance(result.profile, ExecutionProfile)

    def test_profile_tree_mirrors_plan(self, db):
        result = db.query(QUERY_1, plan="groupby", analyze=True)
        plan_ops = [node.op for node in result.plan.walk()]
        profile_ops = [node.op for node in result.profile.root.walk()]
        assert profile_ops == plan_ops

    def test_per_operator_deltas_sum_to_root(self, db):
        result = db.query(QUERY_COUNT, plan="groupby", analyze=True)
        root = result.profile.root
        for key in ("value_lookups", "record_lookups", "pages_touched"):
            summed = sum(node.self_counters().get(key, 0) for node in root.walk())
            assert summed == root.counters.get(key, 0), key

    def test_totals_agree_with_store_statistics(self, db):
        result = db.query(QUERY_COUNT, plan="groupby", analyze=True)
        for key in ("value_lookups", "record_lookups", "nodes_materialized"):
            assert result.profile.total(key) == result.statistics[key], key

    def test_output_rows_recorded(self, db):
        result = db.query(QUERY_1, plan="groupby", analyze=True)
        assert result.profile.root.output_rows == len(result.collection)
        scan = result.profile.find("scan")
        assert scan and scan[0].output_rows == 1

    def test_direct_plan_profiles_as_single_span(self, db):
        result = db.query(QUERY_1, plan="direct", analyze=True)
        assert result.profile.root.op == "interpret"
        assert result.profile.total("record_lookups") > 0

    def test_logical_engine_profiles(self, db):
        result = db.query(QUERY_1, plan="logical-groupby", analyze=True)
        assert result.profile.root.op in ("project_groups", "rename_root", "stitch")

    def test_groupby_populates_fewer_values_than_naive(self, db):
        """The acceptance criterion — the paper's Sec. 6 claim, visible
        through EXPLAIN ANALYZE: on count-by-author the GROUPBY plan
        populates fewer data values and touches fewer pages."""
        naive = db.query(QUERY_COUNT, plan="naive", analyze=True)
        grouped = db.query(QUERY_COUNT, plan="groupby", analyze=True)
        assert grouped.profile.total("value_lookups") < naive.profile.total("value_lookups")
        assert grouped.profile.total("pages_touched") < naive.profile.total("pages_touched")

    def test_io_stats_always_present(self, db):
        result = db.query(QUERY_1, plan="groupby")
        assert result.io_stats["pages_touched"] == (
            result.io_stats["hits"] + result.io_stats["misses"]
        )
        assert "physical_reads" in result.io_stats


class TestRenderingContract:
    def test_to_dict_round_trips_structure(self, db):
        result = db.query(QUERY_1, plan="groupby", analyze=True)
        payload = result.profile.to_dict()
        assert payload["plan_mode"] == "groupby"
        assert payload["root"]["op"] == result.profile.root.op
        assert isinstance(payload["totals"], dict)
        child_ops = [child["op"] for child in payload["root"]["children"]]
        assert child_ops == [c.op for c in result.profile.root.children]

    def test_render_mentions_every_operator(self, db):
        result = db.query(QUERY_1, plan="groupby", analyze=True)
        text = result.profile.render()
        for node in result.profile.root.walk():
            assert node.op in text

    def test_render_shows_rows_and_totals(self, db):
        result = db.query(QUERY_COUNT, plan="groupby", analyze=True)
        text = result.profile.render()
        assert "rows=" in text
        assert "totals:" in text
        assert "[groupby]" in text

    def test_profile_node_render_indents_children(self):
        child = ProfileNode(op="scan", seconds=0.0)
        root = ProfileNode(op="select", seconds=0.0, children=[child])
        lines = root.render().splitlines()
        assert lines[0].startswith("select")
        assert lines[1].startswith("  scan")
