"""Counter snapshots: immutability, delta arithmetic, layer coverage."""

import pytest

from repro.datagen.sample import QUERY_1
from repro.observability import CounterSnapshot, snapshot_counters


class TestCounterSnapshot:
    def test_mapping_protocol(self):
        snap = CounterSnapshot({"hits": 3, "misses": 1})
        assert snap["hits"] == 3
        assert snap.get("absent") == 0
        assert set(snap) == {"hits", "misses"}
        assert len(snap) == 2
        assert dict(snap) == {"hits": 3, "misses": 1}

    def test_immutable(self):
        snap = CounterSnapshot({"hits": 3})
        with pytest.raises(TypeError):
            snap["hits"] = 4
        with pytest.raises(TypeError):
            snap.hits = 4

    def test_subtraction_is_per_key_over_union(self):
        after = CounterSnapshot({"hits": 10, "misses": 2, "new": 5})
        before = CounterSnapshot({"hits": 7, "misses": 2, "gone": 1})
        delta = after - before
        assert delta == {"hits": 3, "misses": 0, "new": 5, "gone": -1}

    def test_addition(self):
        total = CounterSnapshot({"a": 1}) + CounterSnapshot({"a": 2, "b": 3})
        assert total == {"a": 3, "b": 3}

    def test_equality_against_plain_mapping(self):
        assert CounterSnapshot({"a": 1}) == {"a": 1}
        assert CounterSnapshot({"a": 1}) != {"a": 2}

    def test_as_dict_returns_independent_copy(self):
        snap = CounterSnapshot({"a": 1})
        copy = snap.as_dict()
        copy["a"] = 99
        assert snap["a"] == 1

    def test_nonzero_drops_idle_counters(self):
        snap = CounterSnapshot({"a": 1, "b": 0, "c": -1})
        assert snap.nonzero() == {"a": 1, "c": -1}


class TestSnapshotCounters:
    def test_covers_every_layer(self, store):
        snap = snapshot_counters(store)
        for key in (
            "record_lookups",
            "value_lookups",
            "nodes_materialized",
            "hits",
            "misses",
            "evictions",
            "physical_reads",
            "physical_writes",
            "join_runs",
            "pages_touched",
        ):
            assert key in snap, key

    def test_pages_touched_is_hits_plus_misses(self, store):
        snap = snapshot_counters(store)
        assert snap["pages_touched"] == snap["hits"] + snap["misses"]

    def test_index_counters_included_when_given(self, db):
        snap = snapshot_counters(db.store, db.indexes)
        assert "tag_index_lookups" in snap
        assert "value_index_lookups" in snap
        assert "index_postings_served" in snap

    def test_delta_captures_query_work(self, db):
        before = snapshot_counters(db.store, db.indexes)
        db.query(QUERY_1, plan="groupby", reset_statistics=False)
        delta = snapshot_counters(db.store, db.indexes) - before
        assert delta["record_lookups"] > 0
        assert delta["pages_touched"] > 0


class TestStatsSnapshots:
    """Satellite: stats() returns immutable snapshots; reset is explicit."""

    def test_store_stats_is_snapshot(self, db):
        db.query(QUERY_1, plan="groupby")
        snap = db.store.stats()
        assert isinstance(snap, CounterSnapshot)
        with pytest.raises(TypeError):
            snap["record_lookups"] = 0

    def test_stats_do_not_reset_implicitly(self, db):
        db.query(QUERY_1, plan="groupby", reset_statistics=False)
        first = db.store.stats()
        second = db.store.stats()
        assert first == second

    def test_reset_stats_zeroes_all_layers(self, db):
        db.query(QUERY_1, plan="groupby", reset_statistics=False)
        assert db.store.stats().nonzero()
        db.store.reset_stats()
        snap = db.store.stats()
        assert snap.nonzero() == {}

    def test_pool_and_disk_stats_snapshots(self, store):
        pool_snap = store.pool.stats()
        disk_snap = store.disk.stats()
        assert isinstance(pool_snap, CounterSnapshot)
        assert isinstance(disk_snap, CounterSnapshot)
        assert "hits" in pool_snap
        assert "physical_reads" in disk_snap

    def test_snapshot_survives_further_work(self, db):
        db.store.reset_stats()
        db.query(QUERY_1, plan="groupby", reset_statistics=False)
        frozen = db.store.stats()
        lookups = frozen["record_lookups"]
        db.query(QUERY_1, plan="groupby", reset_statistics=False)
        assert frozen["record_lookups"] == lookups

    def test_legacy_statistics_aliases_still_work(self, db):
        db.query(QUERY_1, plan="groupby", reset_statistics=False)
        as_dict = db.store.statistics()
        assert isinstance(as_dict, dict)
        assert as_dict["record_lookups"] > 0
        db.store.reset_statistics()
        assert db.store.statistics()["record_lookups"] == 0
