"""Aggregation operator tests (Sec. 4.3)."""

import pytest

from repro.core.aggregation import (
    AggregateFunction,
    Aggregation,
    UpdatePosition,
    UpdateSpec,
)
from repro.errors import AlgebraError
from repro.pattern.pattern import Axis, PatternNode, PatternTree
from repro.pattern.predicates import tag
from repro.xmlmodel.node import element
from repro.xmlmodel.tree import Collection, DataTree


def order_tree(*amounts: str):
    children = [element("amount", a) for a in amounts]
    return element("order", None, *children)


def amount_pattern() -> PatternTree:
    root = PatternNode("$1", tag("order"))
    root.add("$2", tag("amount"), Axis.PC)
    return PatternTree(root)


def aggregate(function, update=None, new_tag="agg"):
    return Aggregation(
        amount_pattern(),
        function,
        source_label="$2",
        new_tag=new_tag,
        update=update or UpdateSpec(UpdatePosition.AFTER_LAST_CHILD, "$1"),
    )


class TestFunctions:
    def test_count(self):
        out = aggregate(AggregateFunction.COUNT).apply(
            Collection([DataTree(order_tree("1", "2", "3"))])
        )
        assert out[0].root.children[-1].content == "3"

    def test_sum(self):
        out = aggregate(AggregateFunction.SUM).apply(
            Collection([DataTree(order_tree("1.5", "2.5"))])
        )
        assert out[0].root.children[-1].content == "4"

    def test_min_max(self):
        collection = Collection([DataTree(order_tree("5", "1", "9"))])
        assert aggregate(AggregateFunction.MIN).apply(collection)[0].root.children[-1].content == "1"
        assert aggregate(AggregateFunction.MAX).apply(collection)[0].root.children[-1].content == "9"

    def test_avg(self):
        out = aggregate(AggregateFunction.AVG).apply(
            Collection([DataTree(order_tree("1", "2", "3", "6"))])
        )
        assert out[0].root.children[-1].content == "3"

    def test_fractional_rendering(self):
        out = aggregate(AggregateFunction.AVG).apply(
            Collection([DataTree(order_tree("1", "2"))])
        )
        assert out[0].root.children[-1].content == "1.5"

    def test_function_from_string(self):
        operator = aggregate("COUNT")
        assert operator.function is AggregateFunction.COUNT

    def test_non_numeric_sum_rejected(self):
        with pytest.raises(AlgebraError):
            aggregate(AggregateFunction.SUM).apply(
                Collection([DataTree(order_tree("not-a-number"))])
            )


class TestUpdateSpec:
    def test_after_last_child(self):
        out = aggregate(
            AggregateFunction.COUNT,
            UpdateSpec(UpdatePosition.AFTER_LAST_CHILD, "$1"),
        ).apply(Collection([DataTree(order_tree("1", "2"))]))
        assert out[0].root.children[-1].tag == "agg"

    def test_before_first_child(self):
        out = aggregate(
            AggregateFunction.COUNT,
            UpdateSpec(UpdatePosition.BEFORE_FIRST_CHILD, "$1"),
        ).apply(Collection([DataTree(order_tree("1", "2"))]))
        assert out[0].root.children[0].tag == "agg"

    def test_precedes_anchor(self):
        out = aggregate(
            AggregateFunction.COUNT, UpdateSpec(UpdatePosition.PRECEDES, "$2")
        ).apply(Collection([DataTree(order_tree("1", "2"))]))
        tags = [c.tag for c in out[0].root.children]
        assert tags == ["agg", "amount", "amount"]

    def test_follows_anchor(self):
        out = aggregate(
            AggregateFunction.COUNT, UpdateSpec(UpdatePosition.FOLLOWS, "$2")
        ).apply(Collection([DataTree(order_tree("1", "2"))]))
        tags = [c.tag for c in out[0].root.children]
        assert tags == ["amount", "agg", "amount"]

    def test_precedes_root_rejected(self):
        with pytest.raises(AlgebraError):
            aggregate(
                AggregateFunction.COUNT, UpdateSpec(UpdatePosition.PRECEDES, "$1")
            ).apply(Collection([DataTree(order_tree("1"))]))


class TestSemantics:
    def test_one_output_per_input_tree(self):
        collection = Collection(
            [DataTree(order_tree("1")), DataTree(order_tree("2", "3"))]
        )
        out = aggregate(AggregateFunction.COUNT).apply(collection)
        assert [t.root.children[-1].content for t in out] == ["1", "2"]

    def test_input_not_mutated(self):
        collection = Collection([DataTree(order_tree("1", "2"))])
        before = collection.copy()
        aggregate(AggregateFunction.COUNT).apply(collection)
        assert collection.structurally_equal(before)

    def test_no_witness_count_zero(self):
        collection = Collection([DataTree(element("order", None))])
        out = aggregate(AggregateFunction.COUNT).apply(collection)
        # The order element matches nothing ($2 missing): count 0 appended.
        assert out[0].root.children == [] or out[0].root.children[-1].content == "0"

    def test_distinct_nodes_counted_once(self, fig6_tree):
        """Several witnesses can bind the same node; aggregates must not
        double-count it."""
        root = PatternNode("$1", tag("article"))
        root.add("$2", tag("author"), Axis.PC)
        root.add("$3", tag("title"), Axis.PC)
        pattern = PatternTree(root)
        operator = Aggregation(
            pattern,
            AggregateFunction.COUNT,
            source_label="$3",
            new_tag="n_titles",
            update=UpdateSpec(UpdatePosition.AFTER_LAST_CHILD, "$1"),
        )
        # Article 1 has two authors -> two witnesses binding one title.
        collection = Collection([DataTree(fig6_tree.children[0].deep_copy())])
        out = operator.apply(collection)
        assert out[0].root.children[-1].content == "1"

    def test_count_of_group_members(self, fig6_tree):
        from repro.core.groupby import GroupBy

        articles = Collection([DataTree(c.deep_copy()) for c in fig6_tree.children])
        gb_root = PatternNode("$1", tag("article"))
        gb_root.add("$2", tag("author"), Axis.PC)
        groups = GroupBy(PatternTree(gb_root), ["$2"]).apply(articles)

        agg_root = PatternNode("$1", tag("tax_group_root"))
        subroot = agg_root.add("$2", tag("tax_group_subroot"), Axis.PC)
        subroot.add("$3", tag("article"), Axis.PC)
        counted = Aggregation(
            PatternTree(agg_root),
            AggregateFunction.COUNT,
            source_label="$3",
            new_tag="n_articles",
            update=UpdateSpec(UpdatePosition.AFTER_LAST_CHILD, "$1"),
        ).apply(groups)
        counts = [t.root.children[-1].content for t in counted]
        assert counts == ["2", "2", "1"]  # Jack, John, Jill
