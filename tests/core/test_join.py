"""Value-join tests: inner, left outer, full outer (Sec. 4.1's Fig. 8)."""

import pytest

from repro.core.base import TAX_PROD_ROOT
from repro.core.join import Join, JoinKind
from repro.errors import AlgebraError
from repro.pattern.pattern import Axis, PatternNode, PatternTree
from repro.pattern.predicates import tag
from repro.xmlmodel.node import element
from repro.xmlmodel.tree import Collection, DataTree


def left_pattern() -> PatternTree:
    root = PatternNode("$1", tag("doc_root"))
    root.add("$2", tag("author"), Axis.AD)
    return PatternTree(root)


def right_pattern() -> PatternTree:
    root = PatternNode("$4", tag("doc_root"))
    article = root.add("$5", tag("article"), Axis.AD)
    article.add("$6", tag("author"), Axis.PC)
    return PatternTree(root)


def author_side(*names: str) -> Collection:
    return Collection(
        [DataTree(element("doc_root", None, element("author", n))) for n in names]
    )


@pytest.fixture
def database_side(fig6_tree) -> Collection:
    return Collection([DataTree(fig6_tree)])


def join(kind: JoinKind) -> Join:
    return Join(
        left_pattern(),
        right_pattern(),
        conditions=[("$2", "$6")],
        kind=kind,
        selection_list={"$5"},
    )


class TestInnerJoin:
    def test_pair_trees(self, database_side):
        out = join(JoinKind.INNER).apply(author_side("Jack"), database_side)
        assert len(out) == 2  # Jack wrote two articles
        pair = out[0].root
        assert pair.tag == TAX_PROD_ROOT
        assert len(pair.children) == 2

    def test_no_match_drops_left(self, database_side):
        out = join(JoinKind.INNER).apply(author_side("Nobody"), database_side)
        assert len(out) == 0

    def test_adorned_article_full_subtree(self, database_side):
        out = join(JoinKind.INNER).apply(author_side("Jill"), database_side)
        right_witness = out[0].root.children[1]
        article = right_witness.children[0]
        assert article.find("title").content == "XML and the Web"

    def test_multiple_left_matches(self, database_side):
        out = join(JoinKind.INNER).apply(author_side("Jack", "John"), database_side)
        assert len(out) == 4  # 2 articles each


class TestLeftOuterJoin:
    def test_padding_for_unmatched_left(self, database_side):
        """Fig. 8: an author with no matching article still produces a
        tax_prod_root tree with only the left side."""
        out = join(JoinKind.LEFT_OUTER).apply(
            author_side("Jack", "Nobody"), database_side
        )
        assert len(out) == 3
        padded = out[-1].root
        assert len(padded.children) == 1
        assert padded.children[0].find("author").content == "Nobody"

    def test_left_order_preserved(self, database_side):
        out = join(JoinKind.LEFT_OUTER).apply(
            author_side("John", "Jill"), database_side
        )
        lead_authors = [t.root.children[0].find("author").content for t in out]
        assert lead_authors == ["John", "John", "Jill"]


class TestFullOuterJoin:
    def test_unmatched_right_appended(self):
        left = author_side("A")
        right = Collection(
            [
                DataTree(
                    element(
                        "doc_root",
                        None,
                        element("article", None, element("author", "B")),
                    )
                )
            ]
        )
        out = join(JoinKind.FULL_OUTER).apply(left, right)
        # Left pad for A, right pad for B's article.
        assert len(out) == 2
        assert len(out[0].root.children) == 1
        assert len(out[1].root.children) == 1


class TestValidation:
    def test_outer_join_requires_condition(self):
        with pytest.raises(AlgebraError):
            Join(left_pattern(), right_pattern(), [], kind=JoinKind.LEFT_OUTER)

    def test_unknown_condition_label_rejected(self):
        from repro.errors import PatternError

        with pytest.raises(PatternError):
            Join(left_pattern(), right_pattern(), [("$2", "$99")])

    def test_multi_condition(self, database_side):
        """Two conditions must both hold."""
        left_root = PatternNode("$1", tag("doc_root"))
        left_root.add("$2", tag("author"), Axis.AD)
        left_root.add("$3", tag("title"), Axis.AD)
        lp = PatternTree(left_root)
        operator = Join(
            lp, right_pattern_with_title(), [("$2", "$6"), ("$3", "$7")]
        )
        probe = Collection(
            [
                DataTree(
                    element(
                        "doc_root",
                        None,
                        element("author", "Jack"),
                        element("title", "Querying XML"),
                    )
                )
            ]
        )
        out = operator.apply(probe, database_side)
        assert len(out) == 1  # only the article with both matches

    def test_describe(self):
        text = join(JoinKind.LEFT_OUTER).describe()
        assert "left-outer" in text and "$2=$6" in text


def right_pattern_with_title() -> PatternTree:
    root = PatternNode("$4", tag("doc_root"))
    article = root.add("$5", tag("article"), Axis.AD)
    article.add("$6", tag("author"), Axis.PC)
    article.add("$7", tag("title"), Axis.PC)
    return PatternTree(root)
