"""Set-operation and product tests, including bag-semantics properties."""

from hypothesis import given, settings, strategies as st

from repro.core.base import TAX_PROD_ROOT
from repro.core.setops import Difference, Intersection, Product, Union
from repro.xmlmodel.node import element
from repro.xmlmodel.tree import Collection, DataTree


def items(*values: str) -> Collection:
    return Collection([DataTree(element("item", v)) for v in values])


def values_of(collection: Collection) -> list[str]:
    return [tree.root.content for tree in collection]


class TestUnion:
    def test_bag_union_concatenates(self):
        out = Union().apply(items("a", "b"), items("b", "c"))
        assert values_of(out) == ["a", "b", "b", "c"]

    def test_distinct_union(self):
        out = Union(distinct=True).apply(items("a", "b", "a"), items("b", "c"))
        assert values_of(out) == ["a", "b", "c"]

    def test_empty_operands(self):
        assert values_of(Union().apply(items(), items("x"))) == ["x"]
        assert values_of(Union().apply(items("x"), items())) == ["x"]


class TestIntersection:
    def test_basic(self):
        out = Intersection().apply(items("a", "b", "c"), items("b", "c", "d"))
        assert values_of(out) == ["b", "c"]

    def test_multiplicity_bounded_by_right(self):
        out = Intersection().apply(items("a", "a", "a"), items("a", "a"))
        assert values_of(out) == ["a", "a"]

    def test_structural_comparison(self):
        left = Collection([DataTree(element("p", None, element("x", "1")))])
        right = Collection([DataTree(element("p", None, element("x", "2")))])
        assert len(Intersection().apply(left, right)) == 0

    def test_disjoint(self):
        assert len(Intersection().apply(items("a"), items("b"))) == 0


class TestDifference:
    def test_basic(self):
        out = Difference().apply(items("a", "b", "c"), items("b"))
        assert values_of(out) == ["a", "c"]

    def test_bag_cancellation(self):
        out = Difference().apply(items("a", "a", "a"), items("a"))
        assert values_of(out) == ["a", "a"]

    def test_subtract_everything(self):
        assert len(Difference().apply(items("a"), items("a", "a"))) == 0


class TestProduct:
    def test_cartesian_pairs(self):
        out = Product().apply(items("a", "b"), items("x", "y", "z"))
        assert len(out) == 6
        assert all(t.root.tag == TAX_PROD_ROOT for t in out)
        first = out[0].root
        assert [c.content for c in first.children] == ["a", "x"]

    def test_left_major_order(self):
        out = Product().apply(items("a", "b"), items("x", "y"))
        pairs = [tuple(c.content for c in t.root.children) for t in out]
        assert pairs == [("a", "x"), ("a", "y"), ("b", "x"), ("b", "y")]

    def test_copies_not_aliases(self):
        left = items("a")
        out = Product().apply(left, items("x"))
        out[0].root.children[0].content = "changed"
        assert left[0].root.content == "a"

    def test_empty_side_gives_empty_product(self):
        assert len(Product().apply(items(), items("x"))) == 0


tiny_collections = st.lists(
    st.sampled_from(["a", "b", "c"]), max_size=5
).map(lambda vs: items(*vs))


@settings(max_examples=50, deadline=None)
@given(tiny_collections, tiny_collections)
def test_bag_identity_partition(left, right):
    """Intersection and difference partition the left input."""
    inter = Intersection().apply(left, right)
    diff = Difference().apply(left, right)
    assert len(inter) + len(diff) == len(left)
    # Multiset equality: (left ∩ right) ⊎ (left - right) == left.
    combined = sorted(values_of(inter) + values_of(diff))
    assert combined == sorted(values_of(left))


@settings(max_examples=50, deadline=None)
@given(tiny_collections, tiny_collections)
def test_union_length(left, right):
    assert len(Union().apply(left, right)) == len(left) + len(right)
    distinct = Union(distinct=True).apply(left, right)
    assert len(distinct) == len(set(values_of(left) + values_of(right)))


@settings(max_examples=30, deadline=None)
@given(tiny_collections, tiny_collections)
def test_product_size(left, right):
    assert len(Product().apply(left, right)) == len(left) * len(right)
