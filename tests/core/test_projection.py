"""TAX projection tests: hierarchy preservation, splits, stars."""

import pytest

from repro.core.projection import Projection, parse_projection_item
from repro.errors import AlgebraError
from repro.pattern.pattern import Axis, PatternNode, PatternTree
from repro.pattern.predicates import tag
from repro.xmlmodel.node import element
from repro.xmlmodel.tree import Collection, DataTree


def doc_article_author() -> PatternTree:
    root = PatternNode("$1", tag("doc_root"))
    article = root.add("$2", tag("article"), Axis.AD)
    article.add("$3", tag("author"), Axis.PC)
    return PatternTree(root)


class TestParseItem:
    def test_plain(self):
        assert parse_projection_item("$2") == ("$2", False)

    def test_starred(self):
        assert parse_projection_item("$2*") == ("$2", True)


class TestProjection:
    def test_keep_root_and_articles(self, fig6_collection):
        out = Projection(doc_article_author(), ["$1", "$2"]).apply(fig6_collection)
        assert len(out) == 1
        root = out[0].root
        assert root.tag == "doc_root"
        assert [c.tag for c in root.children] == ["article", "article", "article"]
        # Non-starred: article children are dropped.
        assert all(not c.children for c in root.children)

    def test_star_keeps_subtrees(self, fig6_collection):
        out = Projection(doc_article_author(), ["$1", "$2*"]).apply(fig6_collection)
        articles = out[0].root.children
        assert articles[0].find("title").content == "Querying XML"

    def test_hierarchy_hoists_over_dropped_nodes(self, fig6_collection):
        """Dropping the articles hoists authors directly under the root."""
        out = Projection(doc_article_author(), ["$1", "$3"]).apply(fig6_collection)
        root = out[0].root
        assert [c.tag for c in root.children] == ["author"] * 5

    def test_split_into_forest(self, fig6_collection):
        """Without the root, each retained article roots its own tree."""
        out = Projection(doc_article_author(), ["$2*"]).apply(fig6_collection)
        assert len(out) == 3
        assert all(t.root.tag == "article" for t in out)

    def test_no_witness_no_output(self):
        collection = Collection([DataTree(element("other", None))])
        out = Projection(doc_article_author(), ["$2"]).apply(collection)
        assert len(out) == 0

    def test_each_input_tree_processed(self, fig6_tree):
        collection = Collection([DataTree(fig6_tree), DataTree(fig6_tree.deep_copy())])
        out = Projection(doc_article_author(), ["$2*"]).apply(collection)
        assert len(out) == 6

    def test_empty_projection_list_rejected(self):
        with pytest.raises(AlgebraError):
            Projection(doc_article_author(), [])

    def test_inputs_not_mutated(self, fig6_collection):
        before = fig6_collection.copy()
        Projection(doc_article_author(), ["$2*"]).apply(fig6_collection)
        assert fig6_collection.structurally_equal(before)

    def test_document_order_preserved(self, fig6_collection):
        # Authors retained without the root: five single-node trees in
        # document order.
        out = Projection(doc_article_author(), ["$3"]).apply(fig6_collection)
        authors = [t.root.content for t in out]
        assert authors == ["Jack", "John", "Jill", "Jack", "John"]

    def test_star_inside_star_no_duplication(self):
        """A starred node nested in another starred node's subtree must
        not duplicate content."""
        tree = element("a", None, element("b", None, element("c", "x")))
        root = PatternNode("$1", tag("a"))
        b = root.add("$2", tag("b"), Axis.PC)
        b.add("$3", tag("c"), Axis.PC)
        out = Projection(PatternTree(root), ["$1", "$2*", "$3*"]).apply(
            Collection([DataTree(tree)])
        )
        assert out[0].root.structurally_equal(tree)
