"""Duplicate-elimination tests."""

import pytest

from repro.core.duplicates import DuplicateElimination
from repro.errors import AlgebraError
from repro.pattern.pattern import PatternNode, PatternTree
from repro.pattern.predicates import tag
from repro.xmlmodel.node import element
from repro.xmlmodel.tree import Collection, DataTree


def author_trees(*names: str) -> Collection:
    return Collection([DataTree(element("author", name)) for name in names])


def author_pattern() -> PatternTree:
    return PatternTree(PatternNode("$1", tag("author")))


class TestContentKeyed:
    def test_first_occurrence_wins(self):
        collection = author_trees("Jack", "John", "Jack", "Jill", "John")
        out = DuplicateElimination(author_pattern(), "$1").apply(collection)
        assert [t.root.content for t in out] == ["Jack", "John", "Jill"]

    def test_all_distinct_untouched(self):
        collection = author_trees("A", "B", "C")
        out = DuplicateElimination(author_pattern(), "$1").apply(collection)
        assert len(out) == 3

    def test_unmatched_trees_kept(self):
        collection = Collection(
            [
                DataTree(element("author", "Jack")),
                DataTree(element("editor", "Jack")),  # pattern misses
                DataTree(element("editor", "Jack")),
            ]
        )
        out = DuplicateElimination(author_pattern(), "$1").apply(collection)
        assert len(out) == 3  # unmatched trees are never merged

    def test_nested_binding_key(self, fig6_collection):
        root = PatternNode("$1", tag("doc_root"))
        from repro.pattern.pattern import Axis

        root.add("$2", tag("author"), Axis.AD)
        pattern = PatternTree(root)
        # One tree whose authors are its key: multiple matches sorted.
        out = DuplicateElimination(pattern, "$2").apply(fig6_collection)
        assert len(out) == 1

    def test_mismatched_arguments_rejected(self):
        with pytest.raises(AlgebraError):
            DuplicateElimination(author_pattern(), None)
        with pytest.raises(AlgebraError):
            DuplicateElimination(None, "$1")


class TestWholeTreeKeyed:
    def test_structural_duplicates_removed(self):
        tree = element("pair", None, element("a", "1"), element("b", "2"))
        collection = Collection(
            [DataTree(tree), DataTree(tree.deep_copy()), DataTree(element("pair", None))]
        )
        out = DuplicateElimination().apply(collection)
        assert len(out) == 2

    def test_attribute_differences_kept(self):
        first = element("a", "x")
        second = element("a", "x")
        second.attributes["k"] = "v"
        out = DuplicateElimination().apply(Collection([DataTree(first), DataTree(second)]))
        assert len(out) == 2

    def test_child_order_matters(self):
        first = element("p", None, element("a", "1"), element("b", "2"))
        second = element("p", None, element("b", "2"), element("a", "1"))
        out = DuplicateElimination().apply(Collection([DataTree(first), DataTree(second)]))
        assert len(out) == 2

    def test_idempotent(self):
        collection = author_trees("A", "A", "B")
        once = DuplicateElimination().apply(collection)
        twice = DuplicateElimination().apply(once)
        assert once.structurally_equal(twice)
