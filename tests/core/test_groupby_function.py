"""Generic-function grouping (the Sec. 3 enhancement)."""

import pytest

from repro.core.base import TAX_GROUP_ROOT
from repro.core.groupby import GroupByFunction
from repro.errors import AlgebraError
from repro.xmlmodel.node import element
from repro.xmlmodel.tree import Collection, DataTree


def articles():
    def make(title, year):
        return DataTree(
            element("article", None, element("title", title), element("year", year))
        )

    return Collection(
        [
            make("Alpha", "1999"),
            make("Beta", "2000"),
            make("Gamma", "1999"),
            make("Delta", "2001"),
        ]
    )


def year_of(root) -> str:
    return root.find("year").content


class TestGroupByFunction:
    def test_group_by_field_function(self):
        groups = GroupByFunction(year_of).apply(articles())
        assert len(groups) == 3
        keys = [t.root.children[0].children[0].content for t in groups]
        assert keys == ["1999", "2000", "2001"]  # first appearance

    def test_group_shape(self):
        groups = GroupByFunction(year_of).apply(articles())
        assert groups[0].root.tag == TAX_GROUP_ROOT
        members = groups[0].root.children[1].children
        assert [m.find("title").content for m in members] == ["Alpha", "Gamma"]

    def test_computed_key(self):
        """Keys need not be stored values: bucket by decade."""
        groups = GroupByFunction(lambda root: int(year_of(root)) // 10 * 10).apply(
            articles()
        )
        keys = [t.root.children[0].children[0].content for t in groups]
        assert keys == ["1990", "2000"]
        assert len(groups[0].root.children[1].children) == 2  # 1999, 1999
        assert len(groups[1].root.children[1].children) == 2  # 2000, 2001

    def test_order_key_and_reverse(self):
        groups = GroupByFunction(
            lambda root: "all",
            order_key=lambda root: root.find("title").content,
            reverse=True,
        ).apply(articles())
        titles = [m.find("title").content for m in groups[0].root.children[1].children]
        assert titles == ["Gamma", "Delta", "Beta", "Alpha"]

    def test_custom_key_tag(self):
        groups = GroupByFunction(year_of, key_tag="year_bucket").apply(articles())
        assert groups[0].root.children[0].children[0].tag == "year_bucket"

    def test_inputs_not_mutated(self):
        collection = articles()
        before = collection.copy()
        GroupByFunction(year_of).apply(collection)
        assert collection.structurally_equal(before)

    def test_non_callable_rejected(self):
        with pytest.raises(AlgebraError):
            GroupByFunction("year")

    def test_empty_collection(self):
        assert len(GroupByFunction(year_of).apply(Collection())) == 0
