"""Property-based operator invariants (hypothesis).

Checked for the main operators on random bibliographic collections:

* closure: inputs are never mutated;
* order preservation;
* groupby conservation: total group members == witness count (after
  in-group source dedup is not applied at the operator level);
* duplicate elimination idempotence.
"""

from hypothesis import given, settings, strategies as st

from repro.core.duplicates import DuplicateElimination
from repro.core.groupby import GroupBy
from repro.core.projection import Projection
from repro.core.selection import Selection
from repro.pattern.matcher import TreeMatcher
from repro.pattern.pattern import Axis, PatternNode, PatternTree
from repro.pattern.predicates import tag
from repro.xmlmodel.node import element
from repro.xmlmodel.tree import Collection, DataTree

author_names = st.sampled_from(["Jack", "Jill", "John", "Mary"])
titles = st.sampled_from(["T1", "T2", "T3"])


@st.composite
def article_trees(draw):
    article = element("article", None)
    article.add("title", draw(titles))
    for name in draw(st.lists(author_names, max_size=3)):
        article.add("author", name)
    if draw(st.booleans()):
        article.add("year", draw(st.sampled_from(["1999", "2000"])))
    return article


collections = st.lists(article_trees(), min_size=0, max_size=6).map(
    lambda roots: Collection([DataTree(r) for r in roots])
)


def article_author_pattern() -> PatternTree:
    root = PatternNode("$1", tag("article"))
    root.add("$2", tag("author"), Axis.PC)
    return PatternTree(root)


@settings(max_examples=50, deadline=None)
@given(collections)
def test_selection_closure_and_cardinality(collection):
    before = collection.copy()
    pattern = article_author_pattern()
    out = Selection(pattern).apply(collection)
    assert collection.structurally_equal(before)  # no input mutation
    witnesses = TreeMatcher().match_collection(pattern, collection)
    assert len(out) == len(witnesses)  # one output per embedding


@settings(max_examples=50, deadline=None)
@given(collections)
def test_selection_order_preservation(collection):
    """Witness trees come out grouped by input tree, in input order."""
    pattern = article_author_pattern()
    out = Selection(pattern, {"$1"}).apply(collection)
    # Selection list $1 returns full articles: map back by structure.
    source_index = 0
    for tree in out:
        while source_index < len(collection) and not collection[
            source_index
        ].root.structurally_equal(tree.root):
            source_index += 1
        assert source_index < len(collection)


@settings(max_examples=50, deadline=None)
@given(collections)
def test_groupby_member_conservation(collection):
    pattern = article_author_pattern()
    witnesses = TreeMatcher().match_collection(pattern, collection)
    groups = GroupBy(pattern, ["$2"]).apply(collection)
    total_members = sum(len(t.root.children[1].children) for t in groups)
    assert total_members == len(witnesses)


@settings(max_examples=50, deadline=None)
@given(collections)
def test_groupby_groups_have_distinct_values(collection):
    groups = GroupBy(article_author_pattern(), ["$2"]).apply(collection)
    values = [t.root.children[0].children[0].content for t in groups]
    assert len(values) == len(set(values))


@settings(max_examples=50, deadline=None)
@given(collections)
def test_groupby_members_share_group_value(collection):
    groups = GroupBy(article_author_pattern(), ["$2"]).apply(collection)
    for tree in groups:
        value = tree.root.children[0].children[0].content
        for member in tree.root.children[1].children:
            member_authors = [a.content for a in member.findall("author")]
            assert value in member_authors


@settings(max_examples=50, deadline=None)
@given(collections)
def test_dupelim_idempotent_and_subset(collection):
    operator = DuplicateElimination()
    once = operator.apply(collection)
    twice = operator.apply(once)
    assert once.structurally_equal(twice)
    assert len(once) <= len(collection)


@settings(max_examples=50, deadline=None)
@given(collections)
def test_projection_star_identity(collection):
    """Projecting $1* over articles returns each matching article whole."""
    pattern = article_author_pattern()
    out = Projection(pattern, ["$1*"]).apply(collection)
    matching = [t for t in collection if t.root.find("author") is not None]
    assert len(out) == len(matching)
    for got, expected in zip(out, matching):
        assert got.root.structurally_equal(expected.root)
