"""TAX selection tests (Sec. 2 semantics)."""

import pytest

from repro.core.selection import Selection
from repro.errors import PatternError
from repro.pattern.pattern import Axis, PatternNode, PatternTree
from repro.pattern.predicates import ContentEquals, conjoin, tag
from repro.xmlmodel.node import element
from repro.xmlmodel.tree import Collection, DataTree


def pattern_article_author() -> PatternTree:
    root = PatternNode("$1", tag("article"))
    root.add("$2", tag("author"), Axis.PC)
    return PatternTree(root)


class TestBasics:
    def test_one_witness_per_embedding(self, fig6_collection):
        out = Selection(pattern_article_author()).apply(fig6_collection)
        assert len(out) == 5  # selection is one-to-many

    def test_witness_shape(self, fig6_collection):
        out = Selection(pattern_article_author()).apply(fig6_collection)
        tree = out[0]
        assert tree.root.tag == "article"
        assert [c.tag for c in tree.root.children] == ["author"]
        assert tree.root.children[0].content == "Jack"

    def test_adornment_returns_subtree(self, fig6_collection):
        out = Selection(pattern_article_author(), {"$1"}).apply(fig6_collection)
        # $1 adorned: the whole article subtree comes back.
        assert out[0].root.find("title") is not None

    def test_inputs_not_mutated(self, fig6_collection):
        before = fig6_collection.copy()
        Selection(pattern_article_author(), {"$1"}).apply(fig6_collection)
        assert fig6_collection.structurally_equal(before)

    def test_no_match_empty_output(self, fig6_collection):
        root = PatternNode("$1", tag("book"))
        out = Selection(PatternTree(root)).apply(fig6_collection)
        assert len(out) == 0

    def test_predicate_filtering(self, fig6_collection):
        root = PatternNode("$1", tag("article"))
        root.add("$2", conjoin(tag("author"), ContentEquals("Jill")), Axis.PC)
        out = Selection(PatternTree(root)).apply(fig6_collection)
        assert len(out) == 1
        assert out[0].root.find("author").content == "Jill"

    def test_unknown_selection_label_rejected(self):
        with pytest.raises(PatternError):
            Selection(pattern_article_author(), {"$9"})

    def test_output_order_follows_document_order(self, fig6_collection):
        out = Selection(pattern_article_author()).apply(fig6_collection)
        authors = [tree.root.find("author").content for tree in out]
        assert authors == ["Jack", "John", "Jill", "Jack", "John"]

    def test_sibling_order_in_witness(self, fig6_collection):
        """Children of a witness node appear in document order even when
        the pattern lists them differently."""
        root = PatternNode("$1", tag("article"))
        root.add("$3", tag("title"), Axis.PC)   # pattern order: title first
        root.add("$2", tag("author"), Axis.PC)
        out = Selection(PatternTree(root)).apply(fig6_collection)
        # First article stores authors before the title (Fig. 6).
        first = out[0].root
        assert [c.tag for c in first.children] == ["author", "title"]

    def test_multi_tree_collection(self):
        collection = Collection(
            [
                DataTree(element("article", None, element("author", "A"))),
                DataTree(element("article", None, element("author", "B"))),
            ]
        )
        out = Selection(pattern_article_author()).apply(collection)
        assert [t.root.find("author").content for t in out] == ["A", "B"]

    def test_describe(self):
        text = Selection(pattern_article_author(), {"$2"}).describe()
        assert "selection" in text and "$2" in text
