"""Rename, collection ordering, and construction helper tests."""

from repro.core.construct import WrapEach, concat, stitch, wrap_all
from repro.core.ordering import SortCollection
from repro.core.rename import Rename, RenameRoot
from repro.pattern.pattern import Axis, PatternNode, PatternTree
from repro.pattern.predicates import tag
from repro.xmlmodel.node import element
from repro.xmlmodel.tree import Collection, DataTree


def items(*pairs) -> Collection:
    return Collection(
        [
            DataTree(element("item", None, element("k", k), element("v", v)))
            for k, v in pairs
        ]
    )


class TestRename:
    def test_rename_root(self):
        out = RenameRoot("renamed").apply(items(("a", "1")))
        assert out[0].root.tag == "renamed"

    def test_rename_root_does_not_mutate_input(self):
        collection = items(("a", "1"))
        RenameRoot("renamed").apply(collection)
        assert collection[0].root.tag == "item"

    def test_rename_bound_nodes(self):
        root = PatternNode("$1", tag("item"))
        root.add("$2", tag("k"), Axis.PC)
        out = Rename(PatternTree(root), "$2", "key").apply(items(("a", "1"), ("b", "2")))
        assert all(t.root.find("key") is not None for t in out)
        assert all(t.root.find("k") is None for t in out)

    def test_rename_leaves_unmatched_trees(self):
        collection = Collection([DataTree(element("other", None))])
        root = PatternNode("$1", tag("item"))
        out = Rename(PatternTree(root), "$1", "renamed").apply(collection)
        assert out[0].root.tag == "other"


class TestSortCollection:
    def sort_pattern(self) -> PatternTree:
        root = PatternNode("$1", tag("item"))
        root.add("$2", tag("k"), Axis.PC)
        root.add("$3", tag("v"), Axis.PC)
        return PatternTree(root)

    def test_ascending(self):
        out = SortCollection(self.sort_pattern(), [("$2", "ASCENDING")]).apply(
            items(("b", "1"), ("a", "2"), ("c", "3"))
        )
        assert [t.root.find("k").content for t in out] == ["a", "b", "c"]

    def test_descending(self):
        out = SortCollection(self.sort_pattern(), [("$2", "DESCENDING")]).apply(
            items(("b", "1"), ("a", "2"), ("c", "3"))
        )
        assert [t.root.find("k").content for t in out] == ["c", "b", "a"]

    def test_numeric_keys(self):
        out = SortCollection(self.sort_pattern(), [("$3", "ASCENDING")]).apply(
            items(("a", "10"), ("b", "9"))
        )
        assert [t.root.find("v").content for t in out] == ["9", "10"]

    def test_secondary_key(self):
        out = SortCollection(
            self.sort_pattern(), [("$2", "ASCENDING"), ("$3", "DESCENDING")]
        ).apply(items(("a", "1"), ("a", "3"), ("a", "2")))
        assert [t.root.find("v").content for t in out] == ["3", "2", "1"]

    def test_unmatched_trees_go_last(self):
        collection = items(("b", "1"))
        collection.append(DataTree(element("other", None)))
        collection.trees.insert(0, DataTree(element("misc", None)))
        out = SortCollection(self.sort_pattern(), [("$2", "ASCENDING")]).apply(collection)
        assert [t.root.tag for t in out] == ["item", "misc", "other"]


class TestConstruct:
    def test_wrap_each(self):
        out = WrapEach("box").apply(items(("a", "1"), ("b", "2")))
        assert all(t.root.tag == "box" for t in out)
        assert all(t.root.children[0].tag == "item" for t in out)

    def test_wrap_all(self):
        tree = wrap_all(items(("a", "1"), ("b", "2")), "all")
        assert tree.root.tag == "all"
        assert len(tree.root.children) == 2

    def test_stitch_groups(self):
        groups = [
            [element("author", "Jack"), element("title", "T1")],
            [element("author", "Jill")],
        ]
        out = stitch(groups, "authorpubs")
        assert len(out) == 2
        assert [c.tag for c in out[0].root.children] == ["author", "title"]
        assert len(out[1].root.children) == 1

    def test_concat_preserves_order(self):
        a = items(("a", "1"))
        b = items(("b", "2"))
        out = concat(a, b)
        assert [t.root.find("k").content for t in out] == ["a", "b"]
