"""Fluent TAX pipeline tests."""

from repro.core import (
    AggregateFunction,
    JoinKind,
    TaxPipeline,
    UpdatePosition,
    UpdateSpec,
)
from repro.pattern import Axis, PatternNode, PatternTree, tag
from repro.xmlmodel import Collection, DataTree, element


def doc_pattern() -> PatternTree:
    root = PatternNode("$1", tag("doc_root"))
    root.add("$2", tag("article"), Axis.AD)
    return PatternTree(root)


def group_pattern() -> PatternTree:
    root = PatternNode("$1", tag("article"))
    root.add("$2", tag("author"), Axis.PC)
    return PatternTree(root)


class TestChaining:
    def test_query1_as_pipeline(self, fig6_collection):
        """Select articles, group by author, count — the paper's query as
        fluent algebra."""
        result = (
            TaxPipeline.over(fig6_collection)
            .select(doc_pattern(), adorn={"$2"})
            .project(doc_pattern(), ["$2*"])
            .groupby(group_pattern(), basis=["$2"])
            .collect()
        )
        assert len(result) == 3
        values = [t.root.children[0].children[0].content for t in result]
        assert values == ["Jack", "John", "Jill"]

    def test_aggregate_step(self, fig6_collection):
        agg_root = PatternNode("$1", tag("tax_group_root"))
        subroot = agg_root.add("$2", tag("tax_group_subroot"), Axis.PC)
        subroot.add("$3", tag("article"), Axis.PC)
        result = (
            TaxPipeline.over(fig6_collection)
            .select(doc_pattern(), adorn={"$2"})
            .project(doc_pattern(), ["$2*"])
            .groupby(group_pattern(), basis=["$2"])
            .aggregate(
                PatternTree(agg_root),
                AggregateFunction.COUNT,
                "$3",
                "n",
                UpdateSpec(UpdatePosition.AFTER_LAST_CHILD, "$1"),
            )
            .collect()
        )
        counts = [t.root.children[-1].content for t in result]
        assert counts == ["2", "2", "1"]

    def test_distinct_and_rename(self, fig6_collection):
        author_pattern = PatternTree(PatternNode("$1", tag("author")))
        result = (
            TaxPipeline.over(fig6_collection)
            .select(author_pattern, adorn={"$1"})
            .distinct(author_pattern, "$1")
            .rename_root("who")
            .collect()
        )
        assert [t.root.tag for t in result] == ["who"] * 3

    def test_sort_step(self, fig6_collection):
        pattern = PatternTree(PatternNode("$1", tag("author")))
        result = (
            TaxPipeline.over(fig6_collection)
            .select(pattern, adorn={"$1"})
            .sort(pattern, [("$1", "ASCENDING")])
            .collect()
        )
        assert [t.root.content for t in result] == sorted(
            t.root.content for t in result
        )

    def test_peek_passthrough(self, fig6_collection):
        seen = []
        pipeline = TaxPipeline.over(fig6_collection).peek(lambda c: seen.append(len(c)))
        assert seen == [1]
        assert len(pipeline) == 1

    def test_iter_protocol(self, fig6_collection):
        assert len(list(TaxPipeline.over(fig6_collection))) == 1


class TestBinarySteps:
    def items(self, *values):
        return Collection([DataTree(element("item", v)) for v in values])

    def test_union(self):
        out = TaxPipeline.over(self.items("a")).union(self.items("b")).collect()
        assert [t.root.content for t in out] == ["a", "b"]

    def test_union_accepts_pipeline(self):
        other = TaxPipeline.over(self.items("b"))
        out = TaxPipeline.over(self.items("a")).union(other).collect()
        assert len(out) == 2

    def test_intersect_difference_product(self):
        left = TaxPipeline.over(self.items("a", "b"))
        assert len(left.intersect(self.items("b")).collect()) == 1
        assert len(left.difference(self.items("b")).collect()) == 1
        assert len(left.product(self.items("x", "y")).collect()) == 4

    def test_join_step(self, fig6_collection):
        authors = Collection(
            [DataTree(element("doc_root", None, element("author", "Jill")))]
        )
        left_pattern_root = PatternNode("$1", tag("doc_root"))
        left_pattern_root.add("$2", tag("author"), Axis.AD)
        right_pattern_root = PatternNode("$4", tag("doc_root"))
        article = right_pattern_root.add("$5", tag("article"), Axis.AD)
        article.add("$6", tag("author"), Axis.PC)
        out = (
            TaxPipeline.over(authors)
            .join(
                fig6_collection,
                PatternTree(left_pattern_root),
                PatternTree(right_pattern_root),
                conditions=[("$2", "$6")],
                kind=JoinKind.INNER,
                adorn={"$5"},
            )
            .collect()
        )
        assert len(out) == 1  # Jill wrote one article


class TestImmutability:
    def test_branching_pipelines_independent(self, fig6_collection):
        base = TaxPipeline.over(fig6_collection).select(doc_pattern(), adorn={"$2"})
        grouped = base.groupby(group_pattern(), basis=["$2"])
        renamed = base.rename_root("x")
        assert len(grouped.collect()) == 3
        assert all(t.root.tag == "x" for t in renamed.collect())
        # base itself unchanged (witness roots are doc_root copies)
        assert all(t.root.tag == "doc_root" for t in base.collect())
