"""GROUPBY operator tests, including the Fig. 3 / Fig. 10 golden shapes."""

import pytest

from repro.core.base import TAX_GROUP_ROOT, TAX_GROUP_SUBROOT, TAX_GROUPING_BASIS
from repro.core.groupby import BasisItem, GroupBy, OrderItem
from repro.core.selection import Selection
from repro.datagen.sample import transaction_database
from repro.errors import AlgebraError
from repro.pattern.pattern import Axis, PatternNode, PatternTree
from repro.pattern.predicates import ContentWildcard, conjoin, tag
from repro.xmlmodel.node import element
from repro.xmlmodel.tree import Collection, DataTree


def article_author_pattern() -> PatternTree:
    root = PatternNode("$1", tag("article"))
    root.add("$2", tag("author"), Axis.PC)
    return PatternTree(root)


def article_collection(fig6_tree) -> Collection:
    """The collection of article trees (Fig. 9)."""
    return Collection([DataTree(child.deep_copy()) for child in fig6_tree.children])


class TestBasisAndOrderParsing:
    def test_plain_label(self):
        item = BasisItem.parse("$2")
        assert (item.label, item.attribute, item.star) == ("$2", None, False)

    def test_attribute(self):
        item = BasisItem.parse("$2.year")
        assert (item.label, item.attribute) == ("$2", "year")

    def test_star(self):
        assert BasisItem.parse("$2*").star

    def test_star_attribute_rejected(self):
        with pytest.raises(AlgebraError):
            BasisItem.parse("$2.year*")

    def test_order_item(self):
        item = OrderItem.parse("$2", "descending")
        assert item.direction == "DESCENDING"

    def test_bad_direction_rejected(self):
        with pytest.raises(AlgebraError):
            OrderItem.parse("$2", "sideways")


class TestGroupShape:
    def test_group_tree_structure(self, fig6_tree):
        groups = GroupBy(article_author_pattern(), ["$2"]).apply(
            article_collection(fig6_tree)
        )
        tree = groups[0]
        assert tree.root.tag == TAX_GROUP_ROOT
        assert [c.tag for c in tree.root.children] == [
            TAX_GROUPING_BASIS,
            TAX_GROUP_SUBROOT,
        ]

    def test_fig10_groups(self, fig6_tree):
        """Fig. 10: three groups (Jack, John, Jill), with the two-author
        articles appearing in two groups each."""
        groups = GroupBy(article_author_pattern(), ["$2"]).apply(
            article_collection(fig6_tree)
        )
        assert len(groups) == 3
        basis_values = [
            tree.root.children[0].children[0].content for tree in groups
        ]
        assert basis_values == ["Jack", "John", "Jill"]
        member_titles = [
            [member.find("title").content for member in tree.root.children[1].children]
            for tree in groups
        ]
        assert member_titles == [
            ["Querying XML", "XML and the Web"],  # Jack
            ["Querying XML", "Hack HTML"],        # John
            ["XML and the Web"],                  # Jill
        ]

    def test_overlapping_groups_not_a_partition(self, fig6_tree):
        groups = GroupBy(article_author_pattern(), ["$2"]).apply(
            article_collection(fig6_tree)
        )
        total_members = sum(len(t.root.children[1].children) for t in groups)
        assert total_members == 5  # > 3 articles: grouping does not partition

    def test_source_trees_complete(self, fig6_tree):
        """Group members are the *source trees*, entire subtrees."""
        groups = GroupBy(article_author_pattern(), ["$2"]).apply(
            article_collection(fig6_tree)
        )
        jack_members = groups[0].root.children[1].children
        assert jack_members[0].structurally_equal(fig6_tree.children[0])

    def test_empty_basis_rejected(self):
        with pytest.raises(AlgebraError):
            GroupBy(article_author_pattern(), [])

    def test_unknown_label_rejected(self):
        from repro.errors import PatternError

        with pytest.raises(PatternError):
            GroupBy(article_author_pattern(), ["$9"])


class TestOrderingList:
    def fig3_inputs(self):
        """Witness trees of the Transaction query (Fig. 2) as input."""
        root = PatternNode("$1", tag("article"))
        root.add(
            "$2", conjoin(tag("title"), ContentWildcard("*Transaction*")), Axis.PC
        )
        root.add("$3", tag("author"), Axis.PC)
        pattern = PatternTree(root)
        collection = Collection([DataTree(transaction_database())])
        return pattern, Selection(pattern, {"$2", "$3"}).apply(collection)

    def test_fig3_descending_titles(self):
        """Fig. 3: group witness trees by author, each group ordered by
        DESCENDING $2.content."""
        pattern, witnesses = self.fig3_inputs()
        groups = GroupBy(pattern, ["$3"], [("$2", "DESCENDING")]).apply(witnesses)
        assert len(groups) == 3
        silberschatz = groups[0]
        assert silberschatz.root.children[0].children[0].content == "Silberschatz"
        titles = [
            member.find("title").content
            for member in silberschatz.root.children[1].children
        ]
        assert titles == ["Transaction Mng ...", "Overview of Transaction Mng"]

    def test_ascending_order(self):
        pattern, witnesses = self.fig3_inputs()
        groups = GroupBy(pattern, ["$3"], [("$2", "ASCENDING")]).apply(witnesses)
        titles = [
            member.find("title").content
            for member in groups[0].root.children[1].children
        ]
        assert titles == sorted(titles)

    def test_numeric_ordering(self):
        collection = Collection(
            [
                DataTree(element("item", None, element("k", "a"), element("n", "10"))),
                DataTree(element("item", None, element("k", "a"), element("n", "9"))),
            ]
        )
        root = PatternNode("$1", tag("item"))
        root.add("$2", tag("k"), Axis.PC)
        root.add("$3", tag("n"), Axis.PC)
        groups = GroupBy(PatternTree(root), ["$2"], [("$3", "ASCENDING")]).apply(collection)
        values = [m.find("n").content for m in groups[0].root.children[1].children]
        assert values == ["9", "10"]  # numeric, not lexicographic

    def test_stable_tie_break_keeps_document_order(self, fig6_tree):
        groups = GroupBy(article_author_pattern(), ["$2"], []).apply(
            article_collection(fig6_tree)
        )
        jack_titles = [
            m.find("title").content for m in groups[0].root.children[1].children
        ]
        assert jack_titles == ["Querying XML", "XML and the Web"]


class TestMultiItemBasis:
    def test_two_component_basis(self):
        collection = Collection(
            [
                DataTree(element("r", None, element("a", "1"), element("b", "x"))),
                DataTree(element("r", None, element("a", "1"), element("b", "y"))),
                DataTree(element("r", None, element("a", "1"), element("b", "x"))),
            ]
        )
        root = PatternNode("$1", tag("r"))
        root.add("$2", tag("a"), Axis.PC)
        root.add("$3", tag("b"), Axis.PC)
        groups = GroupBy(PatternTree(root), ["$2", "$3"]).apply(collection)
        assert len(groups) == 2  # (1,x) and (1,y)
        basis = groups[0].root.children[0]
        assert [c.tag for c in basis.children] == ["a", "b"]

    def test_starred_basis_keeps_subtree(self, fig6_tree):
        root = PatternNode("$1", tag("article"))
        root.add("$2", tag("author"), Axis.PC)
        groups = GroupBy(PatternTree(root), ["$1*"]).apply(
            article_collection(fig6_tree)
        )
        # Basis child is the full article subtree.
        first_basis = groups[0].root.children[0].children[0]
        assert first_basis.find("title") is not None

    def test_attribute_basis(self):
        first = element("item", "a")
        first.attributes["kind"] = "k1"
        second = element("item", "b")
        second.attributes["kind"] = "k1"
        third = element("item", "c")
        third.attributes["kind"] = "k2"
        collection = Collection([DataTree(n) for n in (first, second, third)])
        pattern = PatternTree(PatternNode("$1", tag("item")))
        groups = GroupBy(pattern, ["$1.kind"]).apply(collection)
        assert len(groups) == 2
