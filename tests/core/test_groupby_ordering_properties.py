"""Property tests for the GROUPBY ordering list."""

from hypothesis import given, settings, strategies as st

from repro.core.base import numeric_or_text
from repro.core.groupby import GroupBy
from repro.pattern.pattern import Axis, PatternNode, PatternTree
from repro.pattern.predicates import tag
from repro.xmlmodel.node import element
from repro.xmlmodel.tree import Collection, DataTree

keys = st.sampled_from(["k1", "k2"])
sort_values = st.sampled_from(["1", "2", "10", "alpha", "beta", ""])


def pattern() -> PatternTree:
    root = PatternNode("$1", tag("item"))
    root.add("$2", tag("key"), Axis.PC)
    root.add("$3", tag("rank"), Axis.PC)
    return PatternTree(root)


@st.composite
def item_collections(draw):
    trees = []
    for index in range(draw(st.integers(1, 10))):
        trees.append(
            DataTree(
                element(
                    "item",
                    None,
                    element("key", draw(keys)),
                    element("rank", draw(sort_values)),
                    element("seq", str(index)),
                )
            )
        )
    return Collection(trees)


def member_ranks(group) -> list:
    return [
        numeric_or_text(member.find("rank").content or "")
        for member in group.root.children[1].children
    ]


@settings(max_examples=50, deadline=None)
@given(item_collections())
def test_ascending_order_sorted(collection):
    groups = GroupBy(pattern(), ["$2"], [("$3", "ASCENDING")]).apply(collection)
    for group in groups:
        ranks = member_ranks(group)
        assert ranks == sorted(ranks)


@settings(max_examples=50, deadline=None)
@given(item_collections())
def test_descending_is_reverse_of_ascending(collection):
    ascending = GroupBy(pattern(), ["$2"], [("$3", "ASCENDING")]).apply(collection)
    descending = GroupBy(pattern(), ["$2"], [("$3", "DESCENDING")]).apply(collection)
    for asc_group, desc_group in zip(ascending, descending):
        asc = member_ranks(asc_group)
        desc = member_ranks(desc_group)
        assert sorted(asc) == sorted(desc)
        assert desc == sorted(desc, reverse=True)


@settings(max_examples=50, deadline=None)
@given(item_collections())
def test_ordering_is_stable_on_ties(collection):
    """Members with equal ranks keep their document order (the seq tag
    records input order)."""
    groups = GroupBy(pattern(), ["$2"], [("$3", "ASCENDING")]).apply(collection)
    for group in groups:
        members = group.root.children[1].children
        for first, second in zip(members, members[1:]):
            if first.find("rank").content == second.find("rank").content:
                assert int(first.find("seq").content) < int(second.find("seq").content)


@settings(max_examples=50, deadline=None)
@given(item_collections())
def test_ordering_does_not_change_membership(collection):
    plain = GroupBy(pattern(), ["$2"]).apply(collection)
    ordered = GroupBy(pattern(), ["$2"], [("$3", "DESCENDING")]).apply(collection)
    assert len(plain) == len(ordered)
    for a, b in zip(plain, ordered):
        assert len(a.root.children[1].children) == len(b.root.children[1].children)
