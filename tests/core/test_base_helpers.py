"""Tests for the shared operator helpers in repro.core.base."""

import pytest

from repro.core.base import (
    atomic_value_of,
    document_positions,
    numeric_or_text,
    require,
    shallow_copy,
)
from repro.errors import AlgebraError
from repro.xmlmodel.node import element


class TestDocumentPositions:
    def test_preorder_indices(self):
        tree = element("a", None, element("b", None, element("c", None)), element("d", None))
        positions = document_positions(tree)
        nodes = list(tree.iter())
        assert [positions[id(node)] for node in nodes] == [0, 1, 2, 3]

    def test_single_node(self):
        tree = element("only", None)
        assert document_positions(tree) == {id(tree): 0}


class TestShallowCopy:
    def test_copies_fields_not_children(self):
        source = element("a", "text", element("b", None))
        source.attributes["k"] = "v"
        source.nid = 42
        copy = shallow_copy(source)
        assert copy.tag == "a"
        assert copy.content == "text"
        assert copy.attributes == {"k": "v"}
        assert copy.nid == 42
        assert copy.children == []

    def test_attribute_dict_not_shared(self):
        source = element("a", None)
        source.attributes["k"] = "v"
        copy = shallow_copy(source)
        copy.attributes["k"] = "changed"
        assert source.attributes["k"] == "v"


class TestAtomicValue:
    def test_direct_content(self):
        assert atomic_value_of(element("a", "x")) == "x"

    def test_subtree_fallback(self):
        tree = element("a", None, element("b", "1"), element("c", "2"))
        assert atomic_value_of(tree) == "12"

    def test_empty_tree(self):
        assert atomic_value_of(element("a", None)) == ""


class TestNumericOrText:
    def test_numbers_sort_before_text(self):
        keys = sorted([numeric_or_text("beta"), numeric_or_text("10"), numeric_or_text("9")])
        assert keys == [(0, 9.0), (0, 10.0), (1, "beta")]

    def test_numeric_comparison(self):
        assert numeric_or_text("9") < numeric_or_text("10")

    def test_text_comparison(self):
        assert numeric_or_text("alpha") < numeric_or_text("beta")

    def test_mixed_never_raises(self):
        sorted([numeric_or_text(v) for v in ("1", "x", "2.5", "", "-3")])


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_algebra_error(self):
        with pytest.raises(AlgebraError, match="boom"):
            require(False, "boom")
