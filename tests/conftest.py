"""Shared fixtures: sample documents, loaded stores, and databases."""

from __future__ import annotations

import pytest

from repro.datagen.sample import figure6_database, transaction_database
from repro.indexing.manager import IndexManager
from repro.query.database import Database
from repro.storage.store import NodeStore
from repro.xmlmodel.node import XMLNode
from repro.xmlmodel.tree import Collection, DataTree

BIB_XML = """
<doc_root>
  <article><title>Querying XML</title><author>Jack</author><author>John</author></article>
  <article><title>XML and the Web</title><author>Jill</author><author>Jack</author></article>
  <article><title>Hack HTML</title><author>John</author></article>
</doc_root>
"""


@pytest.fixture
def fig6_tree() -> XMLNode:
    return figure6_database()


@pytest.fixture
def transaction_tree() -> XMLNode:
    return transaction_database()


@pytest.fixture
def fig6_collection(fig6_tree) -> Collection:
    return Collection([DataTree(fig6_tree)])


@pytest.fixture
def store(fig6_tree) -> NodeStore:
    """In-memory store loaded with the Fig. 6 database as bib.xml."""
    node_store = NodeStore()
    node_store.load_tree(fig6_tree, "bib.xml")
    return node_store


@pytest.fixture
def indexes(store) -> IndexManager:
    manager = IndexManager(store)
    manager.build()
    return manager


@pytest.fixture
def db(fig6_tree) -> Database:
    database = Database()
    database.load(tree=fig6_tree, name="bib.xml")
    return database
