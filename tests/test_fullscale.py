"""Full-scale smoke test (marked slow): a larger synthetic DBLP database
through loading, indexing, persistence, and both experiments.

Run explicitly with ``pytest -m slow tests/test_fullscale.py``; the
default suite includes it (it takes tens of seconds at most).
"""

import os

import pytest

from repro.bench.harness import build_database, measured_run
from repro.datagen.dblp import DBLPConfig
from repro.datagen.sample import QUERY_1, QUERY_COUNT
from repro.query.database import Database
from repro.xmlmodel.diff import assert_collections_equal

SCALE = DBLPConfig(n_articles=3000, n_authors=800, seed=7)


@pytest.mark.slow
class TestFullScale:
    @pytest.fixture(scope="class")
    def big_db(self):
        db, profile = build_database(SCALE)
        return db, profile

    def test_load_and_index(self, big_db):
        db, profile = big_db
        assert profile.n_nodes > 20_000
        assert db.store.disk.n_pages > 50
        db.indexes.check_invariants()

    def test_e1_shape_holds(self, big_db):
        db, _ = big_db
        hash_run = measured_run(db, "hash", QUERY_1, "naive-hash")
        group_run = measured_run(db, "groupby", QUERY_1, "groupby")
        assert group_run.result_size == hash_run.result_size
        assert (
            group_run.statistics["value_lookups"]
            < hash_run.statistics["value_lookups"]
        )

    def test_e2_shape_holds(self, big_db):
        db, _ = big_db
        hash_run = measured_run(db, "hash", QUERY_COUNT, "naive-hash")
        group_run = measured_run(db, "groupby", QUERY_COUNT, "groupby")
        # Groupby pays per-pair basis lookups + per-group output nodes;
        # the direct baseline additionally dedups all author occurrences.
        assert group_run.statistics["value_lookups"] < (
            hash_run.statistics["value_lookups"]
        )
        # Only the (leaf) author group nodes are materialized.
        assert group_run.statistics["nodes_materialized"] == group_run.result_size

    def test_engines_agree_at_scale(self, big_db):
        db, _ = big_db
        reference = db.query(QUERY_COUNT, plan="naive-hash").collection
        grouped = db.query(QUERY_COUNT, plan="groupby").collection
        assert_collections_equal(grouped, reference)

    def test_persistence_roundtrip_at_scale(self, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("fullscale") / "db")
        from repro.datagen.dblp import generate_dblp

        tree = generate_dblp(SCALE.scaled(0.3))
        with Database(directory=directory) as db:
            db.load(tree=tree, name="bib.xml")
            expected = db.query(QUERY_COUNT).collection
        with Database(directory=directory) as db:
            assert os.path.exists(os.path.join(directory, "indexes.pages"))
            assert_collections_equal(db.query(QUERY_COUNT).collection, expected)
