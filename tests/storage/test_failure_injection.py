"""Failure injection: corrupted pages, damaged metadata, missing files."""

import json
import os

import pytest

from repro.errors import DatabaseError, PageCorruptionError, StorageError
from repro.storage.page import PAGE_SIZE
from repro.storage.store import DATA_FILE, META_FILE, NodeStore


@pytest.fixture
def db_dir(tmp_path, fig6_tree):
    directory = os.path.join(tmp_path, "db")
    with NodeStore(directory) as store:
        store.load_tree(fig6_tree, "bib.xml")
    return directory


class TestPageCorruption:
    def _flip_byte(self, path: str, offset: int) -> None:
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))

    def test_payload_bit_flip_detected_on_read(self, db_dir):
        # Flip a byte inside the first page's record area.
        self._flip_byte(os.path.join(db_dir, DATA_FILE), 100)
        with NodeStore(db_dir) as store:
            with pytest.raises(PageCorruptionError):
                store.record(0)

    def test_header_corruption_detected(self, db_dir):
        self._flip_byte(os.path.join(db_dir, DATA_FILE), 0)  # magic
        with NodeStore(db_dir) as store:
            with pytest.raises(PageCorruptionError):
                store.record(0)

    def test_truncated_page_file_rejected(self, db_dir):
        path = os.path.join(db_dir, DATA_FILE)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 10)
        with pytest.raises(StorageError):
            NodeStore(db_dir)

    def test_intact_reopen_still_works(self, db_dir, fig6_tree):
        with NodeStore(db_dir) as store:
            info = store.document("bib.xml")
            assert store.materialize(info.root_nid).structurally_equal(fig6_tree)


class TestMetadataDamage:
    def test_missing_meta_treated_as_fresh(self, db_dir):
        """Without meta.json the directory reopens as an empty catalog
        (documented behaviour: metadata is the source of truth)."""
        os.remove(os.path.join(db_dir, META_FILE))
        with NodeStore(db_dir) as store:
            assert store.documents() == []
            with pytest.raises(DatabaseError):
                store.document("bib.xml")

    def test_corrupt_meta_rejected(self, db_dir):
        with open(os.path.join(db_dir, META_FILE), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        with pytest.raises(json.JSONDecodeError):
            NodeStore(db_dir)

    def test_meta_save_is_atomic(self, db_dir):
        """A .tmp file never survives a successful save."""
        with NodeStore(db_dir) as store:
            store.flush()
        assert not os.path.exists(os.path.join(db_dir, META_FILE) + ".tmp")

    def test_stale_nid_range_rejected(self, db_dir):
        """Metadata pointing past the page file fails loudly, not
        silently."""
        meta_path = os.path.join(db_dir, META_FILE)
        with open(meta_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["page_ids"] = [99]  # page that does not exist
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with NodeStore(db_dir) as store:
            with pytest.raises(StorageError):
                store.record(0)


class TestOutOfRangeAccess:
    def test_unknown_nid_rejected(self, store):
        with pytest.raises(DatabaseError):
            store.record(10_000)

    def test_negative_nid_rejected(self, store):
        with pytest.raises(DatabaseError):
            store.record(-1)
