"""Disk-manager tests for both backings."""

import os

import pytest

from repro.errors import StorageError
from repro.storage.disk import DiskManager
from repro.storage.page import PAGE_SIZE, Page


@pytest.fixture(params=["memory", "file"])
def disk(request, tmp_path):
    if request.param == "memory":
        yield DiskManager(None)
    else:
        manager = DiskManager(os.path.join(tmp_path, "data.pages"))
        yield manager
        manager.close()


class TestAllocateWriteRead:
    def test_allocate_sequential_ids(self, disk):
        assert disk.allocate_page() == 0
        assert disk.allocate_page() == 1
        assert disk.n_pages == 2

    def test_write_then_read(self, disk):
        page_id = disk.allocate_page()
        page = Page(page_id)
        page.insert_record(b"hello")
        disk.write_page(page)
        again = disk.read_page(page_id)
        assert again.read_record(0) == b"hello"

    def test_write_clears_dirty(self, disk):
        page = Page(disk.allocate_page())
        page.insert_record(b"x")
        disk.write_page(page)
        assert not page.dirty

    def test_read_unallocated_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.read_page(0)

    def test_write_unallocated_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.write_page(Page(5))

    def test_overwrite_page(self, disk):
        page_id = disk.allocate_page()
        first = Page(page_id)
        first.insert_record(b"one")
        disk.write_page(first)
        second = Page(page_id)
        second.insert_record(b"two")
        disk.write_page(second)
        assert disk.read_page(page_id).read_record(0) == b"two"


class TestStatistics:
    def test_counters_advance(self, disk):
        page = Page(disk.allocate_page())
        disk.write_page(page)
        disk.read_page(0)
        disk.read_page(0)
        assert disk.counters.allocations == 1
        assert disk.counters.physical_writes == 1
        assert disk.counters.physical_reads == 2

    def test_reset(self, disk):
        disk.allocate_page()
        disk.counters.reset()
        assert disk.counters.snapshot() == {
            "physical_reads": 0,
            "physical_writes": 0,
            "allocations": 0,
        }


class TestFileBacking:
    def test_reopen_reads_back(self, tmp_path):
        path = os.path.join(tmp_path, "d.pages")
        with DiskManager(path) as disk:
            page = Page(disk.allocate_page())
            page.insert_record(b"persisted")
            disk.write_page(page)
        with DiskManager(path) as disk:
            assert disk.n_pages == 1
            assert disk.read_page(0).read_record(0) == b"persisted"

    def test_memory_read_before_write_rejected(self):
        disk = DiskManager(None)
        disk.allocate_page()
        with pytest.raises(StorageError):
            disk.read_page(0)

    def test_truncated_file_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "bad.pages")
        with open(path, "wb") as handle:
            handle.write(b"\0" * (PAGE_SIZE + 17))
        with pytest.raises(StorageError):
            DiskManager(path)
