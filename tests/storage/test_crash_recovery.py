"""Crash-point enumeration and recovery.

For every named crash point in the journaled bulk-load and compaction
protocols, kill the store there and assert that reopening observes
either the complete operation or a clean rollback — never a torn state:
checksums verify, the catalog is consistent, and surviving documents
round-trip byte-for-byte.

Seeds come from ``SEEDS``; CI adds extra ones via ``REPRO_FAULT_SEED``.
"""

import json
import os

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import figure6_database, transaction_database
from repro.errors import DatabaseError, RecoveryError
from repro.query.database import Database
from repro.storage.faults import FaultPlan, SimulatedCrash
from repro.storage.journal import (
    COMPACT_CRASH_POINTS,
    JOURNAL_FILE,
    LOAD_CRASH_POINTS,
    COMPACT_STAGE_DIR,
)
from repro.storage.page import PAGE_SIZE
from repro.storage.store import DATA_FILE, META_FILE, NodeStore

SEEDS = [0, 1, 2]
_env_seed = os.environ.get("REPRO_FAULT_SEED")
if _env_seed is not None:
    SEEDS.append(int(_env_seed))


def _make_store(directory: str) -> None:
    with NodeStore(directory) as store:
        store.load_tree(figure6_database(), "a.xml")


def _assert_clean(directory: str, expect_b: "bool | None" = None) -> set:
    """Reopen after a crash and assert full consistency."""
    with NodeStore(directory) as store:
        report = store.verify()
        assert report.ok, report.render()
        docs = {info.name for info in store.documents()}
        assert "a.xml" in docs
        info = store.document("a.xml")
        assert store.materialize(info.root_nid).structurally_equal(figure6_database())
        if "b.xml" in docs:
            info = store.document("b.xml")
            assert store.materialize(info.root_nid).structurally_equal(
                transaction_database()
            )
        if expect_b is not None:
            assert ("b.xml" in docs) == expect_b
        # The journal never survives recovery, and the data file is
        # page-aligned again.
        assert not os.path.exists(os.path.join(directory, JOURNAL_FILE))
        assert os.path.getsize(os.path.join(directory, DATA_FILE)) % PAGE_SIZE == 0
        return docs


class TestCrashDuringLoad:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("point", LOAD_CRASH_POINTS)
    def test_every_crash_point_reopens_clean(self, tmp_path, point, seed):
        directory = os.path.join(tmp_path, "db")
        _make_store(directory)
        store = NodeStore(directory, fault_plan=FaultPlan(seed=seed, crash_at=point))
        with pytest.raises(SimulatedCrash):
            store.load_tree(transaction_database(), "b.xml")
        # The process "died": abandon the handle without closing.
        committed = point in ("load.meta_committed", "load.journal_cleared")
        _assert_clean(directory, expect_b=committed)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("torn_after", [0, 1, 2])
    def test_torn_write_rolls_back(self, tmp_path, seed, torn_after):
        directory = os.path.join(tmp_path, "db")
        _make_store(directory)
        store = NodeStore(
            directory, fault_plan=FaultPlan(seed=seed, torn_write_after=torn_after)
        )
        # A multi-page document, so the tear can land on any write of
        # the batch (sample docs fit in a single page).
        big = generate_dblp(DBLPConfig(n_articles=100, n_authors=12, seed=3))
        with pytest.raises(SimulatedCrash):
            store.load_tree(big, "b.xml")
        _assert_clean(directory, expect_b=False)

    def test_rollback_and_rollforward_counters(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        _make_store(directory)
        store = NodeStore(
            directory, fault_plan=FaultPlan(crash_at="load.pages_synced")
        )
        with pytest.raises(SimulatedCrash):
            store.load_tree(transaction_database(), "b.xml")
        reopened = NodeStore(directory)
        assert reopened.recovery.rollbacks == 1
        assert reopened.stats()["recovery_rollbacks"] == 1
        reopened.close()

        store = NodeStore(
            directory, fault_plan=FaultPlan(crash_at="load.meta_committed")
        )
        with pytest.raises(SimulatedCrash):
            store.load_tree(transaction_database(), "b.xml")
        reopened = NodeStore(directory)
        assert reopened.recovery.rollforwards == 1
        reopened.close()

    def test_reload_after_rollback_succeeds(self, tmp_path):
        """After a rolled-back load the same document loads cleanly —
        nids and labels were not burned by the crashed attempt."""
        directory = os.path.join(tmp_path, "db")
        _make_store(directory)
        store = NodeStore(
            directory, fault_plan=FaultPlan(crash_at="load.pages_synced")
        )
        with pytest.raises(SimulatedCrash):
            store.load_tree(transaction_database(), "b.xml")
        with NodeStore(directory) as reopened:
            reopened.load_tree(transaction_database(), "b.xml")
        _assert_clean(directory, expect_b=True)


class TestCrashDuringCompact:
    def _setup(self, directory: str) -> None:
        with NodeStore(directory) as store:
            store.load_tree(figure6_database(), "a.xml")
            store.load_tree(transaction_database(), "dropped.xml")
            store.drop_document("dropped.xml")

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("point", COMPACT_CRASH_POINTS)
    def test_every_crash_point_reopens_clean(self, tmp_path, point, seed):
        directory = os.path.join(tmp_path, "db")
        self._setup(directory)
        store = NodeStore(directory, fault_plan=FaultPlan(seed=seed, crash_at=point))
        with pytest.raises(SimulatedCrash):
            store.compact()
        docs = _assert_clean(directory)
        assert docs == {"a.xml"}
        assert not os.path.isdir(os.path.join(directory, COMPACT_STAGE_DIR))

    @pytest.mark.parametrize("point", LOAD_CRASH_POINTS)
    def test_crash_while_staging_keeps_old_store(self, tmp_path, point):
        """A crash inside the staged store's own journaled loads leaves
        the stage half-built; recovery discards it wholesale."""
        directory = os.path.join(tmp_path, "db")
        self._setup(directory)
        store = NodeStore(directory, fault_plan=FaultPlan(crash_at=point))
        with pytest.raises(SimulatedCrash):
            store.compact()
        docs = _assert_clean(directory)
        assert docs == {"a.xml"}
        assert not os.path.isdir(os.path.join(directory, COMPACT_STAGE_DIR))

    def test_compact_still_reclaims_space(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        self._setup(directory)
        store = NodeStore(directory)
        pages_before = store.disk.n_pages
        compacted = store.compact()
        assert compacted.disk.n_pages < pages_before
        assert {info.name for info in compacted.documents()} == {"a.xml"}
        assert compacted.verify().ok
        compacted.close()


class TestRecoveryEdgeCases:
    def test_stray_stage_dir_is_cleaned(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        _make_store(directory)
        os.makedirs(os.path.join(directory, COMPACT_STAGE_DIR, "junk"))
        with NodeStore(directory) as store:
            assert store.recovery.recoveries == 1
        assert not os.path.isdir(os.path.join(directory, COMPACT_STAGE_DIR))

    def test_stray_tmp_files_are_cleaned(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        _make_store(directory)
        stray = os.path.join(directory, META_FILE + ".tmp")
        with open(stray, "w", encoding="utf-8") as handle:
            handle.write("{")
        with NodeStore(directory):
            pass
        assert not os.path.exists(stray)

    def test_recovery_is_idempotent(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        _make_store(directory)
        store = NodeStore(
            directory, fault_plan=FaultPlan(crash_at="load.pages_synced")
        )
        with pytest.raises(SimulatedCrash):
            store.load_tree(transaction_database(), "b.xml")
        _assert_clean(directory, expect_b=False)
        _assert_clean(directory, expect_b=False)  # second reopen: no-op recovery

    def test_malformed_journal_fails_loudly(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        _make_store(directory)
        with open(os.path.join(directory, JOURNAL_FILE), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        with pytest.raises(RecoveryError):
            NodeStore(directory)

    def test_unknown_journal_op_rejected(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        _make_store(directory)
        with open(os.path.join(directory, JOURNAL_FILE), "w", encoding="utf-8") as handle:
            json.dump({"op": "teleport"}, handle)
        with pytest.raises(RecoveryError):
            NodeStore(directory)


class TestQuarantineAndRepair:
    def _corrupt_first_page(self, directory: str) -> None:
        with open(os.path.join(directory, DATA_FILE), "r+b") as handle:
            handle.seek(100)
            handle.write(b"\xff\xff\xff\xff")

    def test_verify_reports_corruption(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        _make_store(directory)
        self._corrupt_first_page(directory)
        with NodeStore(directory) as store:
            report = store.verify()
            assert not report.ok
            assert report.corrupt_pages == [0]
            assert report.affected_documents == ["a.xml"]
            assert "CORRUPT" in report.render()

    def test_repair_quarantines_and_drops(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        _make_store(directory)
        self._corrupt_first_page(directory)
        with NodeStore(directory) as store:
            report = store.repair()
            assert report.quarantined_pages == [0]
            assert report.dropped_documents == ["a.xml"]
            assert store.recovery.pages_quarantined == 1
            assert store.recovery.documents_dropped == 1
            with pytest.raises(RecoveryError):
                store.record(0)
            assert store.verify().ok  # quarantined pages are skipped
        # Quarantine persists across reopen.
        with NodeStore(directory) as reopened:
            assert reopened.meta.quarantined_pages == {0}
            with pytest.raises(RecoveryError):
                reopened.record(0)

    def test_repair_on_clean_store_is_a_noop(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        _make_store(directory)
        with NodeStore(directory) as store:
            report = store.repair()
            assert report.clean
            assert "nothing to do" in report.render()

    def test_degraded_database_open_survives_corruption(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        with Database(directory) as db:
            db.load(tree=figure6_database(), name="a.xml")
            db.load(tree=transaction_database(), name="b.xml")
            b_pages = {
                db.store.meta.locate(nid)[0]
                for nid in range(
                    db.store.document("b.xml").first_nid,
                    db.store.document("b.xml").last_nid + 1,
                )
            }
            a_pages = {
                db.store.meta.locate(nid)[0]
                for nid in range(
                    db.store.document("a.xml").first_nid,
                    db.store.document("a.xml").last_nid + 1,
                )
            }
        victim = min(b_pages - a_pages)
        with open(os.path.join(directory, DATA_FILE), "r+b") as handle:
            handle.seek(victim * PAGE_SIZE + 50)
            handle.write(b"\xff\xff\xff\xff")
        db = Database(directory, degraded=True)
        try:
            assert db.documents() == ["a.xml"]
            # The surviving document still answers queries.
            result = db.query(
                "FOR $a IN document(\"a.xml\")//year RETURN $a", plan="direct"
            )
            assert len(result) > 0
        finally:
            db.close()

    def test_database_verify_reports_index_freshness(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        with Database(directory) as db:
            db.load(tree=figure6_database(), name="a.xml")
            report = db.verify()
            assert report.ok
            assert report.index_fresh is True


class TestIdempotentClose:
    def test_store_double_close(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        store = NodeStore(directory)
        store.load_tree(figure6_database(), "a.xml")
        store.close()
        store.close()

    def test_store_exit_after_close(self, tmp_path):
        with NodeStore(os.path.join(tmp_path, "db")) as store:
            store.load_tree(figure6_database(), "a.xml")
            store.close()

    def test_database_double_close_and_exit(self, tmp_path):
        with Database(os.path.join(tmp_path, "db")) as db:
            db.load(tree=figure6_database(), name="a.xml")
            db.close()
            db.close()

    def test_memory_store_double_close(self, store):
        store.close()
        store.close()


class TestLoadFileErrors:
    def test_store_load_file_missing_path(self, tmp_path):
        store = NodeStore()
        missing = os.path.join(tmp_path, "nope.xml")
        with pytest.raises(DatabaseError) as excinfo:
            store.load_file(missing)
        assert missing in str(excinfo.value)

    def test_database_load_file_missing_path(self, tmp_path):
        db = Database()
        missing = os.path.join(tmp_path, "gone.xml")
        with pytest.raises(DatabaseError) as excinfo:
            db.load(path=missing)
        assert missing in str(excinfo.value)

    def test_load_file_unreadable_directory_path(self, tmp_path):
        db = Database()
        with pytest.raises(DatabaseError):
            db.load(path=str(tmp_path))  # a directory, not a file
