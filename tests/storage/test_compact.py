"""Store compaction tests: dropped space reclaimed, live data intact."""

import os

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1, figure6_database
from repro.query.database import Database
from repro.storage.store import NodeStore


def big_tree():
    return generate_dblp(DBLPConfig(n_articles=200, n_authors=40, seed=5))


class TestStoreCompact:
    def test_in_memory_compaction_preserves_documents(self):
        store = NodeStore()
        keep = figure6_database()
        store.load_tree(keep.deep_copy(), "keep.xml")
        store.load_tree(big_tree(), "drop.xml")
        store.drop_document("drop.xml")
        compacted = store.compact()
        assert [info.name for info in compacted.documents()] == ["keep.xml"]
        info = compacted.document("keep.xml")
        assert compacted.materialize(info.root_nid).structurally_equal(keep)

    def test_space_reclaimed(self):
        store = NodeStore()
        store.load_tree(figure6_database(), "keep.xml")
        store.load_tree(big_tree(), "drop.xml")
        pages_before = store.disk.n_pages
        store.drop_document("drop.xml")
        compacted = store.compact()
        assert compacted.disk.n_pages < pages_before

    def test_nids_renumbered_densely(self):
        store = NodeStore()
        store.load_tree(big_tree(), "drop.xml")
        store.load_tree(figure6_database(), "keep.xml")
        store.drop_document("drop.xml")
        compacted = store.compact()
        info = compacted.document("keep.xml")
        assert info.first_nid == 0
        assert compacted.n_nodes() == info.n_nodes

    def test_on_disk_compaction(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        store = NodeStore(directory)
        store.load_tree(big_tree(), "drop.xml")
        store.load_tree(figure6_database(), "keep.xml")
        size_before = os.path.getsize(os.path.join(directory, "data.pages"))
        store.drop_document("drop.xml")
        compacted = store.compact()
        size_after = os.path.getsize(os.path.join(directory, "data.pages"))
        assert size_after < size_before
        keep = compacted.document("keep.xml")
        assert compacted.materialize(keep.root_nid).find("article") is not None
        compacted.close()

    def test_compaction_survives_reopen(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        store = NodeStore(directory)
        store.load_tree(big_tree(), "drop.xml")
        store.load_tree(figure6_database(), "keep.xml")
        store.drop_document("drop.xml")
        store.compact().close()
        with NodeStore(directory) as reopened:
            assert [info.name for info in reopened.documents()] == ["keep.xml"]


class TestDatabaseCompact:
    def test_queries_work_after_compaction(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        with Database(directory=directory) as db:
            db.load(tree=big_tree(), name="drop.xml")
            db.load(tree=figure6_database(), name="bib.xml")
            expected = db.query(QUERY_1).collection
            db.drop_document("drop.xml")
            db.compact()
            assert db.query(QUERY_1).collection.structurally_equal(expected)

    def test_in_memory_database_compaction(self, db):
        db.load(tree=big_tree(), name="extra.xml")
        db.drop_document("extra.xml")
        db.compact()
        assert len(db.query(QUERY_1).collection) == 3
