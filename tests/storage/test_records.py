"""Node-record encoding tests, including hypothesis round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.records import NO_PARENT, NodeRecord, decode_record, encode_record


def record(**overrides) -> NodeRecord:
    base = dict(
        nid=5,
        parent=2,
        tag_sym=3,
        start=10,
        end=15,
        level=2,
        content="Jack",
        attributes=(("lang", "en"),),
    )
    base.update(overrides)
    return NodeRecord(**base)


class TestRoundTrip:
    def test_full_record(self):
        original = record()
        assert decode_record(encode_record(original)) == original

    def test_no_content(self):
        original = record(content=None)
        assert decode_record(encode_record(original)) == original

    def test_empty_content_distinct_from_none(self):
        empty = record(content="")
        assert decode_record(encode_record(empty)).content == ""
        none = record(content=None)
        assert decode_record(encode_record(none)).content is None

    def test_no_attributes(self):
        original = record(attributes=())
        assert decode_record(encode_record(original)) == original

    def test_unicode_content(self):
        original = record(content="Grüß 東京 ∞")
        assert decode_record(encode_record(original)) == original

    def test_root_parent_sentinel(self):
        original = record(parent=NO_PARENT)
        assert decode_record(encode_record(original)).parent == NO_PARENT

    def test_truncated_bytes_rejected(self):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            decode_record(b"\x00\x01")


class TestDerivedProperties:
    def test_subtree_node_count(self):
        # start=10, end=15: counter values 10..15 cover 3 nodes.
        assert record(start=10, end=15).subtree_node_count == 3

    def test_leaf(self):
        assert record(start=10, end=11).is_leaf
        assert not record(start=10, end=15).is_leaf

    def test_contains(self):
        outer = record(start=0, end=9)
        inner = record(start=2, end=3, level=3)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_is_parent_of_requires_level(self):
        outer = record(start=0, end=9, level=1)
        child = record(start=2, end=3, level=2)
        grandchild = record(start=4, end=5, level=3)
        assert outer.is_parent_of(child)
        assert not outer.is_parent_of(grandchild)


contents = st.one_of(st.none(), st.text(max_size=50))
names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=10
)


@settings(max_examples=100, deadline=None)
@given(
    nid=st.integers(0, 2**32 - 1),
    parent=st.integers(0, 2**32 - 1),
    tag_sym=st.integers(0, 2**32 - 1),
    start=st.integers(0, 2**31),
    level=st.integers(0, 2**16 - 1),
    content=contents,
    attributes=st.lists(st.tuples(names, st.text(max_size=20)), max_size=4),
)
def test_roundtrip_property(nid, parent, tag_sym, start, level, content, attributes):
    original = NodeRecord(
        nid=nid,
        parent=parent,
        tag_sym=tag_sym,
        start=start,
        end=start + 1,
        level=level,
        content=content,
        attributes=tuple(attributes),
    )
    assert decode_record(encode_record(original)) == original
