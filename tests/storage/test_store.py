"""Node-store tests: loading, labels, navigation, materialization,
persistence, statistics."""

import os

import pytest

from repro.errors import DatabaseError
from repro.storage.records import NO_PARENT
from repro.storage.store import NodeStore
from repro.xmlmodel.node import element
from repro.xmlmodel.parse import parse_document


class TestLoading:
    def test_document_registered(self, store):
        info = store.document("bib.xml")
        assert info.name == "bib.xml"
        assert info.n_nodes == store.n_nodes()

    def test_duplicate_name_rejected(self, store, fig6_tree):
        with pytest.raises(DatabaseError):
            store.load_tree(fig6_tree.deep_copy(), "bib.xml")

    def test_unknown_document_rejected(self, store):
        with pytest.raises(DatabaseError):
            store.document("nope.xml")

    def test_load_text(self):
        store = NodeStore()
        info = store.load_text("<a><b>x</b></a>", "t.xml")
        assert info.n_nodes == 2

    def test_nids_assigned_to_source_tree(self, fig6_tree):
        store = NodeStore()
        store.load_tree(fig6_tree, "bib.xml")
        nids = [node.nid for node in fig6_tree.iter()]
        assert nids == list(range(len(nids)))  # preorder

    def test_multiple_documents_disjoint_ranges(self, fig6_tree):
        store = NodeStore()
        first = store.load_tree(fig6_tree, "a.xml")
        second = store.load_text("<r><x>1</x></r>", "b.xml")
        assert second.first_nid == first.last_nid + 1
        # Labels must be disjoint too (for cross-document joins).
        _, end_a, _ = store.label(first.root_nid)
        start_b, _, _ = store.label(second.root_nid)
        assert start_b > end_a


class TestLabels:
    def test_root_label(self, store):
        info = store.document("bib.xml")
        start, end, level = store.label(info.root_nid)
        assert level == 0
        assert (end - start + 1) // 2 == info.n_nodes

    def test_containment_invariant(self, store):
        """Every child's region nests strictly inside its parent's."""
        for record in store.scan():
            if record.parent == NO_PARENT:
                continue
            parent = store.record(record.parent)
            assert parent.start < record.start
            assert record.end < parent.end
            assert record.level == parent.level + 1

    def test_document_order_by_start(self, store):
        starts = [record.start for record in store.scan()]
        assert starts == sorted(starts)

    def test_is_ancestor(self, store):
        info = store.document("bib.xml")
        root = info.root_nid
        assert store.is_ancestor(root, root + 1)
        assert not store.is_ancestor(root + 1, root)


class TestNavigation:
    def test_children_match_source(self, store, fig6_tree):
        for node in fig6_tree.iter():
            expected = [child.nid for child in node.children]
            assert store.children(node.nid) == expected

    def test_parent(self, store, fig6_tree):
        for node in fig6_tree.iter():
            if node.parent is None:
                assert store.parent(node.nid) is None
            else:
                assert store.parent(node.nid) == node.parent.nid

    def test_subtree_nids_contiguous(self, store, fig6_tree):
        article = fig6_tree.children[0]
        nids = store.subtree_nids(article.nid)
        assert list(nids) == [n.nid for n in article.iter()]

    def test_tag_and_content(self, store, fig6_tree):
        author = fig6_tree.children[0].children[0]
        assert store.tag(author.nid) == "author"
        assert store.content(author.nid) == "Jack"


class TestMaterialization:
    def test_full_roundtrip(self, store, fig6_tree):
        info = store.document("bib.xml")
        assert store.materialize(info.root_nid).structurally_equal(fig6_tree)

    def test_subtree_materialization(self, store, fig6_tree):
        article = fig6_tree.children[1]
        assert store.materialize(article.nid).structurally_equal(article)

    def test_shell_has_no_content(self, store):
        info = store.document("bib.xml")
        shell = store.materialize(info.root_nid, with_content=False)
        assert all(node.content is None for node in shell.iter())
        assert all(node.nid is not None for node in shell.iter())

    def test_populate_content_completes_shell(self, store, fig6_tree):
        info = store.document("bib.xml")
        shell = store.materialize(info.root_nid, with_content=False)
        store.populate_content(shell)
        assert shell.structurally_equal(fig6_tree)

    def test_attributes_roundtrip(self):
        store = NodeStore()
        tree = element("a", None, element("b", "x", lang="en", kind="y"))
        store.load_tree(tree, "t.xml")
        again = store.materialize(0)
        assert again.children[0].attributes == {"lang": "en", "kind": "y"}


class TestPersistence:
    def test_reopen_database_directory(self, tmp_path, fig6_tree):
        directory = os.path.join(tmp_path, "db")
        with NodeStore(directory) as store:
            store.load_tree(fig6_tree, "bib.xml")
            expected_nodes = store.n_nodes()
        with NodeStore(directory) as store:
            info = store.document("bib.xml")
            assert store.n_nodes() == expected_nodes
            assert store.materialize(info.root_nid).structurally_equal(fig6_tree)

    def test_reopen_preserves_symbols(self, tmp_path, fig6_tree):
        directory = os.path.join(tmp_path, "db")
        with NodeStore(directory) as store:
            store.load_tree(fig6_tree, "bib.xml")
            tags_before = [store.tag(nid) for nid in range(store.n_nodes())]
        with NodeStore(directory) as store:
            tags_after = [store.tag(nid) for nid in range(store.n_nodes())]
        assert tags_before == tags_after

    def test_append_document_after_reopen(self, tmp_path, fig6_tree):
        directory = os.path.join(tmp_path, "db")
        with NodeStore(directory) as store:
            store.load_tree(fig6_tree, "a.xml")
        with NodeStore(directory) as store:
            info = store.load_text("<r><x>1</x></r>", "b.xml")
            assert store.materialize(info.root_nid).children[0].content == "1"
            assert len(store.documents()) == 2


class TestStatistics:
    def test_record_lookup_counted(self, store):
        store.reset_statistics()
        store.record(0)
        store.record(1)
        assert store.counters.record_lookups == 2

    def test_value_lookup_counted(self, store):
        store.reset_statistics()
        store.content(1)
        assert store.counters.value_lookups == 1

    def test_materialize_counts_nodes(self, store):
        info = store.document("bib.xml")
        store.reset_statistics()
        store.materialize(info.root_nid)
        assert store.counters.nodes_materialized == info.n_nodes

    def test_statistics_merge_keys(self, store):
        stats = store.statistics()
        for key in ("record_lookups", "hits", "misses", "physical_reads"):
            assert key in stats

    def test_reset_clears_everything(self, store):
        store.record(0)
        store.reset_statistics()
        assert store.counters.record_lookups == 0
        assert store.pool.counters.requests == 0


class TestLargeDocument:
    def test_spans_many_pages(self):
        root = element("doc_root", None)
        for i in range(2000):
            item = root.add("item")
            item.add("name", f"value-{i:05d}")
            item.add("payload", "x" * 64)
        store = NodeStore()
        info = store.load_tree(root, "big.xml")
        assert store.disk.n_pages > 5
        assert store.materialize(info.root_nid).structurally_equal(root)

    def test_locate_across_pages(self):
        root = element("doc_root", None)
        for i in range(3000):
            root.add("n", str(i))
        store = NodeStore()
        store.load_tree(root, "big.xml")
        # Every child nid resolves to the right record.
        assert store.content(1500) == "1499"
        assert store.content(3000) == "2999"
