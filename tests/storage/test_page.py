"""Slotted-page unit tests."""

import pytest

from repro.errors import PageCorruptionError, StorageError
from repro.storage.page import HEADER_SIZE, PAGE_SIZE, SLOT_SIZE, Page


class TestInsertRead:
    def test_insert_returns_sequential_slots(self):
        page = Page(0)
        assert page.insert_record(b"alpha") == 0
        assert page.insert_record(b"beta") == 1

    def test_read_back(self):
        page = Page(0)
        page.insert_record(b"alpha")
        page.insert_record(b"beta")
        assert page.read_record(0) == b"alpha"
        assert page.read_record(1) == b"beta"

    def test_records_in_order(self):
        page = Page(0)
        payloads = [bytes([i]) * (i + 1) for i in range(10)]
        for payload in payloads:
            page.insert_record(payload)
        assert page.records() == payloads

    def test_empty_record_allowed(self):
        page = Page(0)
        slot = page.insert_record(b"")
        assert page.read_record(slot) == b""

    def test_read_missing_slot_raises(self):
        page = Page(0)
        with pytest.raises(StorageError):
            page.read_record(0)

    def test_dirty_flag_set_on_insert(self):
        page = Page(0)
        assert not page.dirty
        page.insert_record(b"x")
        assert page.dirty


class TestFreeSpace:
    def test_fresh_page_free_space(self):
        page = Page(0)
        assert page.free_space() == PAGE_SIZE - HEADER_SIZE - SLOT_SIZE

    def test_free_space_shrinks_by_record_and_slot(self):
        page = Page(0)
        before = page.free_space()
        page.insert_record(b"12345")
        assert page.free_space() == before - 5 - SLOT_SIZE

    def test_overflow_rejected(self):
        page = Page(0)
        with pytest.raises(StorageError):
            page.insert_record(b"x" * PAGE_SIZE)

    def test_fill_to_capacity(self):
        page = Page(0)
        count = 0
        while page.free_space() >= 8:
            page.insert_record(b"12345678")
            count += 1
        # 8 KB page, 8-byte records + 4-byte slots: ~680 records fit.
        assert count == (PAGE_SIZE - HEADER_SIZE) // (8 + SLOT_SIZE)
        assert page.records()[count - 1] == b"12345678"


class TestSealValidate:
    def test_seal_roundtrip(self):
        page = Page(7)
        page.insert_record(b"payload")
        raw = page.seal()
        again = Page(7, bytearray(raw))
        assert again.read_record(0) == b"payload"

    def test_bit_flip_detected(self):
        page = Page(3)
        page.insert_record(b"payload")
        raw = bytearray(page.seal())
        raw[HEADER_SIZE + 2] ^= 0xFF
        with pytest.raises(PageCorruptionError):
            Page(3, raw)

    def test_wrong_page_id_detected(self):
        page = Page(3)
        raw = bytearray(page.seal())
        with pytest.raises(PageCorruptionError):
            Page(4, raw)

    def test_bad_magic_detected(self):
        page = Page(3)
        raw = bytearray(page.seal())
        raw[0] = 0x00
        with pytest.raises(PageCorruptionError):
            Page(3, raw)

    def test_wrong_length_rejected(self):
        with pytest.raises(StorageError):
            Page(0, bytearray(100))
