"""Metadata-manager unit tests: symbol table, catalog, page directory."""

import os

import pytest

from repro.errors import DatabaseError
from repro.storage.metadata import DocumentInfo, MetadataManager, SymbolTable


class TestSymbolTable:
    def test_intern_is_idempotent(self):
        table = SymbolTable()
        a = table.intern("article")
        assert table.intern("article") == a
        assert len(table) == 1

    def test_symbols_are_dense(self):
        table = SymbolTable()
        symbols = [table.intern(name) for name in ("a", "b", "c")]
        assert symbols == [0, 1, 2]

    def test_name_roundtrip(self):
        table = SymbolTable()
        sym = table.intern("author")
        assert table.name(sym) == "author"

    def test_lookup_missing_is_none(self):
        assert SymbolTable().lookup("ghost") is None

    def test_serialization_roundtrip(self):
        table = SymbolTable()
        for name in ("x", "y", "z"):
            table.intern(name)
        again = SymbolTable.from_list(table.to_list())
        assert again.names() == table.names()
        assert again.lookup("y") == table.lookup("y")


class TestCatalog:
    def test_register_and_fetch(self):
        meta = MetadataManager()
        info = meta.register_document("a.xml", root_nid=0, n_nodes=5)
        assert meta.document_by_name("a.xml") == info
        assert meta.document(info.doc_id) == info

    def test_duplicate_rejected(self):
        meta = MetadataManager()
        meta.register_document("a.xml", 0, 5)
        with pytest.raises(DatabaseError):
            meta.register_document("a.xml", 5, 3)

    def test_document_of_nid(self):
        meta = MetadataManager()
        first = meta.register_document("a.xml", 0, 5)
        second = meta.register_document("b.xml", 5, 3)
        assert meta.document_of_nid(4) == first
        assert meta.document_of_nid(5) == second
        with pytest.raises(DatabaseError):
            meta.document_of_nid(99)

    def test_nid_range_properties(self):
        info = DocumentInfo(doc_id=0, name="a", root_nid=10, n_nodes=4)
        assert info.first_nid == 10
        assert info.last_nid == 13

    def test_remove_document(self):
        meta = MetadataManager()
        meta.register_document("a.xml", 0, 5)
        removed = meta.remove_document("a.xml")
        assert removed.name == "a.xml"
        with pytest.raises(DatabaseError):
            meta.document_by_name("a.xml")
        with pytest.raises(DatabaseError):
            meta.remove_document("a.xml")


class TestPageDirectory:
    def make(self):
        meta = MetadataManager()
        meta.register_page(0, 0)    # nids 0..99
        meta.register_page(1, 100)  # nids 100..149
        meta.register_page(2, 150)  # nids 150..
        meta.next_nid = 200
        return meta

    def test_locate_first_page(self):
        assert self.make().locate(0) == (0, 0)
        assert self.make().locate(99) == (0, 99)

    def test_locate_interior_pages(self):
        meta = self.make()
        assert meta.locate(100) == (1, 0)
        assert meta.locate(149) == (1, 49)
        assert meta.locate(150) == (2, 0)
        assert meta.locate(199) == (2, 49)

    def test_locate_out_of_range(self):
        meta = self.make()
        with pytest.raises(DatabaseError):
            meta.locate(200)
        with pytest.raises(DatabaseError):
            meta.locate(-1)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        meta = MetadataManager()
        meta.symbols.intern("article")
        meta.symbols.intern("author")
        meta.register_document("a.xml", 0, 7)
        meta.register_page(0, 0)
        meta.next_nid = 7
        meta.next_label = 14
        path = os.path.join(tmp_path, "meta.json")
        meta.save(path)

        again = MetadataManager.load(path)
        assert again.symbols.names() == ["article", "author"]
        assert again.document_by_name("a.xml").n_nodes == 7
        assert again.locate(3) == (0, 3)
        assert again.next_label == 14

    def test_missing_next_label_defaults(self, tmp_path):
        """Forward compatibility: old meta files without next_label load."""
        import json

        meta = MetadataManager()
        meta.register_document("a.xml", 0, 1)
        meta.register_page(0, 0)
        meta.next_nid = 1
        path = os.path.join(tmp_path, "meta.json")
        meta.save(path)
        with open(path) as handle:
            payload = json.load(handle)
        del payload["next_label"]
        with open(path, "w") as handle:
            json.dump(payload, handle)
        assert MetadataManager.load(path).next_label == 0
