"""Buffer-pool tests: LRU behaviour, pinning, statistics."""

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.page import Page


def make_pool(capacity: int = 3, n_pages: int = 6) -> BufferPool:
    disk = DiskManager(None)
    for _ in range(n_pages):
        page = Page(disk.allocate_page())
        page.insert_record(str(page.page_id).encode())
        disk.write_page(page)
    return BufferPool(disk, capacity=capacity)


class TestHitsAndMisses:
    def test_miss_then_hit(self):
        pool = make_pool()
        pool.get_page(0)
        pool.get_page(0)
        assert pool.counters.misses == 1
        assert pool.counters.hits == 1
        assert pool.counters.hit_ratio() == 0.5

    def test_content_correct_through_pool(self):
        pool = make_pool()
        assert pool.get_page(2).read_record(0) == b"2"

    def test_capacity_respected(self):
        pool = make_pool(capacity=3)
        for page_id in range(6):
            pool.get_page(page_id)
        assert len(pool) == 3
        assert pool.counters.evictions == 3

    def test_lru_eviction_order(self):
        pool = make_pool(capacity=2)
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(0)  # 0 is now most recent
        pool.get_page(2)  # evicts 1
        assert 0 in pool
        assert 1 not in pool
        assert 2 in pool

    def test_requests_property(self):
        pool = make_pool()
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(0)
        assert pool.counters.requests == 3


class TestPinning:
    def test_pinned_page_survives_pressure(self):
        pool = make_pool(capacity=2)
        pool.pin(0)
        pool.get_page(1)
        pool.get_page(2)
        pool.get_page(3)
        assert 0 in pool
        pool.unpin(0)

    def test_unpin_not_pinned_raises(self):
        pool = make_pool()
        pool.get_page(0)
        with pytest.raises(BufferPoolError):
            pool.unpin(0)

    def test_all_pinned_cannot_evict(self):
        pool = make_pool(capacity=2)
        pool.pin(0)
        pool.pin(1)
        with pytest.raises(BufferPoolError):
            pool.get_page(2)

    def test_pinned_count(self):
        pool = make_pool()
        pool.pin(0)
        pool.pin(0)
        assert pool.pinned_count() == 1
        pool.unpin(0)
        pool.unpin(0)
        assert pool.pinned_count() == 0

    def test_unpin_dirty_marks_page(self):
        pool = make_pool()
        page = pool.pin(0)
        page.insert_record(b"new")
        pool.unpin(0, dirty=True)
        pool.flush_all()
        fresh = pool.disk.read_page(0)
        assert fresh.read_record(1) == b"new"


class TestDirtyWriteback:
    def test_eviction_writes_back_dirty_page(self):
        pool = make_pool(capacity=1)
        page = pool.get_page(0)
        page.insert_record(b"dirty")
        page.dirty = True
        pool.get_page(1)  # evicts page 0
        assert pool.counters.dirty_writebacks == 1
        assert pool.disk.read_page(0).read_record(1) == b"dirty"

    def test_clean_eviction_skips_writeback(self):
        pool = make_pool(capacity=1)
        pool.get_page(0)
        pool.get_page(1)
        assert pool.counters.dirty_writebacks == 0


class TestLifecycle:
    def test_put_new_page(self):
        disk = DiskManager(None)
        pool = BufferPool(disk, capacity=4)
        page = Page(disk.allocate_page())
        pool.put_new_page(page)
        assert pool.counters.misses == 0
        assert page.page_id in pool

    def test_put_duplicate_rejected(self):
        disk = DiskManager(None)
        pool = BufferPool(disk, capacity=4)
        page = Page(disk.allocate_page())
        pool.put_new_page(page)
        with pytest.raises(BufferPoolError):
            pool.put_new_page(Page(page.page_id))

    def test_clear_flushes_and_empties(self):
        pool = make_pool()
        page = pool.get_page(0)
        page.insert_record(b"extra")
        page.dirty = True
        pool.clear()
        assert len(pool) == 0
        assert pool.disk.read_page(0).read_record(1) == b"extra"

    def test_clear_with_pins_rejected(self):
        pool = make_pool()
        pool.pin(0)
        with pytest.raises(BufferPoolError):
            pool.clear()

    def test_resize_down_evicts(self):
        pool = make_pool(capacity=4)
        for page_id in range(4):
            pool.get_page(page_id)
        pool.resize(2)
        assert len(pool) == 2

    def test_zero_capacity_rejected(self):
        disk = DiskManager(None)
        with pytest.raises(BufferPoolError):
            BufferPool(disk, capacity=0)
