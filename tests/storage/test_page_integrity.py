"""Corruption detection on encoded pages.

Flip bytes in a sealed page image — payload, slot count, page id,
magic — and assert :class:`PageCorruptionError` surfaces on the next
read, for both the file and the memory disk backings.

Header layout (see page.py): magic at 0 (u16), page id at 2 (u32),
slot count at 6 (u16), free offset at 8 (u16), payload CRC32 at 10
(u32).  The CRC covers only ``data[HEADER_SIZE:]``, so header fields
need their own structural checks — these tests pin both detectors.
"""

import os
import struct

import pytest

from repro.errors import PageCorruptionError
from repro.storage.disk import DiskManager
from repro.storage.page import HEADER_SIZE, PAGE_SIZE, Page

BACKINGS = ("file", "memory")


def _open_disk(backing: str, tmp_path) -> DiskManager:
    if backing == "memory":
        return DiskManager(None)
    return DiskManager(os.path.join(tmp_path, "data.pages"))


def _write_sample_page(disk: DiskManager) -> int:
    page_id = disk.allocate_page()
    page = Page(page_id)
    page.insert_record(b"alpha record")
    page.insert_record(b"beta record")
    disk.write_page(page)
    return page_id


def _read_raw(disk: DiskManager, page_id: int) -> bytearray:
    if disk._memory is not None:
        return bytearray(disk._memory[page_id])
    disk._handle.seek(page_id * PAGE_SIZE)
    return bytearray(disk._handle.read(PAGE_SIZE))


def _write_raw(disk: DiskManager, page_id: int, raw: bytearray) -> None:
    assert len(raw) == PAGE_SIZE
    if disk._memory is not None:
        disk._memory[page_id] = bytes(raw)
    else:
        disk._handle.seek(page_id * PAGE_SIZE)
        disk._handle.write(bytes(raw))
        disk._handle.flush()


@pytest.fixture(params=BACKINGS)
def corruptible(request, tmp_path):
    """(disk, page_id) with one sealed page, cleanly closed afterwards."""
    disk = _open_disk(request.param, tmp_path)
    page_id = _write_sample_page(disk)
    yield disk, page_id
    disk.close()


def _corrupt(disk: DiskManager, page_id: int, mutate) -> None:
    raw = _read_raw(disk, page_id)
    mutate(raw)
    _write_raw(disk, page_id, raw)


class TestPageCorruptionDetection:
    def test_clean_page_reads_back(self, corruptible):
        disk, page_id = corruptible
        assert disk.read_page(page_id).records() == [b"alpha record", b"beta record"]

    def test_payload_byte_flip_fails_checksum(self, corruptible):
        disk, page_id = corruptible

        def mutate(raw):
            raw[HEADER_SIZE + 3] ^= 0xFF

        _corrupt(disk, page_id, mutate)
        with pytest.raises(PageCorruptionError, match="checksum mismatch"):
            disk.read_page(page_id)

    def test_single_bit_flip_fails_checksum(self, corruptible):
        disk, page_id = corruptible

        def mutate(raw):
            raw[PAGE_SIZE - 1] ^= 0x01  # last slot-directory byte

        _corrupt(disk, page_id, mutate)
        with pytest.raises(PageCorruptionError, match="checksum mismatch"):
            disk.read_page(page_id)

    def test_bad_slot_count_is_structural(self, corruptible):
        """The header escapes the CRC, so an absurd slot count must be
        caught by the directory-overlap check, not the checksum."""
        disk, page_id = corruptible

        def mutate(raw):
            struct.pack_into(">H", raw, 6, 0xFFFF)

        _corrupt(disk, page_id, mutate)
        with pytest.raises(PageCorruptionError, match="slot count"):
            disk.read_page(page_id)

    def test_bad_page_id_detected(self, corruptible):
        disk, page_id = corruptible

        def mutate(raw):
            struct.pack_into(">I", raw, 2, page_id + 99)

        _corrupt(disk, page_id, mutate)
        with pytest.raises(PageCorruptionError, match="claims page id"):
            disk.read_page(page_id)

    def test_bad_magic_detected(self, corruptible):
        disk, page_id = corruptible

        def mutate(raw):
            struct.pack_into(">H", raw, 0, 0xDEAD)

        _corrupt(disk, page_id, mutate)
        with pytest.raises(PageCorruptionError, match="bad magic"):
            disk.read_page(page_id)

    def test_bad_free_offset_detected(self, corruptible):
        disk, page_id = corruptible

        def mutate(raw):
            struct.pack_into(">H", raw, 8, HEADER_SIZE - 1)

        _corrupt(disk, page_id, mutate)
        with pytest.raises(PageCorruptionError, match="free offset"):
            disk.read_page(page_id)

    def test_unsealed_construction_rejects_corruption_too(self, corruptible):
        """Page() itself validates raw images, independent of the disk."""
        disk, page_id = corruptible
        raw = _read_raw(disk, page_id)
        raw[HEADER_SIZE] ^= 0x10
        with pytest.raises(PageCorruptionError):
            Page(page_id, raw)
