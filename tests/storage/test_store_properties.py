"""Property-based tests: the store is a faithful tree codec."""

from hypothesis import given, settings, strategies as st

from repro.storage.records import NO_PARENT
from repro.storage.store import NodeStore
from repro.xmlmodel.node import XMLNode

tags = st.sampled_from(["a", "b", "c", "item", "author", "title"])
contents = st.one_of(st.none(), st.text(max_size=12))


@st.composite
def xml_trees(draw, max_depth: int = 3) -> XMLNode:
    node = XMLNode(draw(tags), draw(contents))
    if max_depth > 0:
        for child in draw(st.lists(xml_trees(max_depth=max_depth - 1), max_size=3)):
            node.append_child(child)
    return node


@settings(max_examples=50, deadline=None)
@given(xml_trees())
def test_store_materialize_roundtrip(tree):
    store = NodeStore()
    info = store.load_tree(tree.deep_copy(), "t.xml")
    assert store.materialize(info.root_nid).structurally_equal(tree)


@settings(max_examples=50, deadline=None)
@given(xml_trees())
def test_label_nesting_invariants(tree):
    """start < end, children nested, levels parent+1, subtree sizes exact."""
    store = NodeStore()
    store.load_tree(tree, "t.xml")
    records = {record.nid: record for record in store.scan()}
    for record in records.values():
        assert record.start < record.end
        assert (record.end - record.start + 1) % 2 == 0
        if record.parent != NO_PARENT:
            parent = records[record.parent]
            assert parent.start < record.start < record.end < parent.end
            assert record.level == parent.level + 1


@settings(max_examples=50, deadline=None)
@given(xml_trees())
def test_children_navigation_matches_tree(tree):
    store = NodeStore()
    store.load_tree(tree, "t.xml")
    for node in tree.iter():
        assert store.children(node.nid) == [child.nid for child in node.children]


@settings(max_examples=50, deadline=None)
@given(xml_trees())
def test_subtree_count_matches(tree):
    store = NodeStore()
    store.load_tree(tree, "t.xml")
    for node in tree.iter():
        assert store.subtree_node_count(node.nid) == node.subtree_size()


@settings(max_examples=30, deadline=None)
@given(st.lists(xml_trees(max_depth=2), min_size=1, max_size=4))
def test_multiple_documents_isolated(trees):
    """Documents stored together keep disjoint nid/label ranges and
    materialize independently."""
    store = NodeStore()
    infos = []
    for index, tree in enumerate(trees):
        infos.append((store.load_tree(tree.deep_copy(), f"doc{index}.xml"), tree))
    previous_end = -1
    for info, tree in infos:
        start, end, _ = store.label(info.root_nid)
        assert start > previous_end
        previous_end = end
        assert store.materialize(info.root_nid).structurally_equal(tree)
