"""The fault-injection harness: plans, the faulty disk wrapper, and the
buffer pool's bounded retry-with-backoff on transient faults."""

import os

import pytest

from repro.errors import PageCorruptionError, StorageError, TransientIOError
from repro.storage.disk import DiskManager
from repro.storage.faults import (
    NO_FAULTS,
    FaultPlan,
    FaultyDiskManager,
    SimulatedCrash,
    plan_from_env,
)
from repro.storage.page import Page
from repro.storage.store import NodeStore


def _fast_retries(store: NodeStore) -> NodeStore:
    store.pool.retry_backoff = 0.0
    return store


class TestFaultPlanParsing:
    def test_none_is_noop(self):
        assert FaultPlan.parse("none").is_noop()
        assert FaultPlan.parse("").is_noop()
        assert NO_FAULTS.is_noop()

    def test_round_trip(self):
        plan = FaultPlan(seed=7, read_error_rate=0.25, fail_after=10, crash_at="load.pages_synced")
        assert FaultPlan.parse(plan.describe()) == plan

    def test_parse_fields(self):
        plan = FaultPlan.parse("seed=3, bit_flip_rate=0.5, torn_write_after=2")
        assert plan.seed == 3
        assert plan.bit_flip_rate == 0.5
        assert plan.torn_write_after == 2
        assert not plan.is_noop()

    def test_unknown_key_rejected(self):
        with pytest.raises(StorageError):
            FaultPlan.parse("explode=1")

    def test_malformed_entry_rejected(self):
        with pytest.raises(StorageError):
            FaultPlan.parse("read_error_rate")

    def test_plan_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert plan_from_env() is None
        monkeypatch.setenv("REPRO_FAULT_PLAN", "seed=9,read_error_rate=0.1")
        assert plan_from_env() == FaultPlan(seed=9, read_error_rate=0.1)


class TestTransparency:
    """A no-fault plan installs the wrapper but changes nothing."""

    def test_wrapper_is_installed(self, fig6_tree):
        store = NodeStore(fault_plan=NO_FAULTS)
        assert isinstance(store.disk, FaultyDiskManager)
        store.load_tree(fig6_tree, "bib.xml")
        assert store.record(0).nid == 0

    def test_counters_identical_with_and_without_wrapper(self, fig6_tree, monkeypatch):
        # The CI transparency job sets REPRO_FAULT_PLAN=none globally;
        # drop it so the "plain" store is genuinely unwrapped.
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        plain = NodeStore()
        assert not isinstance(plain.disk, FaultyDiskManager)
        wrapped = NodeStore(fault_plan=NO_FAULTS)
        for store in (plain, wrapped):
            store.load_tree(fig6_tree, "bib.xml")
            for nid in range(store.n_nodes()):
                store.record(nid)
        assert plain.stats().as_dict() == {
            key: value
            for key, value in wrapped.stats().as_dict().items()
            if not key.startswith("fault_")
        }
        assert all(value == 0 for key, value in wrapped.stats().items() if key.startswith("fault_"))

    def test_wrapper_delegates_attributes(self, tmp_path):
        path = os.path.join(tmp_path, "data.pages")
        wrapped = FaultyDiskManager(DiskManager(path), NO_FAULTS)
        assert wrapped.path == path
        assert wrapped.n_pages == 0
        page_id = wrapped.allocate_page()
        page = Page(page_id)
        page.insert_record(b"payload")
        wrapped.write_page(page)
        assert wrapped.read_page(page_id).read_record(0) == b"payload"
        wrapped.close()
        wrapped.close()  # idempotent through the wrapper too


class TestTransientFaults:
    def test_retry_recovers_bounded_fault(self, fig6_tree):
        store = _fast_retries(
            NodeStore(fault_plan=FaultPlan(seed=1, read_error_rate=1.0, max_faults=1))
        )
        store.load_tree(fig6_tree, "bib.xml")
        store.pool.clear()  # force a physical read
        assert store.record(0).nid == 0
        assert store.pool.counters.transient_retries >= 1
        assert store.stats()["fault_injected_read_errors"] == 1

    def test_retry_exhaustion_surfaces_transient_error(self, fig6_tree):
        store = _fast_retries(
            NodeStore(fault_plan=FaultPlan(seed=1, read_error_rate=1.0))
        )
        store.load_tree(fig6_tree, "bib.xml")
        store.pool.clear()
        with pytest.raises(TransientIOError):
            store.record(0)
        assert store.pool.counters.transient_failures == 1

    def test_short_reads_are_transient(self, fig6_tree):
        store = _fast_retries(
            NodeStore(fault_plan=FaultPlan(seed=5, short_read_rate=1.0, max_faults=2))
        )
        store.load_tree(fig6_tree, "bib.xml")
        store.pool.clear()
        assert store.record(0).nid == 0
        assert store.stats()["fault_injected_short_reads"] >= 1

    def test_write_errors_injected(self, fig6_tree, tmp_path):
        directory = os.path.join(tmp_path, "db")
        store = NodeStore(
            directory, fault_plan=FaultPlan(seed=2, write_error_rate=1.0)
        )
        with pytest.raises(TransientIOError):
            store.load_tree(fig6_tree, "bib.xml")
        # The failed load rolled back in-process: the store is clean.
        assert store.documents() == []
        reopened = NodeStore(directory)
        assert reopened.documents() == []
        assert reopened.verify().ok
        reopened.close()


class TestCorruptionFaults:
    def test_bit_flip_detected_by_checksum(self, fig6_tree):
        store = NodeStore(fault_plan=FaultPlan(seed=2, bit_flip_rate=1.0, max_faults=1))
        store.load_tree(fig6_tree, "bib.xml")
        store.pool.clear()
        with pytest.raises(PageCorruptionError):
            store.record(0)
        assert store.stats()["fault_injected_bit_flips"] == 1

    def test_fail_after_is_persistent(self, fig6_tree):
        store = _fast_retries(NodeStore(fault_plan=FaultPlan(fail_after=0)))
        with pytest.raises(TransientIOError):
            store.load_tree(fig6_tree, "bib.xml")


class TestDeterminism:
    def test_same_seed_same_faults(self, fig6_tree):
        def run(seed: int) -> dict:
            store = _fast_retries(
                NodeStore(
                    fault_plan=FaultPlan(seed=seed, read_error_rate=0.3, max_faults=50)
                )
            )
            store.load_tree(fig6_tree, "bib.xml")
            store.pool.clear()
            for nid in range(store.n_nodes()):
                store.record(nid)
            return {
                key: value
                for key, value in store.stats().items()
                if key.startswith("fault_") or key.startswith("transient_")
            }

        assert run(42) == run(42)

    def test_different_seed_different_faults(self, fig6_tree):
        """Distinct seeds shuffle which operations fault (total counts
        may coincide, the injected op sequence should not)."""

        def trace(seed: int) -> list[int]:
            disk = FaultyDiskManager(
                DiskManager(None), FaultPlan(seed=seed, read_error_rate=0.5)
            )
            page_id = disk.allocate_page()
            page = Page(page_id)
            page.insert_record(b"x")
            disk.write_page(page)
            hits = []
            for attempt in range(64):
                try:
                    disk.read_page(page_id)
                except TransientIOError:
                    hits.append(attempt)
            return hits

        assert trace(1) != trace(2)


class TestEnvInstalledPlan:
    def test_store_picks_up_env_plan(self, monkeypatch, fig6_tree):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "none")
        store = NodeStore()
        assert isinstance(store.disk, FaultyDiskManager)
        store.load_tree(fig6_tree, "bib.xml")
        assert store.record(0).nid == 0

    def test_explicit_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "read_error_rate=1.0")
        store = NodeStore(fault_plan=NO_FAULTS)
        assert store.disk.plan == NO_FAULTS
