"""ChaosProxy + NetFaultPlan: plan parsing, transparency, each fault
mode, and healing."""

from __future__ import annotations

import json
import time

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1
from repro.errors import ClientError, RetryBudgetExceededError, ServiceError
from repro.query.database import Database
from repro.service import (
    NET_FAULT_PLAN_ENV,
    NO_NET_FAULTS,
    ChaosProxy,
    NetFaultPlan,
    QueryService,
    ServiceConfig,
    net_plan_from_env,
)
from repro.service.client import BreakerConfig, RetryPolicy, ServiceClient
from repro.service.server import ServerConfig, serve

from .conftest import LineClient


# ----------------------------------------------------------------------
# Plan parsing
# ----------------------------------------------------------------------
def test_plan_parse_roundtrip():
    plan = NetFaultPlan.parse("seed=7, reset_rate=0.05, delay_rate=0.1, max_faults=3")
    assert plan.seed == 7
    assert plan.reset_rate == 0.05
    assert plan.delay_rate == 0.1
    assert plan.max_faults == 3
    assert not plan.is_noop()
    assert NetFaultPlan.parse(plan.describe()) == plan


def test_plan_parse_none_forms():
    for text in ("", "none", "off", "  none  "):
        plan = NetFaultPlan.parse(text)
        assert plan.is_noop()
        assert plan == NO_NET_FAULTS
    assert NO_NET_FAULTS.describe() == "none"


def test_plan_parse_rejects_unknown_key():
    with pytest.raises(ServiceError, match="unknown key"):
        NetFaultPlan.parse("tornado_rate=0.5")
    with pytest.raises(ServiceError, match="key=value"):
        NetFaultPlan.parse("garbage")


def test_plan_from_env(monkeypatch):
    monkeypatch.delenv(NET_FAULT_PLAN_ENV, raising=False)
    assert net_plan_from_env() is None
    monkeypatch.setenv(NET_FAULT_PLAN_ENV, "reset_rate=0.25,seed=3")
    plan = net_plan_from_env()
    assert plan == NetFaultPlan(seed=3, reset_rate=0.25)
    monkeypatch.setenv(NET_FAULT_PLAN_ENV, "none")
    assert net_plan_from_env().is_noop()


# ----------------------------------------------------------------------
# Proxy behavior against a real server
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def backend():
    db = Database()
    db.load(tree=generate_dblp(DBLPConfig(n_articles=20, n_authors=8, seed=5)), name="bib.xml")
    service = QueryService(db, ServiceConfig(workers=2))
    server = serve(service, port=0, config=ServerConfig(poll_interval=0.02))
    server.serve_background()
    yield server
    server.shutdown()
    server.server_close()
    service.close()
    db.close()


def _resilient_client(endpoint, **kwargs) -> ServiceClient:
    kwargs.setdefault(
        "retry",
        RetryPolicy(max_attempts=6, base_delay=0.005, max_delay=0.05, jitter_seed=1),
    )
    kwargs.setdefault("breaker", BreakerConfig(failure_threshold=8, reset_timeout=0.1))
    return ServiceClient(endpoint[0], endpoint[1], **kwargs)


def test_transparent_proxy_changes_nothing(backend):
    with ChaosProxy(backend.endpoint).start() as proxy:
        client = LineClient(proxy.endpoint)
        assert client.ok("PING") == {"pong": True}
        payload = client.ok("QUERY " + json.dumps({"q": QUERY_1}))
        assert payload["rows"] > 0
        assert client.send("QUIT") == "BYE"
        client.close()
        assert proxy.fault_counters.total_faults() == 0
        assert proxy.fault_counters.connections_proxied == 1


def test_refusals_are_bounded_and_survivable(backend):
    plan = NetFaultPlan(seed=11, refuse_rate=1.0, max_faults=2)
    with ChaosProxy(backend.endpoint, plan).start() as proxy:
        client = _resilient_client(proxy.endpoint)
        # Two refused connects burn the fault budget; the third connect
        # goes through and the retried PING succeeds.
        assert client.ping() == {"pong": True}
        assert proxy.fault_counters.refused_connections == 2
        snap = client.counter_snapshot()
        assert snap["client_connect_failures"] + snap["client_network_errors"] >= 2
        assert snap["client_retries"] >= 2
        client.close()


def test_constant_resets_surface_as_typed_error(backend):
    plan = NetFaultPlan(seed=11, reset_rate=1.0)
    with ChaosProxy(backend.endpoint, plan).start() as proxy:
        client = _resilient_client(proxy.endpoint)
        with pytest.raises(ClientError):  # breaker may trip before budget
            client.ping()
        assert proxy.fault_counters.resets >= 1
        client.close()


def test_truncation_tears_the_reply_line(backend):
    # Truncate only server->client traffic: rolls alternate pumps, so
    # force every chunk and let the fault budget keep it finite.
    plan = NetFaultPlan(seed=23, truncate_rate=1.0, max_faults=1)
    with ChaosProxy(backend.endpoint, plan).start() as proxy:
        client = _resilient_client(proxy.endpoint)
        # The first exchange is torn somewhere; the retry (budget
        # exhausted after one fault) completes against a clean pipe.
        assert client.ping() == {"pong": True}
        assert proxy.fault_counters.truncations == 1
        assert client.counter_snapshot()["client_network_errors"] >= 1
        client.close()


def test_delays_are_injected_not_fatal(backend):
    plan = NetFaultPlan(seed=5, delay_rate=1.0, delay_seconds=0.02)
    with ChaosProxy(backend.endpoint, plan).start() as proxy:
        client = _resilient_client(proxy.endpoint)
        assert client.ping() == {"pong": True}
        assert client.ping() == {"pong": True}
        assert proxy.fault_counters.delays >= 2
        # Latency alone costs no retries.
        assert client.counter_snapshot()["client_retries"] == 0
        client.close()


def test_heal_lets_breaker_reclose(backend):
    plan = NetFaultPlan(seed=47, reset_rate=1.0)
    with ChaosProxy(backend.endpoint, plan).start() as proxy:
        client = _resilient_client(
            proxy.endpoint,
            retry=RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01),
            breaker=BreakerConfig(failure_threshold=2, reset_timeout=0.05),
        )
        with pytest.raises(ClientError):
            client.ping()
        assert client.breaker.state == "open"
        proxy.heal()
        # After the reset window, the half-open probe sails through the
        # now-transparent proxy and the breaker re-closes.
        for _ in range(50):
            try:
                if client.ping() == {"pong": True}:
                    break
            except ClientError:
                time.sleep(0.02)  # let the breaker's reset window elapse
        assert client.breaker.state == "closed"
        snap = client.counter_snapshot()
        assert snap["client_breaker_opens"] >= 1
        assert snap["client_breaker_closes"] >= 1
        client.close()


def test_set_plan_swaps_midstream(backend):
    with ChaosProxy(backend.endpoint).start() as proxy:
        client = _resilient_client(proxy.endpoint)
        assert client.ping() == {"pong": True}
        assert proxy.fault_counters.total_faults() == 0
        proxy.set_plan(NetFaultPlan(seed=3, delay_rate=1.0, delay_seconds=0.01))
        assert client.ping() == {"pong": True}
        assert proxy.fault_counters.delays >= 1
        client.close()


# ----------------------------------------------------------------------
# Plan epochs: heal/swap must fully retire the previous plan
# ----------------------------------------------------------------------
def test_healed_proxy_cannot_rearm_stale_plan_or_budget(backend):
    # Regression: heal() used to leave the old plan's fault budget and
    # in-flight decisions live, so a healed proxy could keep faulting.
    plan = NetFaultPlan(seed=11, refuse_rate=1.0, max_faults=10)
    with ChaosProxy(backend.endpoint, plan).start() as proxy:
        client = _resilient_client(proxy.endpoint)
        with pytest.raises(ClientError):
            client.ping()  # burns part of the 10-fault budget
        spent = proxy.fault_counters.total_faults()
        assert 0 < spent < 10

        proxy.heal()
        for _ in range(5):
            assert client.ping() == {"pong": True}
        assert proxy.fault_counters.total_faults() == spent, (
            "healed proxy re-armed faults from the stale plan's budget"
        )

        # And the other direction: a fresh plan's budget counts from
        # zero — it is not pre-spent by the earlier storm.  (Refusals
        # hit connects, so use a client with no pooled connection.)
        proxy.set_plan(NetFaultPlan(seed=11, refuse_rate=1.0, max_faults=2))
        fresh = _resilient_client(proxy.endpoint)
        assert fresh.ping() == {"pong": True}
        assert proxy.fault_counters.total_faults() == spent + 2
        fresh.close()
        client.close()


def test_kill_after_zero_goes_dark_eagerly_and_heals(backend):
    with ChaosProxy(backend.endpoint).start() as proxy:
        client = _resilient_client(
            proxy.endpoint,
            retry=RetryPolicy(max_attempts=2, base_delay=0.001, max_delay=0.01),
            breaker=None,
        )
        assert client.ping() == {"pong": True}  # live pooled connection

        # kill_after=0 must not wait for the next accept: the existing
        # pipe dies at set_plan time and new connects are refused.
        proxy.set_plan(NetFaultPlan(seed=1, kill_after=0))
        assert proxy.killed
        with pytest.raises(ClientError):
            client.ping()
        assert proxy.fault_counters.kills == 1

        # heal() releases the latch on the SAME endpoint (unlike
        # close(), which would burn the port).
        proxy.heal()
        assert not proxy.killed
        deadline = time.monotonic() + 5.0
        while True:
            try:
                assert client.ping() == {"pong": True}
                break
            except ClientError:
                assert time.monotonic() < deadline
                time.sleep(0.02)
        client.close()


def test_heal_interrupts_inflight_stall(backend):
    # A chunk stalled under the old plan must wake when heal() bumps
    # the epoch — not sleep out the stale plan's full stall_seconds.
    plan = NetFaultPlan(seed=2, stall_rate=1.0, stall_seconds=30.0)
    with ChaosProxy(backend.endpoint, plan).start() as proxy:
        client = _resilient_client(
            proxy.endpoint,
            retry=RetryPolicy(max_attempts=1),
            breaker=None,
            read_timeout=20.0,
        )
        import threading

        outcome: list = []

        def stalled_ping():
            try:
                outcome.append(client.ping())
            except ClientError as error:
                outcome.append(error)

        thread = threading.Thread(target=stalled_ping)
        started = time.monotonic()
        thread.start()
        time.sleep(0.3)  # let the ping hit the stall
        proxy.heal()
        thread.join(10.0)
        elapsed = time.monotonic() - started
        assert not thread.is_alive(), "stalled chunk never woke after heal()"
        assert elapsed < 10.0, "heal() waited out the stale plan's stall"
        assert outcome == [{"pong": True}]
        assert proxy.fault_counters.stalls >= 1
        client.close()
