"""ChaosProxy + NetFaultPlan: plan parsing, transparency, each fault
mode, and healing."""

from __future__ import annotations

import json
import time

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1
from repro.errors import ClientError, RetryBudgetExceededError, ServiceError
from repro.query.database import Database
from repro.service import (
    NET_FAULT_PLAN_ENV,
    NO_NET_FAULTS,
    ChaosProxy,
    NetFaultPlan,
    QueryService,
    ServiceConfig,
    net_plan_from_env,
)
from repro.service.client import BreakerConfig, RetryPolicy, ServiceClient
from repro.service.server import ServerConfig, serve

from .conftest import LineClient


# ----------------------------------------------------------------------
# Plan parsing
# ----------------------------------------------------------------------
def test_plan_parse_roundtrip():
    plan = NetFaultPlan.parse("seed=7, reset_rate=0.05, delay_rate=0.1, max_faults=3")
    assert plan.seed == 7
    assert plan.reset_rate == 0.05
    assert plan.delay_rate == 0.1
    assert plan.max_faults == 3
    assert not plan.is_noop()
    assert NetFaultPlan.parse(plan.describe()) == plan


def test_plan_parse_none_forms():
    for text in ("", "none", "off", "  none  "):
        plan = NetFaultPlan.parse(text)
        assert plan.is_noop()
        assert plan == NO_NET_FAULTS
    assert NO_NET_FAULTS.describe() == "none"


def test_plan_parse_rejects_unknown_key():
    with pytest.raises(ServiceError, match="unknown key"):
        NetFaultPlan.parse("tornado_rate=0.5")
    with pytest.raises(ServiceError, match="key=value"):
        NetFaultPlan.parse("garbage")


def test_plan_from_env(monkeypatch):
    monkeypatch.delenv(NET_FAULT_PLAN_ENV, raising=False)
    assert net_plan_from_env() is None
    monkeypatch.setenv(NET_FAULT_PLAN_ENV, "reset_rate=0.25,seed=3")
    plan = net_plan_from_env()
    assert plan == NetFaultPlan(seed=3, reset_rate=0.25)
    monkeypatch.setenv(NET_FAULT_PLAN_ENV, "none")
    assert net_plan_from_env().is_noop()


# ----------------------------------------------------------------------
# Proxy behavior against a real server
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def backend():
    db = Database()
    db.load(tree=generate_dblp(DBLPConfig(n_articles=20, n_authors=8, seed=5)), name="bib.xml")
    service = QueryService(db, ServiceConfig(workers=2))
    server = serve(service, port=0, config=ServerConfig(poll_interval=0.02))
    server.serve_background()
    yield server
    server.shutdown()
    server.server_close()
    service.close()
    db.close()


def _resilient_client(endpoint, **kwargs) -> ServiceClient:
    kwargs.setdefault(
        "retry",
        RetryPolicy(max_attempts=6, base_delay=0.005, max_delay=0.05, jitter_seed=1),
    )
    kwargs.setdefault("breaker", BreakerConfig(failure_threshold=8, reset_timeout=0.1))
    return ServiceClient(endpoint[0], endpoint[1], **kwargs)


def test_transparent_proxy_changes_nothing(backend):
    with ChaosProxy(backend.endpoint).start() as proxy:
        client = LineClient(proxy.endpoint)
        assert client.ok("PING") == {"pong": True}
        payload = client.ok("QUERY " + json.dumps({"q": QUERY_1}))
        assert payload["rows"] > 0
        assert client.send("QUIT") == "BYE"
        client.close()
        assert proxy.fault_counters.total_faults() == 0
        assert proxy.fault_counters.connections_proxied == 1


def test_refusals_are_bounded_and_survivable(backend):
    plan = NetFaultPlan(seed=11, refuse_rate=1.0, max_faults=2)
    with ChaosProxy(backend.endpoint, plan).start() as proxy:
        client = _resilient_client(proxy.endpoint)
        # Two refused connects burn the fault budget; the third connect
        # goes through and the retried PING succeeds.
        assert client.ping() == {"pong": True}
        assert proxy.fault_counters.refused_connections == 2
        snap = client.counter_snapshot()
        assert snap["client_connect_failures"] + snap["client_network_errors"] >= 2
        assert snap["client_retries"] >= 2
        client.close()


def test_constant_resets_surface_as_typed_error(backend):
    plan = NetFaultPlan(seed=11, reset_rate=1.0)
    with ChaosProxy(backend.endpoint, plan).start() as proxy:
        client = _resilient_client(proxy.endpoint)
        with pytest.raises(ClientError):  # breaker may trip before budget
            client.ping()
        assert proxy.fault_counters.resets >= 1
        client.close()


def test_truncation_tears_the_reply_line(backend):
    # Truncate only server->client traffic: rolls alternate pumps, so
    # force every chunk and let the fault budget keep it finite.
    plan = NetFaultPlan(seed=23, truncate_rate=1.0, max_faults=1)
    with ChaosProxy(backend.endpoint, plan).start() as proxy:
        client = _resilient_client(proxy.endpoint)
        # The first exchange is torn somewhere; the retry (budget
        # exhausted after one fault) completes against a clean pipe.
        assert client.ping() == {"pong": True}
        assert proxy.fault_counters.truncations == 1
        assert client.counter_snapshot()["client_network_errors"] >= 1
        client.close()


def test_delays_are_injected_not_fatal(backend):
    plan = NetFaultPlan(seed=5, delay_rate=1.0, delay_seconds=0.02)
    with ChaosProxy(backend.endpoint, plan).start() as proxy:
        client = _resilient_client(proxy.endpoint)
        assert client.ping() == {"pong": True}
        assert client.ping() == {"pong": True}
        assert proxy.fault_counters.delays >= 2
        # Latency alone costs no retries.
        assert client.counter_snapshot()["client_retries"] == 0
        client.close()


def test_heal_lets_breaker_reclose(backend):
    plan = NetFaultPlan(seed=47, reset_rate=1.0)
    with ChaosProxy(backend.endpoint, plan).start() as proxy:
        client = _resilient_client(
            proxy.endpoint,
            retry=RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01),
            breaker=BreakerConfig(failure_threshold=2, reset_timeout=0.05),
        )
        with pytest.raises(ClientError):
            client.ping()
        assert client.breaker.state == "open"
        proxy.heal()
        # After the reset window, the half-open probe sails through the
        # now-transparent proxy and the breaker re-closes.
        for _ in range(50):
            try:
                if client.ping() == {"pong": True}:
                    break
            except ClientError:
                time.sleep(0.02)  # let the breaker's reset window elapse
        assert client.breaker.state == "closed"
        snap = client.counter_snapshot()
        assert snap["client_breaker_opens"] >= 1
        assert snap["client_breaker_closes"] >= 1
        client.close()


def test_set_plan_swaps_midstream(backend):
    with ChaosProxy(backend.endpoint).start() as proxy:
        client = _resilient_client(proxy.endpoint)
        assert client.ping() == {"pong": True}
        assert proxy.fault_counters.total_faults() == 0
        proxy.set_plan(NetFaultPlan(seed=3, delay_rate=1.0, delay_seconds=0.01))
        assert client.ping() == {"pong": True}
        assert proxy.fault_counters.delays >= 1
        client.close()
