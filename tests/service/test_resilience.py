"""Server hardening: timeouts, shedding, oversized lines, aborted
clients, HEALTH under damage, and graceful drain."""

from __future__ import annotations

import json
import os
import socket
import struct
import threading
import time

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1, figure6_database
from repro.query.database import Database
from repro.service import QueryService, ServiceConfig
from repro.service.server import MAX_LINE_BYTES, ServerConfig, serve
from repro.storage.store import DATA_FILE, NodeStore

from .conftest import LineClient


class _Harness:
    """One db + service + server, with direct access to all three."""

    def __init__(self, config: ServerConfig, db: Database | None = None, workers: int = 2):
        if db is None:
            db = Database()
            db.load(tree=generate_dblp(DBLPConfig(n_articles=20, n_authors=8, seed=5)), name="bib.xml")
        self.db = db
        self.service = QueryService(db, ServiceConfig(workers=workers))
        self.server = serve(self.service, port=0, config=config)
        self.server.serve_background()

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.service.close()
        self.db.close()


@pytest.fixture()
def fast_poll():
    """A server config tuned for test speed (snappy drain/idle polling)."""
    return ServerConfig(poll_interval=0.02)


def _wait_until(predicate, timeout=10.0, message="condition not reached"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(message)


# ----------------------------------------------------------------------
# Oversized request lines (satellite: ERR then close, no desync)
# ----------------------------------------------------------------------
def test_oversized_line_errs_then_closes(fast_poll):
    harness = _Harness(fast_poll)
    try:
        with socket.create_connection(harness.server.endpoint, timeout=30.0) as sock:
            handle = sock.makefile("rw", encoding="utf-8", newline="\n")
            # A >1 MiB line followed by a PING: before the fix the tail
            # of the big line desynced the stream; now the server
            # answers ERR and closes, so the PING is never parsed as
            # garbage.
            handle.write("QUERY " + "x" * (MAX_LINE_BYTES + 64) + "\nPING\n")
            handle.flush()
            reply = handle.readline().strip()
            assert reply.startswith("ERR "), reply
            payload = json.loads(reply[4:])
            assert payload["kind"] == "ProtocolError"
            assert "exceeds" in payload["message"]
            assert handle.readline() == ""  # connection closed, no garbage reply
        assert harness.server.server_stats.oversized_requests == 1
        _wait_until(lambda: harness.server.active_connections() == 0)
        assert len(harness.service.sessions) == 0  # session accounting intact
    finally:
        harness.close()


# ----------------------------------------------------------------------
# Disconnecting clients mid-response (satellite: no handler traceback,
# counted as aborted, session cleaned up)
# ----------------------------------------------------------------------
def test_client_reset_mid_response_counts_aborted(fast_poll):
    harness = _Harness(fast_poll)
    try:
        stats = harness.server.server_stats
        # The RST must land while the query runs; retry the scenario a
        # few times in case the query wins the race.
        for _ in range(10):
            sock = socket.create_connection(harness.server.endpoint, timeout=30.0)
            sock.sendall(("QUERY " + json.dumps({"q": QUERY_1}) + "\n").encode())
            # Hard close (RST): the server's response send must fail.
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            sock.close()
            time.sleep(0.05)
            if stats.connections_aborted > 0:
                break
        _wait_until(
            lambda: stats.connections_aborted > 0,
            message="server never noticed the aborted client",
        )
        assert stats.handler_crashes == 0  # no thread died with a traceback
        # close_session accounting was not skipped.
        _wait_until(lambda: len(harness.service.sessions) == 0)
        _wait_until(lambda: harness.server.active_connections() == 0)
        assert harness.db.store.pool.pinned_count() == 0
    finally:
        harness.close()


# ----------------------------------------------------------------------
# Idle timeout (slow-loris protection)
# ----------------------------------------------------------------------
def test_idle_timeout_disconnects(fast_poll):
    config = ServerConfig(idle_timeout=0.3, poll_interval=0.02)
    harness = _Harness(config)
    try:
        with socket.create_connection(harness.server.endpoint, timeout=30.0) as sock:
            handle = sock.makefile("rw", encoding="utf-8", newline="\n")
            reply = handle.readline().strip()  # block until the server acts
            assert reply.startswith("ERR "), reply
            assert "no complete request" in json.loads(reply[4:])["message"]
            assert handle.readline() == ""  # closed
        assert harness.server.server_stats.idle_disconnects == 1
        _wait_until(lambda: len(harness.service.sessions) == 0)
    finally:
        harness.close()


def test_slow_loris_trickle_still_times_out(fast_poll):
    """The idle clock resets per *completed line*, so trickling bytes
    does not keep a connection alive."""
    config = ServerConfig(idle_timeout=0.4, poll_interval=0.02)
    harness = _Harness(config)
    try:
        with socket.create_connection(harness.server.endpoint, timeout=30.0) as sock:
            started = time.monotonic()
            disconnected = None
            for _ in range(40):  # one byte every 50 ms, never a newline
                try:
                    sock.sendall(b"P")
                except OSError:
                    disconnected = time.monotonic()
                    break
                data = sock.recv(4096) if _readable(sock) else b""
                if data and not _still_open(sock, data):
                    disconnected = time.monotonic()
                    break
                time.sleep(0.05)
            assert disconnected is not None, "trickling client was never cut off"
            assert disconnected - started < 5.0
        assert harness.server.server_stats.idle_disconnects == 1
    finally:
        harness.close()


def _readable(sock) -> bool:
    import select

    readable, _, _ = select.select([sock], [], [], 0)
    return bool(readable)


def _still_open(sock, data: bytes) -> bool:
    # An ERR line followed by EOF means the server cut us off.
    return not data.startswith(b"ERR ")


# ----------------------------------------------------------------------
# Connection cap shedding
# ----------------------------------------------------------------------
def test_connection_cap_sheds_with_err(fast_poll):
    config = ServerConfig(max_connections=2, poll_interval=0.02)
    harness = _Harness(config)
    try:
        first = LineClient(harness.server.endpoint)
        second = LineClient(harness.server.endpoint)
        # A round trip guarantees both handlers registered.
        assert first.ok("PING") == {"pong": True}
        assert second.ok("PING") == {"pong": True}
        third = LineClient(harness.server.endpoint)
        reply = third.file.readline().strip()  # shed without a request
        assert reply.startswith("ERR "), reply
        payload = json.loads(reply[4:])
        assert payload["kind"] == "ServerOverloadedError"
        assert third.file.readline() == ""  # closed immediately
        third.close()
        assert harness.server.server_stats.connections_shed == 1
        # Capacity frees as soon as a connection leaves.
        first.send("QUIT")
        first.close()
        _wait_until(lambda: harness.server.active_connections() < 2)
        fourth = LineClient(harness.server.endpoint)
        assert fourth.ok("PING") == {"pong": True}
        fourth.close()
        second.close()
    finally:
        harness.close()


# ----------------------------------------------------------------------
# HEALTH: healthy vs degraded vs draining
# ----------------------------------------------------------------------
def test_health_reports_degraded_store(tmp_path, fast_poll):
    directory = os.path.join(tmp_path, "db")
    with NodeStore(directory) as store:
        store.load_tree(figure6_database(), "a.xml")
    with open(os.path.join(directory, DATA_FILE), "r+b") as handle:
        handle.seek(80)
        handle.write(b"\x00\xff\x00\xff")
    db = Database(directory, degraded=True)  # quarantines the bad page
    harness = _Harness(fast_poll, db=db)
    try:
        client = LineClient(harness.server.endpoint)
        health = client.ok("HEALTH")
        assert health["status"] == "degraded"
        assert health["degraded_store"] is True
        assert health["quarantined_pages"] >= 1
        assert health["ready"] is True  # degraded but still serving
        assert health["live"] is True
        client.close()
    finally:
        harness.close()


def test_health_reports_draining(fast_poll):
    harness = _Harness(fast_poll)
    try:
        report = harness.server.drain(grace=1.0)
        assert report.clean
        health = harness.server.health()
        assert health["status"] == "draining"
        assert health["draining"] is True
        assert health["ready"] is False
    finally:
        harness.close()


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
def test_drain_says_bye_and_sheds_latecomers(fast_poll):
    harness = _Harness(fast_poll)
    try:
        idle = LineClient(harness.server.endpoint)
        busy = LineClient(harness.server.endpoint)
        assert idle.ok("PING") == {"pong": True}
        busy_replies = []

        def run_query():
            busy_replies.append(busy.send("QUERY " + json.dumps({"q": QUERY_1})))
            busy_replies.append(busy.file.readline().strip())  # BYE

        reports = []
        # Hold the write gate so the busy client's query stays in
        # flight: the drain is then guaranteed to still be running when
        # the latecomer connects.
        with harness.service._gate.write_locked():
            thread = threading.Thread(target=run_query)
            thread.start()
            _wait_until(lambda: harness.server.server_stats.requests_received >= 2)
            drainer = threading.Thread(
                target=lambda: reports.append(harness.server.drain(grace=30.0))
            )
            drainer.start()
            _wait_until(lambda: harness.server.draining)
            # The idle connection is told BYE promptly...
            assert idle.file.readline().strip() == "BYE"
            assert idle.file.readline() == ""  # closed after BYE
            idle.close()
            # ...and a latecomer is shed with a typed ERR, not left
            # hanging in the kernel backlog.
            late = LineClient(harness.server.endpoint)
            reply = late.file.readline().strip()
            assert reply.startswith("ERR "), reply
            assert json.loads(reply[4:])["kind"] == "ServerDrainingError"
            assert late.file.readline() == ""  # closed immediately
            late.close()
            assert harness.server.server_stats.connections_shed == 1
        # Gate released: the in-flight query finishes inside the grace
        # budget and the drain comes back clean.
        drainer.join(30.0)
        thread.join(30.0)
        assert not drainer.is_alive() and not thread.is_alive()
        assert reports[0].clean
        assert reports[0].forced_closes == 0
        assert busy_replies[0].startswith("OK "), busy_replies
        assert busy_replies[1] == "BYE"
        busy.close()
    finally:
        harness.close()


def test_drain_lets_running_query_finish(fast_poll):
    harness = _Harness(fast_poll)
    try:
        client = LineClient(harness.server.endpoint)
        replies = []

        def run_query():
            replies.append(client.send("QUERY " + json.dumps({"q": QUERY_1})))
            replies.append(client.file.readline().strip())  # BYE after drain

        thread = threading.Thread(target=run_query)
        thread.start()
        _wait_until(lambda: harness.server.server_stats.requests_received >= 1)
        report = harness.server.drain(grace=30.0)
        thread.join(30.0)
        assert not thread.is_alive()
        assert report.clean, "query should have finished inside the grace budget"
        assert replies[0].startswith("OK "), replies
        assert replies[1] == "BYE"
        client.close()
    finally:
        harness.close()


def test_drain_grace_expiry_cancels_stuck_query(fast_poll):
    harness = _Harness(fast_poll)
    try:
        client = LineClient(harness.server.endpoint)
        outcome = []

        def run_query():
            try:
                outcome.append(client.send("QUERY " + json.dumps({"q": QUERY_1})))
            except OSError:
                outcome.append("connection severed")

        # Hold the write gate so the query cannot even start executing:
        # it is guaranteed to still be in flight when the grace expires.
        with harness.service._gate.write_locked():
            thread = threading.Thread(target=run_query)
            thread.start()
            _wait_until(lambda: harness.server.server_stats.requests_received >= 1)
            report = harness.server.drain(grace=0.2)
            assert not report.clean
            assert report.forced_closes == 1
            assert harness.server.server_stats.drain_forced_closes == 1
        # Gate released: the cancelled query unwinds and everything
        # settles — no stranded handler thread, no leaked pins.
        thread.join(30.0)
        assert not thread.is_alive()
        _wait_until(lambda: harness.server.active_connections() == 0)
        _wait_until(lambda: len(harness.service.sessions) == 0)
        assert harness.db.store.pool.pinned_count() == 0
        client.close()
    finally:
        harness.close()
