"""Deadlines and cooperative cancellation: timeouts fire, resources
are released, maintenance paths are shielded."""

from __future__ import annotations

import time

import pytest

from repro.cancellation import Deadline, checkpoint, current_deadline, deadline_scope
from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1
from repro.errors import QueryCancelledError, QueryTimeoutError
from repro.query.database import Database
from repro.service import QueryService, ServiceConfig


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
def test_checkpoint_is_noop_without_scope():
    checkpoint()  # must not raise
    assert current_deadline() is None


def test_expired_deadline_raises_timeout():
    with deadline_scope(Deadline(0.0)):
        with pytest.raises(QueryTimeoutError):
            checkpoint()


def test_cancelled_deadline_raises_cancelled():
    deadline = Deadline(None)  # unbounded: pure cancellation token
    deadline.cancel()
    with deadline_scope(deadline):
        with pytest.raises(QueryCancelledError):
            checkpoint()


def test_scopes_nest_and_restore():
    outer = Deadline(60.0)
    with deadline_scope(outer):
        with deadline_scope(Deadline(None)) as inner:
            assert current_deadline() is inner
        assert current_deadline() is outer
    assert current_deadline() is None


def test_none_scope_shields_from_outer_deadline():
    with deadline_scope(Deadline(0.0)):
        with deadline_scope(None):
            checkpoint()  # shielded: must not raise


def test_remaining_counts_down():
    deadline = Deadline(60.0)
    assert 0 < deadline.remaining() <= 60.0
    assert Deadline(None).remaining() is None


# ----------------------------------------------------------------------
# Through the Database facade
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def big_db() -> Database:
    db = Database()
    db.load(tree=generate_dblp(DBLPConfig(n_articles=120, n_authors=30, seed=13)), name="bib.xml")
    return db


@pytest.mark.parametrize("plan", ["auto", "direct", "naive"])
def test_query_timeout_raises_and_releases_pins(big_db, plan):
    with pytest.raises(QueryTimeoutError):
        big_db.query(QUERY_1, plan=plan, timeout=0.0)
    assert big_db.store.pool.pinned_count() == 0


def test_generous_timeout_does_not_interfere(big_db):
    result = big_db.query(QUERY_1, timeout=60.0)
    assert len(result) > 0
    assert big_db.store.pool.pinned_count() == 0


def test_timeout_leaves_database_usable(big_db):
    with pytest.raises(QueryTimeoutError):
        big_db.query(QUERY_1, timeout=0.0)
    assert len(big_db.query(QUERY_1)) > 0


# ----------------------------------------------------------------------
# Through the service
# ----------------------------------------------------------------------
def test_service_timeout_counted_and_pins_released(big_db):
    with QueryService(big_db, ServiceConfig(workers=2)) as service:
        with pytest.raises(QueryTimeoutError):
            service.query(QUERY_1, timeout=0.0)
        assert service.stats()["query_timeouts"] == 1
        assert big_db.store.pool.pinned_count() == 0
        # A timed-out query caches nothing.
        assert not service.query(QUERY_1).cached


def test_ticket_cancel_before_execution(big_db):
    # One busy worker: the second ticket waits in the queue, so a
    # cancel lands before it starts executing.
    with QueryService(big_db, ServiceConfig(workers=1)) as service:
        first = service.submit(QUERY_1)
        second = service.submit(QUERY_1)
        second.cancel()
        first.result(30.0)
        with pytest.raises(QueryCancelledError):
            second.result(30.0)
        assert service.stats()["queries_cancelled"] == 1
        assert big_db.store.pool.pinned_count() == 0


def test_queue_wait_counts_against_deadline(big_db):
    # Deadline starts at submission: a queued query whose budget burns
    # away while it waits must time out, not run.
    with QueryService(big_db, ServiceConfig(workers=1)) as service:
        blocker = service.submit(QUERY_1)
        starved = service.submit(QUERY_1, timeout=0.000001)
        blocker.result(30.0)
        with pytest.raises(QueryTimeoutError):
            starved.result(30.0)


def test_session_default_timeout_applies(big_db):
    with QueryService(big_db, ServiceConfig(workers=1)) as service:
        session = service.open_session(name="t", default_timeout=0.0)
        with pytest.raises(QueryTimeoutError):
            service.query(QUERY_1, session=session)
        assert session.timeouts == 1
