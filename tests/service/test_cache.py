"""LRU cache semantics, and result-cache correctness on real workloads.

The correctness bar for the result cache: a warm hit must be
*structurally identical* (via :mod:`repro.xmlmodel.diff`) to a cold
run, and any data mutation between the runs must force a miss.
"""

from __future__ import annotations

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1, QUERY_2
from repro.query.database import Database
from repro.service import LRUCache, QueryService, ServiceConfig
from repro.xmlmodel.diff import assert_collections_equal


# ----------------------------------------------------------------------
# LRUCache unit behaviour
# ----------------------------------------------------------------------
def test_lru_hit_miss_counters():
    cache = LRUCache(4)
    assert cache.get("a") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.counters.hits == 1
    assert cache.counters.misses == 1
    assert cache.counters.hit_ratio() == 0.5


def test_lru_eviction_order_and_refresh():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # refresh a; b is now least recently used
    cache.put("c", 3)
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    assert cache.counters.evictions == 1


def test_lru_peek_is_silent():
    cache = LRUCache(2)
    cache.put("a", 1)
    assert cache.peek("a") == 1
    assert cache.peek("zzz") is None
    assert cache.counters.requests == 0


def test_lru_invalidate_predicate():
    cache = LRUCache(8)
    for gen in (1, 1, 2):
        cache.put(("q", gen), gen)
    dropped = cache.invalidate(lambda key: key[1] != 2)
    assert dropped == 1  # ("q", 1) was overwritten; one stale entry left
    assert cache.keys() == [("q", 2)]


def test_disabled_cache_never_stores():
    cache = LRUCache(0)
    cache.put("a", 1)
    assert not cache.enabled
    assert cache.get("a") is None
    assert len(cache) == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        LRUCache(-1)


# ----------------------------------------------------------------------
# Result-cache correctness over the paper's workloads
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def loaded_db() -> Database:
    db = Database()
    db.load(tree=generate_dblp(DBLPConfig(n_articles=80, n_authors=25, seed=5)), name="bib.xml")
    return db


@pytest.mark.parametrize("query", [QUERY_1, QUERY_2], ids=["e1", "e2"])
@pytest.mark.parametrize("plan", ["auto", "direct", "naive"])
def test_warm_hit_matches_cold_run(loaded_db, query, plan):
    with QueryService(loaded_db, ServiceConfig(workers=2)) as service:
        cold = service.query(query, plan=plan)
        warm = service.query(query, plan=plan)
        assert not cold.cached
        assert warm.cached
        assert_collections_equal(cold.collection, warm.collection)


def test_load_between_runs_forces_miss():
    db = Database()
    db.load(tree=generate_dblp(DBLPConfig(n_articles=30, n_authors=10, seed=5)), name="bib.xml")
    with QueryService(db, ServiceConfig(workers=2)) as service:
        first = service.query(QUERY_1)
        service.load_tree(
            generate_dblp(DBLPConfig(n_articles=5, n_authors=3, seed=11)), "extra.xml"
        )
        second = service.query(QUERY_1)
        assert not second.cached
        assert second.generation > first.generation
        # And the fresh result is itself cached under the new generation.
        third = service.query(QUERY_1)
        assert third.cached
        assert_collections_equal(second.collection, third.collection)


def test_cached_copies_are_isolated(loaded_db):
    """A client mutating its result trees must not poison later hits."""
    with QueryService(loaded_db, ServiceConfig(workers=1)) as service:
        service.query(QUERY_1)
        warm1 = service.query(QUERY_1)
        for tree in warm1.collection:
            tree.root.tag = "vandalized"
        warm2 = service.query(QUERY_1)
        assert all(tree.root.tag == "authorpubs" for tree in warm2.collection)


def test_plan_cache_distinguishes_requested_modes(loaded_db):
    with QueryService(loaded_db, ServiceConfig(workers=1)) as service:
        auto = service.query(QUERY_1, plan="auto")
        naive = service.query(QUERY_1, plan="naive")
        assert not naive.plan_cached  # different requested mode, new entry
        assert_collections_equal(auto.collection, naive.collection)
        assert service.query(QUERY_1, plan="naive").plan_cached


def test_fingerprint_unifies_formatting_variants(loaded_db):
    with QueryService(loaded_db, ServiceConfig(workers=1)) as service:
        cold = service.query(QUERY_1)
        squeezed = " ".join(QUERY_1.split())
        warm = service.query(squeezed)
        assert warm.cached
        assert warm.fingerprint == cold.fingerprint


# ----------------------------------------------------------------------
# Statistics-version keying (the cost-based optimizer's cache contract)
# ----------------------------------------------------------------------
def test_plan_cache_key_includes_statistics_version():
    """A plan costed against one statistics version must never serve a
    query after the statistics changed: load → query → load more →
    the same text re-plans under the new version."""
    db = Database()
    db.load(tree=generate_dblp(DBLPConfig(n_articles=30, n_authors=10, seed=5)), name="bib.xml")
    with QueryService(db, ServiceConfig(workers=1)) as service:
        version = db.statistics_version
        service.query(QUERY_1)
        assert service.query(QUERY_1).plan_cached
        assert all(key[2] == version for key in service.plan_cache.keys())

        service.load_tree(
            generate_dblp(DBLPConfig(n_articles=5, n_authors=3, seed=11)), "extra.xml"
        )
        refreshed = db.statistics_version
        assert refreshed > version
        after = service.query(QUERY_1)
        assert not after.plan_cached  # re-planned against fresh statistics
        assert not after.cached
        from repro.service.fingerprint import fingerprint_text

        assert (fingerprint_text(QUERY_1), "auto", refreshed) in service.plan_cache


def test_feedback_flag_drops_plan_cache_entry():
    """A plan flagged by the estimate-vs-actual feedback loop is evicted
    so the next request re-costs it with the stored corrections."""
    from repro.query.optimizer import OperatorForecast

    db = Database()
    db.load(tree=generate_dblp(DBLPConfig(n_articles=30, n_authors=10, seed=5)), name="bib.xml")
    with QueryService(db, ServiceConfig(workers=1)) as service:
        service.query(QUERY_1)
        assert service.query(QUERY_1).plan_cached

        # Force a divergence observation for this query text.
        actuals = db.feedback_actuals(QUERY_1)
        inflated = [
            OperatorForecast(op=op, detail=detail, est_rows=value * 100.0, est_cost=0.0)
            for (op, detail), value in actuals.items()
        ]
        assert db._feedback.observe(QUERY_1, inflated, actuals)

        recosted = service.query(QUERY_1)
        assert not recosted.plan_cached  # the flagged entry was dropped
        assert_collections_equal(
            recosted.collection, service.query(QUERY_1, plan="direct").collection
        )
        assert service.query(QUERY_1).plan_cached  # re-costed plan sticks
