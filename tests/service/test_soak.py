"""The resilience soak: a mixed workload hammered through a chaotic
proxy, then post-storm invariants.

The storm is seed-driven (``REPRO_NET_FAULT_SEED``, default 11) so CI
can run a seed matrix; every failure the workload sees must be a
*typed* :class:`~repro.errors.ClientError` — raw socket exceptions,
hung threads, or leaked pins fail the soak.
"""

from __future__ import annotations

import os
import threading

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1, QUERY_2
from repro.errors import ClientError
from repro.query.database import Database
from repro.service import (
    ChaosProxy,
    NetFaultPlan,
    QueryService,
    ServiceConfig,
)
from repro.service.client import BreakerConfig, RetryPolicy, ServiceClient
from repro.service.server import ServerConfig, serve

SOAK_SEED = int(os.environ.get("REPRO_NET_FAULT_SEED", "11"))
THREADS = 4
REQUESTS_PER_THREAD = 128  # 4 * 128 = 512 >= the 500 the issue asks for

STORM = NetFaultPlan(
    seed=SOAK_SEED,
    refuse_rate=0.05,
    reset_rate=0.03,
    delay_rate=0.05,
    delay_seconds=0.002,
    partial_write_rate=0.05,
    truncate_rate=0.02,
)


def _workload(index: int, endpoint, outcomes: list, errors: list):
    client = ServiceClient(
        endpoint[0],
        endpoint[1],
        retry=RetryPolicy(
            max_attempts=5,
            base_delay=0.01,
            max_delay=0.1,
            jitter_seed=SOAK_SEED + index,
        ),
        breaker=BreakerConfig(failure_threshold=8, reset_timeout=0.15),
        connect_timeout=5.0,
        # A torn request line leaves the server waiting for its tail
        # and the client waiting for a reply; a short read deadline
        # turns that stall into a fast typed failure + retry.
        read_timeout=2.0,
    )
    commands = (
        lambda: client.query(QUERY_1),
        lambda: client.query(QUERY_2),
        lambda: dict(client.stats().as_dict()),
        lambda: client.health(),
        lambda: client.ping(),
    )
    try:
        for step in range(REQUESTS_PER_THREAD):
            try:
                result = commands[step % len(commands)]()
            except ClientError as error:
                outcomes.append(error)  # typed failure: acceptable
            except Exception as error:  # noqa: BLE001 - the soak's whole point
                errors.append((index, step, error))
                return
            else:
                outcomes.append(result)
    finally:
        try:
            client.close()
        except Exception:  # noqa: BLE001 - teardown is best-effort in a storm
            pass


def test_soak_mixed_workload_through_chaos():
    db = Database()
    db.load(tree=generate_dblp(DBLPConfig(n_articles=40, n_authors=12, seed=5)), name="bib.xml")
    service = QueryService(db, ServiceConfig(workers=4))
    server = serve(service, port=0, config=ServerConfig(poll_interval=0.02))
    server.serve_background()
    proxy = ChaosProxy(server.endpoint, STORM).start()
    try:
        outcomes: list = []
        untyped: list = []
        threads = [
            threading.Thread(
                target=_workload, args=(i, proxy.endpoint, outcomes, untyped)
            )
            for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120.0)
        assert not any(t.is_alive() for t in threads), "workload thread hung"

        # Every failure that surfaced was typed; nothing leaked raw.
        assert not untyped, f"untyped exceptions escaped: {untyped!r}"
        total = len(outcomes)
        assert total == THREADS * REQUESTS_PER_THREAD
        successes = sum(1 for o in outcomes if not isinstance(o, ClientError))
        assert successes > 0, "the storm drowned every single request"
        # The storm actually stormed (otherwise this test proves nothing).
        assert proxy.fault_counters.total_faults() > 0

        # ---- post-storm invariants ------------------------------------
        proxy.heal()
        survivor = ServiceClient(
            proxy.endpoint[0],
            proxy.endpoint[1],
            retry=RetryPolicy(max_attempts=8, base_delay=0.02, max_delay=0.2),
            breaker=BreakerConfig(failure_threshold=8, reset_timeout=0.1),
        )
        assert survivor.ping() == {"pong": True}  # service heals
        assert survivor.breaker.state == "closed"
        survivor.close()

        stats = server.stats()
        assert stats["server_handler_crashes"] == 0, "a handler thread died"

        # Connections and sessions settle; no buffer pins leak.
        _wait_until(lambda: server.active_connections() == 0)
        _wait_until(lambda: len(service.sessions) == 0)
        assert db.store.pool.pinned_count() == 0
        assert db.store.verify().ok
    finally:
        proxy.close()
        server.shutdown()
        server.server_close()
        service.close()
        db.close()


def _wait_until(predicate, timeout=30.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("post-storm state never settled")
