"""Normalized AST fingerprints: what must unify, what must not."""

from __future__ import annotations

from repro.datagen.sample import QUERY_1, QUERY_2
from repro.query.parser import parse_query
from repro.service import FINGERPRINT_HEX_CHARS, canonicalize, fingerprint_text


def test_fingerprint_shape():
    fp = fingerprint_text(QUERY_1)
    assert len(fp) == FINGERPRINT_HEX_CHARS
    int(fp, 16)  # valid hex


def test_whitespace_and_layout_do_not_matter():
    squeezed = " ".join(QUERY_1.split())
    assert fingerprint_text(QUERY_1) == fingerprint_text(squeezed)


def test_bound_variable_names_do_not_matter():
    renamed = QUERY_1.replace("$a", "$author").replace("$b", "$art")
    assert fingerprint_text(QUERY_1) == fingerprint_text(renamed)


def test_different_query_shapes_differ():
    assert fingerprint_text(QUERY_1) != fingerprint_text(QUERY_2)


def test_literals_matter():
    other = QUERY_1.replace('"bib.xml"', '"other.xml"')
    assert fingerprint_text(QUERY_1) != fingerprint_text(other)


def test_tags_matter():
    other = QUERY_1.replace("authorpubs", "pubsbyauthor")
    assert fingerprint_text(QUERY_1) != fingerprint_text(other)


def test_canonical_form_alpha_renames_in_binding_order():
    canon = canonicalize(parse_query(QUERY_1))
    text = repr(canon)
    assert "v0" in text and "v1" in text
    assert "$a" not in text and "$b" not in text


def test_nested_scopes_restore_outer_bindings():
    # $x in the outer scope is v0; the inner FLWR rebinds $y as v1 and
    # the outer binding stays visible afterwards.
    outer = """
    FOR $x IN document("bib.xml")//article
    RETURN <r>{FOR $y IN $x/author RETURN $y}{$x/title}</r>
    """
    renamed = outer.replace("$x", "$art").replace("$y", "$person")
    assert fingerprint_text(outer) == fingerprint_text(renamed)
