"""ServiceClient: reconnects, retry budgets, idempotency discipline,
backoff jitter, and the circuit breaker.

Server behavior is played by :class:`ScriptedServer` — a tiny accept
loop that runs one canned script per connection — so each test
controls exactly which failure the network serves up.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.errors import (
    AmbiguousResultError,
    CircuitOpenError,
    RemoteError,
    RetryBudgetExceededError,
    ServiceError,
)
from repro.service.client import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
    ClientStatistics,
    RetryPolicy,
    ServiceClient,
)


# ----------------------------------------------------------------------
# Scripted server
# ----------------------------------------------------------------------
class ScriptedServer:
    """Runs one script per accepted connection (the last script repeats
    for any further connections).  Every request line lands in
    ``self.requests`` so tests can assert what was actually replayed."""

    def __init__(self, *scripts):
        assert scripts
        self.scripts = list(scripts)
        self.requests: list[str] = []
        self.connections = 0
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.listener.settimeout(0.2)
        self._stop = False
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    @property
    def endpoint(self):
        return self.listener.getsockname()[:2]

    def _run(self):
        while not self._stop:
            try:
                conn, _ = self.listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            index = min(self.connections, len(self.scripts) - 1)
            self.connections += 1
            try:
                self.scripts[index](self, conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self):
        self._stop = True
        self.listener.close()
        self.thread.join(5.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def _read_line(conn) -> str | None:
    conn.settimeout(5.0)
    buffer = b""
    while b"\n" not in buffer:
        try:
            chunk = conn.recv(4096)
        except OSError:
            return None
        if not chunk:
            return None
        buffer += chunk
    return buffer.split(b"\n", 1)[0].decode()


def replies(payload_for):
    """A well-behaved connection: answer every request from
    ``payload_for(line)`` until the client quits."""

    def script(server, conn):
        while True:
            line = _read_line(conn)
            if line is None:
                return
            server.requests.append(line)
            if line == "QUIT":
                conn.sendall(b"BYE\n")
                return
            conn.sendall((payload_for(line) + "\n").encode())

    return script


def ok(payload: dict):
    return replies(lambda line: "OK " + json.dumps(payload))


def close_without_reply(server, conn):
    """Read one request, then hang up — the classic ambiguous failure."""
    line = _read_line(conn)
    if line is not None:
        server.requests.append(line)


def bye_immediately(server, conn):
    line = _read_line(conn)
    if line is not None:
        server.requests.append(line)
    conn.sendall(b"BYE\n")


def _dead_endpoint():
    """A host:port with nothing listening (connects are refused)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return "127.0.0.1", port


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _client(endpoint, **kwargs) -> ServiceClient:
    kwargs.setdefault(
        "retry", RetryPolicy(max_attempts=4, base_delay=0.001, max_delay=0.01)
    )
    kwargs.setdefault("sleep", lambda _delay: None)
    return ServiceClient(endpoint[0], endpoint[1], **kwargs)


# ----------------------------------------------------------------------
# Happy path + observability
# ----------------------------------------------------------------------
def test_happy_path_and_counters():
    with ScriptedServer(ok({"pong": True})) as server:
        with _client(server.endpoint) as client:
            assert client.ping() == {"pong": True}
            assert client.ping() == {"pong": True}
            snap = client.counter_snapshot()
            assert snap["client_requests"] == 2
            assert snap["client_replies_ok"] == 2
            assert snap["client_connects"] == 1  # one connection, reused
            assert snap["client_reconnects"] == 0
            assert snap["client_retries"] == 0
        assert server.requests == ["PING", "PING", "QUIT"]


def test_stats_merges_both_ends():
    with ScriptedServer(ok({"queries_completed": 7})) as server:
        with _client(server.endpoint) as client:
            snapshot = client.stats()
            assert snapshot["queries_completed"] == 7  # server side
            assert snapshot["client_requests"] == 1  # client side rides along
            assert snapshot["client_replies_ok"] == 1


def test_remote_error_carries_kind():
    def err(line):
        return "ERR " + json.dumps(
            {"kind": "QueryTimeoutError", "message": "deadline exceeded"}
        )

    with ScriptedServer(replies(err)) as server:
        with _client(server.endpoint) as client:
            with pytest.raises(RemoteError) as info:
                client.query("FOR $x IN ...")
            assert info.value.kind == "QueryTimeoutError"
            assert "deadline exceeded" in info.value.remote_message
            # An ERR is an *answer*: no retry, breaker stays closed.
            assert client.counter_snapshot()["client_retries"] == 0
            assert client.breaker.state == CLOSED
        assert len(server.requests) == 2  # the QUERY + the QUIT


# ----------------------------------------------------------------------
# Retry + reconnect
# ----------------------------------------------------------------------
def test_idempotent_command_retries_after_drop():
    with ScriptedServer(close_without_reply, ok({"pong": True})) as server:
        with _client(server.endpoint) as client:
            assert client.ping() == {"pong": True}
            snap = client.counter_snapshot()
            assert snap["client_retries"] == 1
            assert snap["client_network_errors"] == 1
            assert snap["client_reconnects"] == 1
        # The PING was replayed: once per connection.
        assert server.requests.count("PING") == 2


def test_retryable_err_kind_is_replayed():
    first = replies(
        lambda line: "ERR "
        + json.dumps({"kind": "AdmissionError", "message": "queue full"})
    )

    def once_then_ok(server, conn):
        line = _read_line(conn)
        server.requests.append(line)
        conn.sendall(
            ("ERR " + json.dumps({"kind": "AdmissionError", "message": "full"}) + "\n").encode()
        )
        ok({"pong": True})(server, conn)

    with ScriptedServer(once_then_ok) as server:
        with _client(server.endpoint) as client:
            assert client.ping() == {"pong": True}
            snap = client.counter_snapshot()
            assert snap["client_retries"] == 1
            assert snap["client_replies_err"] == 1
            # Backpressure is an answer, not a transport failure.
            assert client.breaker.state == CLOSED
    del first


def test_non_idempotent_command_is_never_replayed():
    with ScriptedServer(close_without_reply, ok({"queries": 0})) as server:
        with _client(server.endpoint) as client:
            with pytest.raises(AmbiguousResultError):
                client.session()
            assert client.counter_snapshot()["client_ambiguous_failures"] == 1
        # Exactly one SESSION ever reached a server — no silent replay.
        assert server.requests.count("SESSION") == 1


def test_connect_failures_exhaust_retry_budget():
    endpoint = _dead_endpoint()
    client = _client(
        endpoint, retry=RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)
    )
    with pytest.raises(RetryBudgetExceededError):
        client.ping()
    snap = client.counter_snapshot()
    assert snap["client_connect_failures"] == 3
    assert snap["client_retries"] == 2  # first try is not a retry
    assert snap["client_retries_exhausted"] == 1


def test_bye_mid_stream_retries_on_fresh_connection():
    with ScriptedServer(bye_immediately, ok({"pong": True})) as server:
        with _client(server.endpoint) as client:
            assert client.ping() == {"pong": True}
            snap = client.counter_snapshot()
            assert snap["client_server_goodbyes"] == 1
            assert snap["client_retries"] == 1
        assert server.connections == 2


# ----------------------------------------------------------------------
# Backoff
# ----------------------------------------------------------------------
def test_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy(max_attempts=5, base_delay=0.05, max_delay=0.1, jitter_seed=42)
    endpoint = _dead_endpoint()

    def run():
        sleeps = []
        client = ServiceClient(
            endpoint[0], endpoint[1], retry=policy, sleep=sleeps.append
        )
        with pytest.raises(RetryBudgetExceededError):
            client.ping()
        return sleeps

    first, second = run(), run()
    assert first == second  # same seed, same schedule
    assert len(first) <= 4
    for index, delay in enumerate(first, start=1):
        assert 0.0 <= delay <= min(policy.max_delay, policy.base_delay * 2 ** (index - 1))


def test_retry_policy_validation():
    with pytest.raises(ServiceError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ServiceError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ServiceError):
        BreakerConfig(failure_threshold=0)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
def test_breaker_unit_lifecycle():
    clock = FakeClock()
    counters = ClientStatistics()
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=2, reset_timeout=10.0), counters, clock
    )
    assert breaker.state == CLOSED
    breaker.allow()
    breaker.record_failure()
    assert breaker.state == CLOSED  # one short of the threshold
    breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    with pytest.raises(CircuitOpenError):
        breaker.allow()  # fail fast while open
    clock.advance(10.0)
    breaker.allow()  # admitted as the half-open probe
    assert breaker.state == HALF_OPEN
    with pytest.raises(CircuitOpenError):
        breaker.allow()  # a second caller is rejected while the probe flies
    breaker.record_success()
    assert breaker.state == CLOSED
    snap = counters.snapshot()
    assert snap["client_breaker_opens"] == 1
    assert snap["client_breaker_half_opens"] == 1
    assert snap["client_breaker_closes"] == 1
    assert snap["client_breaker_rejections"] == 2


def test_breaker_reopens_on_failed_probe():
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=1, reset_timeout=5.0), clock=clock
    )
    breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(5.0)
    breaker.allow()
    breaker.record_failure()  # probe failed
    assert breaker.state == OPEN  # straight back to open
    with pytest.raises(CircuitOpenError):
        breaker.allow()


def test_client_breaker_opens_then_heals():
    clock = FakeClock()
    counters = ClientStatistics()
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=1, reset_timeout=30.0), counters, clock
    )
    with ScriptedServer(close_without_reply, ok({"pong": True})) as server:
        client = _client(
            server.endpoint,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0),
            breaker=breaker,
        )
        # Attempt 1 hits the hang-up script and opens the breaker;
        # attempt 2 is rejected at the gate — the open circuit wins
        # over the retry budget (fail fast beats retrying a dead host).
        with pytest.raises(CircuitOpenError):
            client.ping()
        assert breaker.state == OPEN
        # After the reset window the probe goes through to the healthy
        # script and the breaker re-closes.
        clock.advance(30.0)
        assert client.ping() == {"pong": True}
        assert breaker.state == CLOSED
        snap = counters.snapshot()
        assert snap["client_breaker_opens"] == 1
        assert snap["client_breaker_half_opens"] == 1
        assert snap["client_breaker_closes"] == 1
        client.close()


def test_half_open_window_boundary_and_failure_count_reset():
    # Seeded-clock re-admission: the half-open probe is admitted only
    # once the FULL reset window has elapsed, and a successful probe
    # resets the consecutive-failure count (one later failure must not
    # re-open a freshly re-closed breaker).
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=2, reset_timeout=10.0), clock=clock
    )
    for _ in range(2):
        breaker.allow()
        breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(9.99)
    with pytest.raises(CircuitOpenError):
        breaker.allow()  # one tick short of the window: still rejected
    clock.advance(0.01)
    breaker.allow()
    assert breaker.state == HALF_OPEN
    breaker.record_success()
    assert breaker.state == CLOSED
    # The probe's success wiped the failure streak: a single new
    # failure is one short of the threshold again.
    breaker.allow()
    breaker.record_failure()
    assert breaker.state == CLOSED


def test_health_report_parses_payload_and_defaults():
    from repro.service.client import HealthReport

    empty = HealthReport.from_payload({})
    assert empty.status == "unknown"
    assert not empty.ok
    assert not empty.live and not empty.ready
    assert empty.queue_depth == 0

    payload = {
        "status": "ok",
        "live": True,
        "ready": True,
        "draining": False,
        "degraded_store": False,
        "quarantined_pages": 0,
        "queue_depth": 3,
        "queue_capacity": 64,
        "workers": 2,
        "active_connections": 1,
        "max_connections": 32,
        "generation": 7,
        "novel_key": "survives",  # a newer server may say more
    }
    report = HealthReport.from_payload(payload)
    assert report.ok and report.live and report.ready
    assert report.generation == 7
    assert report.raw["novel_key"] == "survives"
    assert report.as_dict() == payload


def test_client_health_returns_parsed_report():
    from repro.service.client import HealthReport

    with ScriptedServer(ok({"status": "ok", "live": True, "ready": True})) as server:
        client = _client(server.endpoint)
        report = client.health()
        assert isinstance(report, HealthReport)
        assert report.ok
        client.close()


def test_set_read_timeout_applies_to_live_socket():
    with ScriptedServer(ok({"pong": True})) as server:
        client = _client(server.endpoint)
        assert client.ping() == {"pong": True}
        assert client._sock is not None
        client.set_read_timeout(0.25)
        assert client.read_timeout == 0.25
        assert client._sock.gettimeout() == 0.25  # live socket too
        client.close()


def test_load_streams_chunks_with_final_flag():
    with ScriptedServer(ok({"document": "d.xml", "nodes": 1})) as server:
        client = _client(server.endpoint)
        client.load("x" * 25, "d.xml", chunk_chars=10)
        loads = [line for line in server.requests if line.startswith("LOAD ")]
        assert len(loads) == 3
        specs = [json.loads(line[5:]) for line in loads]
        assert [spec["final"] for spec in specs] == [False, False, True]
        assert "".join(spec["chunk"] for spec in specs) == "x" * 25
        assert all(spec["name"] == "d.xml" for spec in specs)
        client.close()
