"""The query service proper: admission control, sessions, statistics,
and the concurrency stress test from the acceptance criteria."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1, QUERY_2
from repro.errors import AdmissionError, ServiceError, SessionError
from repro.query.database import Database
from repro.service import QueryService, ServiceConfig
from repro.xmlmodel.diff import assert_collections_equal


def make_db(articles: int = 60, authors: int = 20, seed: int = 5) -> Database:
    db = Database()
    db.load(
        tree=generate_dblp(DBLPConfig(n_articles=articles, n_authors=authors, seed=seed)),
        name="bib.xml",
    )
    return db


# ----------------------------------------------------------------------
# Configuration and lifecycle
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ServiceError):
        ServiceConfig(workers=0)
    # queue.Queue treats 0 as unbounded, so the config must refuse it.
    with pytest.raises(ServiceError):
        ServiceConfig(queue_depth=0)


def test_close_rejects_new_work_and_drains():
    service = QueryService(make_db(20, 8), ServiceConfig(workers=2))
    ticket = service.submit(QUERY_1)
    service.close()
    assert ticket.result(30.0).result is not None  # queued work drained
    with pytest.raises(ServiceError):
        service.submit(QUERY_1)
    service.close()  # idempotent


def test_context_manager_closes():
    with QueryService(make_db(20, 8), ServiceConfig(workers=1)) as service:
        assert len(service.query(QUERY_1)) > 0
    with pytest.raises(ServiceError):
        service.submit(QUERY_1)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_queue_full_raises_admission_error():
    db = make_db(20, 8)
    with QueryService(db, ServiceConfig(workers=1, queue_depth=1)) as service:
        with service._gate.write_locked():  # park the worker at the read gate
            first = service.submit(QUERY_1)
            deadline = time.monotonic() + 10.0
            while service._queue.qsize() > 0:  # wait until the worker holds it
                assert time.monotonic() < deadline, "worker never dequeued"
                time.sleep(0.001)
            second = service.submit(QUERY_1)
            with pytest.raises(AdmissionError):
                service.submit(QUERY_1)
        assert len(first.result(30.0)) > 0
        assert len(second.result(30.0)) > 0
        stats = service.stats()
        assert stats["admission_rejections"] == 1
        assert stats["queries_submitted"] == 3
        assert stats["queries_completed"] == 2


def test_rejection_does_no_partial_work():
    db = make_db(20, 8)
    with QueryService(db, ServiceConfig(workers=1, queue_depth=1)) as service:
        with service._gate.write_locked():
            first = service.submit(QUERY_1)  # goes straight to the worker
            deadline = time.monotonic() + 10.0
            while service._queue.qsize() > 0:
                assert time.monotonic() < deadline
                time.sleep(0.001)
            second = service.submit(QUERY_1)  # fills the queue
            with pytest.raises(AdmissionError):
                service.submit(QUERY_2)
        first.result(30.0)
        second.result(30.0)
        # The rejected QUERY_2 never touched the caches: the two
        # admitted runs of QUERY_1 account for all cache traffic.
        stats = service.stats()
        assert stats["result_cache_misses"] == 1
        assert stats["result_cache_hits"] == 1
        assert stats["plan_cache_misses"] == 1


# ----------------------------------------------------------------------
# Sessions
# ----------------------------------------------------------------------
def test_session_accounting_and_close():
    with QueryService(make_db(20, 8), ServiceConfig(workers=1)) as service:
        session = service.open_session(name="alice")
        service.query(QUERY_1, session=session)
        service.query(QUERY_1, session=session)
        assert session.queries == 2
        assert session.cache_hits == 1
        assert session.snapshot()["name"] == "alice"
        assert len(service.sessions) == 1
        service.close_session(session.session_id)
        with pytest.raises(SessionError):
            service.sessions.get(session.session_id)


def test_session_default_plan_applies():
    with QueryService(make_db(20, 8), ServiceConfig(workers=1)) as service:
        session = service.open_session(default_plan="direct")
        outcome = service.query(QUERY_1, session=session)
        assert outcome.plan_mode == "direct"
        # An explicit plan still wins over the session default.
        assert service.query(QUERY_1, plan="groupby", session=session).plan_mode == "groupby"


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_profile_reports_cache_and_queue_counters():
    with QueryService(make_db(30, 10), ServiceConfig(workers=1)) as service:
        service.query(QUERY_1)  # populate the plan cache
        outcome = service.query(QUERY_1, analyze=True)
        assert outcome.profile is not None
        totals = outcome.profile.totals
        assert totals.get("plan_cache_hits") == 1
        assert "queue_wait_us" in totals
        assert "result_cache_misses" in totals
        assert service.cache_hit_rate() == 0.0  # analyze runs bypass the result cache


def test_stats_snapshot_arithmetic():
    with QueryService(make_db(20, 8), ServiceConfig(workers=1)) as service:
        before = service.stats()
        service.query(QUERY_1)
        service.query(QUERY_1)
        delta = service.stats() - before
        assert delta["queries_completed"] == 2
        assert delta["result_cache_hits"] == 1
        assert delta["result_cache_misses"] == 1
        assert service.cache_hit_rate() == 0.5


# ----------------------------------------------------------------------
# The acceptance stress test: 8 concurrent readers + 1 loader
# ----------------------------------------------------------------------
def test_stress_readers_with_concurrent_loader():
    workers = int(os.environ.get("TIMBER_STRESS_WORKERS", "8"))
    rounds = int(os.environ.get("TIMBER_STRESS_ROUNDS", "6"))
    db = make_db(50, 15)
    oracle = {
        QUERY_1: db.query(QUERY_1).collection,
        QUERY_2: db.query(QUERY_2).collection,
    }
    errors: list[BaseException] = []
    with QueryService(db, ServiceConfig(workers=workers, queue_depth=128)) as service:

        def reader(seed: int) -> None:
            try:
                for i in range(rounds):
                    query = QUERY_1 if (seed + i) % 2 else QUERY_2
                    plan = ("auto", "direct", "naive")[(seed + i) % 3]
                    outcome = service.query(query, plan=plan, wait=60.0)
                    # Results must match the single-threaded oracle
                    # whenever the extra document is not loaded; with it
                    # loaded the row count can only grow.
                    if outcome.generation == 1:
                        assert_collections_equal(outcome.collection, oracle[query])
                    else:
                        assert len(outcome) >= len(oracle[query])
            except BaseException as error:  # noqa: BLE001 - collected for the main thread
                errors.append(error)

        def loader() -> None:
            try:
                for i in range(3):
                    extra = generate_dblp(
                        DBLPConfig(n_articles=8, n_authors=4, seed=100 + i)
                    )
                    service.load_tree(extra, f"extra-{i}.xml")
                    time.sleep(0.01)
                    service.drop_document(f"extra-{i}.xml")
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=reader, args=(n,)) for n in range(8)]
        threads.append(threading.Thread(target=loader))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
            assert not thread.is_alive(), "stress thread hung"

        assert errors == []
        stats = service.stats()
        assert stats["queries_completed"] == 8 * rounds
        assert stats["queue_waits"] == 8 * rounds
        assert "queue_wait_us_total" in stats

    # Post-run invariants: clean store, no leaked pins.
    report = db.store.verify()
    assert report.ok, report.render()
    assert db.store.pool.pinned_count() == 0
    # The loader's six mutations all bumped the generation.
    assert db.store.generation == 7


def test_concurrent_identical_queries_agree():
    db = make_db(40, 12)
    expected = db.query(QUERY_1).collection
    with QueryService(db, ServiceConfig(workers=8, queue_depth=64)) as service:
        tickets = [service.submit(QUERY_1) for _ in range(16)]
        outcomes = [ticket.result(60.0) for ticket in tickets]
    for outcome in outcomes:
        assert_collections_equal(outcome.collection, expected)
    assert sum(1 for o in outcomes if o.cached) >= 1  # repeats hit the cache
