"""Streaming ingest at the service and wire layers.

Covers the chunked ``LOAD`` protocol (per-batch progress events,
``degraded:ingesting`` health, reads running between batch commits),
abort semantics on client disconnect, batch-granular result-cache
invalidation, contention-aware ingest pacing, and — through the chaos
proxy — mid-stream truncation leaving the store at a committed batch
boundary with no partial batch visible.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1
from repro.query.database import Database
from repro.service import ChaosProxy, NetFaultPlan, QueryService, ServiceConfig
from repro.service.client import ServiceClient
from repro.service.rwlock import ReadWriteLock
from repro.service.server import ServerConfig, serve
from repro.storage.store import NodeStore
from repro.ingest import IngestSession, chunks_of
from repro.xmlmodel.diff import assert_collections_equal
from repro.xmlmodel.serialize import serialize

BASE = generate_dblp(DBLPConfig(n_articles=30, n_authors=10, seed=5))
INCOMING = generate_dblp(DBLPConfig(n_articles=60, n_authors=24, seed=11))
INCOMING_TEXT = serialize(INCOMING, indent="  ")
INCOMING_QUERY = (
    'FOR $a IN document("incoming.xml")//article, $y IN $a/year '
    'WHERE $y = "2000" RETURN $a'
)


@pytest.fixture()
def backend():
    """White-box stack: the db and service stay reachable so tests can
    assert on store state the wire protocol doesn't expose."""
    db = Database()
    db.load(tree=BASE, name="bib.xml")
    service = QueryService(db, ServiceConfig(workers=2))
    # Short timeouts so a handler stuck on a reset-killed connection —
    # blocked in a send, or polling for a line whose tail the chaos
    # proxy swallowed — notices within the test's patience, not the
    # production defaults.
    server = serve(
        service,
        port=0,
        config=ServerConfig(
            poll_interval=0.02, write_timeout=1.0, idle_timeout=2.0
        ),
    )
    server.serve_background()
    try:
        yield db, service, server
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        db.close()


def _wait_not_ingesting(service, timeout=10.0):
    deadline = time.monotonic() + timeout
    while service.ingesting and time.monotonic() < deadline:
        time.sleep(0.02)
    assert not service.ingesting


# ----------------------------------------------------------------------
# ServiceClient.load_stream end to end
# ----------------------------------------------------------------------
def test_load_stream_end_to_end(backend):
    db, service, server = backend
    client = ServiceClient(*server.endpoint)
    events = []
    reply = client.load_stream(
        INCOMING_TEXT,
        "incoming.xml",
        batch_size=120,
        chunk_chars=2048,
        on_progress=events.append,
    )
    assert reply["batches"] > 1
    assert reply["nodes"] == reply["nodes_streamed"]
    assert len(events) == reply["batches"]
    assert [e["batch"] for e in events] == list(range(1, reply["batches"] + 1))
    assert events[-1]["nodes_total"] == reply["nodes"]
    # The streamed document answers queries identically to a whole load.
    reference = Database()
    reference.load(tree=INCOMING, name="incoming.xml")
    assert_collections_equal(
        reference.query(INCOMING_QUERY).collection,
        db.query(INCOMING_QUERY).collection,
    )
    health = client.health()
    assert health.status == "ok" and not health.ingesting
    assert db.verify().ok


def test_stats_expose_ingest_counters(backend):
    db, service, server = backend
    client = ServiceClient(*server.endpoint)
    reply = client.load_stream(INCOMING_TEXT, "incoming.xml", batch_size=120)
    stats = client.stats()
    assert stats["ingest_batches_committed"] == reply["batches"]
    assert stats["ingest_nodes_streamed"] == reply["nodes"]
    assert stats["index_incremental_updates"] > 0


# ----------------------------------------------------------------------
# Mid-stream health + reads between batches (raw wire protocol)
# ----------------------------------------------------------------------
def _raw_line_conn(endpoint):
    sock = socket.create_connection(endpoint, timeout=30.0)
    return sock, sock.makefile("rw", encoding="utf-8", newline="\n")


def _send_line(file, line):
    file.write(line + "\n")
    file.flush()
    reply = file.readline().strip()
    assert reply.startswith("OK "), reply
    return json.loads(reply[3:])


def _stream_payload(chunk, *, final, batch_size=60, name="partial.xml"):
    return "LOAD " + json.dumps(
        {
            "name": name,
            "chunk": chunk,
            "stream": True,
            "batch_size": batch_size,
            "final": final,
        }
    )


def test_health_degrades_while_ingesting(backend):
    db, service, server = backend
    sock, file = _raw_line_conn(server.endpoint)
    try:
        mid = _send_line(
            file, _stream_payload(INCOMING_TEXT[:8000], final=False)
        )
        assert mid["streaming"] and mid["batches"] >= 1
        client = ServiceClient(*server.endpoint)
        health = client.health()
        assert health.status == "degraded:ingesting"
        assert health.ingesting
        assert health.ready  # reads still served between batches
        # A reader really does get through mid-ingest.
        assert client.query(QUERY_1)["rows"] > 0
        # Finishing the stream clears the condition.
        _send_line(file, _stream_payload(INCOMING_TEXT[8000:], final=False))
        final = _send_line(file, _stream_payload("", final=True))
        assert final["nodes"] == final["nodes_streamed"]
        health = client.health()
        assert health.status == "ok" and not health.ingesting
    finally:
        sock.close()


def test_disconnect_aborts_and_keeps_committed_batches(backend):
    db, service, server = backend
    sock, file = _raw_line_conn(server.endpoint)
    mid = _send_line(file, _stream_payload(INCOMING_TEXT[:8000], final=False))
    assert mid["batches"] >= 1
    committed_nodes = mid["nodes_streamed"]
    # Hard disconnect mid-stream (makefile holds a dup'd fd — both
    # must go for the server to see EOF).
    file.close()
    sock.close()
    _wait_not_ingesting(service)
    assert db.verify().ok
    info = db.store.document("partial.xml")
    assert info.n_nodes == committed_nodes  # exactly the committed batches
    assert db.store.materialize(info.root_nid).tag == INCOMING.tag
    assert db.store.stats()["ingests_aborted"] == 1
    client = ServiceClient(*server.endpoint)
    assert client.health().status == "ok"


# ----------------------------------------------------------------------
# Batch-granular cache invalidation
# ----------------------------------------------------------------------
def test_result_cache_invalidates_per_batch(backend):
    db, service, server = backend
    service.query(QUERY_1)
    service.query(QUERY_1)
    hits_before = service.result_cache.counters.hits
    assert hits_before >= 1  # warm
    report = service.load_stream(INCOMING_TEXT, "incoming.xml", batch_size=120)
    assert report.batches > 1
    misses_before = service.result_cache.counters.misses
    service.query(QUERY_1)  # generation moved: stale entry unreachable
    assert service.result_cache.counters.misses == misses_before + 1


# ----------------------------------------------------------------------
# Contention-aware pacing
# ----------------------------------------------------------------------
def test_rwlock_counts_admitted_reads():
    lock = ReadWriteLock()
    assert lock.reads_admitted == 0
    with lock.read_locked():
        with lock.read_locked():
            pass
    assert lock.reads_admitted == 2
    with lock.write_locked():
        pass
    assert lock.reads_admitted == 2  # writes don't count


def _patched_sleeps(monkeypatch):
    import repro.service.service as service_module

    sleeps = []
    monkeypatch.setattr(service_module.time, "sleep", sleeps.append)
    return sleeps


def test_pacing_skipped_when_idle(backend, monkeypatch):
    db, service, server = backend
    sleeps = _patched_sleeps(monkeypatch)
    report = service.load_stream(INCOMING_TEXT, "incoming.xml", batch_size=120)
    assert report.batches > 1
    assert sleeps == []  # no reader contended: full-speed ingest


def test_pacing_pauses_under_reader_contention(backend, monkeypatch):
    db, service, server = backend
    sleeps = _patched_sleeps(monkeypatch)
    ingest = service.begin_ingest("incoming.xml", batch_size=60)
    try:
        service.query(QUERY_1)  # a read admitted since the ingest began
        for chunk in chunks_of(INCOMING_TEXT, 4096):
            ingest.feed(chunk)
        ingest.finish()
    except BaseException:
        ingest.abort()
        raise
    assert sleeps and all(pause > 0 for pause in sleeps)


def test_pacing_disabled_by_config():
    db = Database()
    db.load(tree=BASE, name="bib.xml")
    service = QueryService(db, ServiceConfig(workers=2, ingest_pacing=0.0))
    try:
        service.query(QUERY_1)
        report = service.load_stream(
            INCOMING_TEXT, "incoming.xml", batch_size=120
        )
        assert report.batches > 1
    finally:
        service.close()
        db.close()


# ----------------------------------------------------------------------
# Chaos: mid-stream truncation (satellite: chunked LOAD under
# REPRO_NET_FAULT_PLAN-style faults)
# ----------------------------------------------------------------------
def _batch_boundaries(batch_size):
    """Node totals at every *non-final* batch commit for INCOMING_TEXT:
    the only states a truncated stream may leave behind (the final
    batch commits exclusively on an explicit ``final`` dispatch)."""
    store = NodeStore()
    session = IngestSession(store, "oracle.xml", batch_size=batch_size)
    for chunk in chunks_of(INCOMING_TEXT, 4096):
        session.feed(chunk)
    session.finish()
    return {event.nodes_total for event in session.progress[:-1]}


# Probed outcomes per seed with truncate_rate=0.4, max_faults=1 and
# 1500-char chunks: 5 = truncation after a client-acknowledged commit;
# 6 = reply truncated, server a batch ahead of the client; 9 = first
# chunk torn, nothing ever committed.
@pytest.mark.parametrize("seed", [5, 6, 9])
def test_truncated_stream_leaves_committed_batch_boundary(backend, seed):
    db, service, server = backend
    plan = NetFaultPlan(seed=seed, truncate_rate=0.4, max_faults=1)
    proxy = ChaosProxy(server.endpoint, plan).start()
    last_ok = None
    try:
        sock, file = _raw_line_conn(proxy.endpoint)
        try:
            chunks = [
                INCOMING_TEXT[i : i + 1500]
                for i in range(0, len(INCOMING_TEXT), 1500)
            ]
            for piece in chunks:
                try:
                    file.write(
                        _stream_payload(piece, final=False, name="trunc.xml")
                        + "\n"
                    )
                    file.flush()
                    reply = file.readline()
                except OSError:
                    break
                if not reply:
                    break  # pipe killed mid-line
                assert reply.startswith("OK "), reply
                last_ok = json.loads(reply[3:])
            else:
                pytest.fail("the truncation fault never fired")
        finally:
            try:
                file.close()
            except OSError:
                pass
            sock.close()
        assert proxy.fault_counters.snapshot()["net_truncations"] == 1
    finally:
        proxy.close()
    _wait_not_ingesting(service)
    assert db.verify().ok
    names = {info.name for info in db.store.documents()}
    if last_ok is None or last_ok["batches"] == 0:
        # Torn before the first commit: no partial batch visible, and
        # possibly no document at all.
        if "trunc.xml" not in names:
            return
    info = db.store.document("trunc.xml")
    # The store sits exactly at a committed batch boundary — never a
    # partially-applied batch, even when the reply (not the request)
    # was the truncated chunk and the server ran ahead of the client.
    assert info.n_nodes in _batch_boundaries(60)
    if last_ok is not None:
        assert info.n_nodes >= last_ok["nodes_streamed"]
    tree = db.store.materialize(info.root_nid)
    assert tree.tag == INCOMING.tag
    for got, want in zip(tree.children, INCOMING.children):
        assert got.structurally_equal(want)
    client = ServiceClient(*server.endpoint)
    assert client.health().status == "ok"
