"""Shared fixtures for the service suite.

The interesting one is :func:`chaos_route`: when the
``REPRO_NET_FAULT_PLAN`` environment variable is set, every test
connection is routed through a :class:`~repro.service.chaos.ChaosProxy`
built from that plan.  CI sets ``REPRO_NET_FAULT_PLAN=none`` and runs
this whole suite through the proxy to prove the proxy is transparent;
a chaotic plan turns the same suite into an ad-hoc storm.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.query.database import Database
from repro.service import ChaosProxy, QueryService, ServiceConfig, net_plan_from_env
from repro.service.server import serve


class LineClient:
    """A minimal line-protocol client over a raw socket — deliberately
    dumber than :class:`~repro.service.client.ServiceClient`, so the
    wire protocol itself is what gets tested."""

    def __init__(self, endpoint):
        self.sock = socket.create_connection(endpoint, timeout=30.0)
        self.file = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def send(self, line: str) -> str:
        self.file.write(line + "\n")
        self.file.flush()
        return self.file.readline().strip()

    def ok(self, line: str) -> dict:
        reply = self.send(line)
        assert reply.startswith("OK "), reply
        return json.loads(reply[3:])

    def err(self, line: str) -> dict:
        reply = self.send(line)
        assert reply.startswith("ERR "), reply
        return json.loads(reply[4:])

    def close(self) -> None:
        self.sock.close()


@pytest.fixture()
def chaos_route():
    """endpoint -> endpoint mapper: identity normally, through a
    ChaosProxy when ``REPRO_NET_FAULT_PLAN`` is set."""
    proxies: list[ChaosProxy] = []

    def route(endpoint):
        plan = net_plan_from_env()
        if plan is None:
            return endpoint
        proxy = ChaosProxy(endpoint, plan).start()
        proxies.append(proxy)
        return proxy.endpoint

    yield route
    for proxy in proxies:
        proxy.close()


@pytest.fixture()
def running_server():
    db = Database()
    db.load(tree=generate_dblp(DBLPConfig(n_articles=30, n_authors=10, seed=5)), name="bib.xml")
    service = QueryService(db, ServiceConfig(workers=2))
    server = serve(service, port=0)  # ephemeral port
    server.serve_background()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        db.close()


@pytest.fixture()
def endpoint(running_server, chaos_route):
    return chaos_route(running_server.endpoint)


@pytest.fixture()
def client(endpoint):
    c = LineClient(endpoint)
    yield c
    c.close()
