"""End-to-end tests of the line-oriented TCP protocol."""

from __future__ import annotations

import json
import socket

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1
from repro.query.database import Database
from repro.service import QueryService, ServiceConfig
from repro.service.server import serve


@pytest.fixture()
def running_server():
    db = Database()
    db.load_tree(
        generate_dblp(DBLPConfig(n_articles=30, n_authors=10, seed=5)), "bib.xml"
    )
    service = QueryService(db, ServiceConfig(workers=2))
    server = serve(service, port=0)  # ephemeral port
    server.serve_background()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        db.close()


class Client:
    """A minimal line-protocol client over a raw socket."""

    def __init__(self, endpoint):
        self.sock = socket.create_connection(endpoint, timeout=30.0)
        self.file = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def send(self, line: str) -> str:
        self.file.write(line + "\n")
        self.file.flush()
        return self.file.readline().strip()

    def ok(self, line: str) -> dict:
        reply = self.send(line)
        assert reply.startswith("OK "), reply
        return json.loads(reply[3:])

    def err(self, line: str) -> dict:
        reply = self.send(line)
        assert reply.startswith("ERR "), reply
        return json.loads(reply[4:])

    def close(self) -> None:
        self.sock.close()


@pytest.fixture()
def client(running_server):
    c = Client(running_server.endpoint)
    yield c
    c.close()


def test_ping(client):
    assert client.ok("PING") == {"pong": True}


def test_query_round_trip(client):
    payload = client.ok("QUERY " + json.dumps({"q": QUERY_1}))
    assert payload["rows"] > 0
    assert payload["plan_mode"] == "groupby"
    assert payload["cached"] is False
    assert "<authorpubs>" in payload["xml"]
    warm = client.ok("QUERY " + json.dumps({"q": QUERY_1}))
    assert warm["cached"] is True
    assert warm["fingerprint"] == payload["fingerprint"]


def test_query_with_plan_and_timeout(client):
    payload = client.ok("QUERY " + json.dumps({"q": QUERY_1, "plan": "direct"}))
    assert payload["plan_mode"] == "direct"
    error = client.err("QUERY " + json.dumps({"q": QUERY_1, "timeout": 0.0}))
    assert error["kind"] == "QueryTimeoutError"


def test_explain(client):
    payload = client.ok("EXPLAIN " + json.dumps({"q": QUERY_1}))
    assert "GROUPBY" in payload["text"] or "groupby" in payload["text"]
    assert "plans" in payload


def test_stats_and_session(client):
    client.ok("QUERY " + json.dumps({"q": QUERY_1}))
    stats = client.ok("STATS")
    assert stats["queries_completed"] >= 1
    assert "result_cache_hits" in stats
    session = client.ok("SESSION")
    assert session["queries"] == 1
    assert session["name"].startswith("tcp:")


def test_errors_keep_connection_alive(client):
    assert client.err("BOGUS")["kind"] == "ProtocolError"
    assert client.err("QUERY not-json")["kind"] == "ProtocolError"
    assert client.err("QUERY {}")["kind"] == "ProtocolError"
    assert client.err("QUERY []")["kind"] == "ProtocolError"
    assert client.err("")["kind"] == "ProtocolError"
    bad_query = client.err("QUERY " + json.dumps({"q": "THIS IS NOT XQUERY ("}))
    assert "message" in bad_query
    assert client.ok("PING") == {"pong": True}  # still usable


def test_quit_closes_cleanly(client):
    assert client.send("QUIT") == "BYE"
    assert client.file.readline() == ""  # server closed the stream


def test_each_connection_gets_own_session(running_server):
    a, b = Client(running_server.endpoint), Client(running_server.endpoint)
    try:
        a.ok("QUERY " + json.dumps({"q": QUERY_1}))
        assert a.ok("SESSION")["queries"] == 1
        assert b.ok("SESSION")["queries"] == 0
        assert a.ok("SESSION")["session_id"] != b.ok("SESSION")["session_id"]
    finally:
        a.close()
        b.close()
