"""End-to-end tests of the line-oriented TCP protocol.

The ``client``/``endpoint``/``running_server`` fixtures live in
``conftest.py`` (they optionally route through a ChaosProxy when
``REPRO_NET_FAULT_PLAN`` is set).  Server *resilience* behavior —
timeouts, shedding, drain, HEALTH under damage — is covered in
``test_resilience.py``; this file is the protocol happy path.
"""

from __future__ import annotations

import json

from repro.datagen.sample import QUERY_1

from .conftest import LineClient


def test_ping(client):
    assert client.ok("PING") == {"pong": True}


def test_query_round_trip(client):
    payload = client.ok("QUERY " + json.dumps({"q": QUERY_1}))
    assert payload["rows"] > 0
    assert payload["plan_mode"] == "groupby"
    assert payload["cached"] is False
    assert "<authorpubs>" in payload["xml"]
    warm = client.ok("QUERY " + json.dumps({"q": QUERY_1}))
    assert warm["cached"] is True
    assert warm["fingerprint"] == payload["fingerprint"]


def test_query_with_plan_and_timeout(client):
    payload = client.ok("QUERY " + json.dumps({"q": QUERY_1, "plan": "direct"}))
    assert payload["plan_mode"] == "direct"
    error = client.err("QUERY " + json.dumps({"q": QUERY_1, "timeout": 0.0}))
    assert error["kind"] == "QueryTimeoutError"


def test_explain(client):
    payload = client.ok("EXPLAIN " + json.dumps({"q": QUERY_1}))
    assert "GROUPBY" in payload["text"] or "groupby" in payload["text"]
    assert "plans" in payload


def test_stats_and_session(client):
    client.ok("QUERY " + json.dumps({"q": QUERY_1}))
    stats = client.ok("STATS")
    assert stats["queries_completed"] >= 1
    assert "result_cache_hits" in stats
    # The network edge's counters ride along, server_*-prefixed.
    assert stats["server_connections_accepted"] >= 1
    assert stats["server_requests_received"] >= 1
    session = client.ok("SESSION")
    assert session["queries"] == 1
    assert session["aborted"] == 0
    assert session["name"].startswith("tcp:")


def test_health_healthy(client):
    health = client.ok("HEALTH")
    assert health["status"] == "ok"
    assert health["live"] is True
    assert health["ready"] is True
    assert health["draining"] is False
    assert health["degraded_store"] is False
    assert health["quarantined_pages"] == 0
    assert health["queue_depth"] >= 0
    assert health["active_connections"] >= 1
    assert health["workers"] == 2


def test_errors_keep_connection_alive(client):
    assert client.err("BOGUS")["kind"] == "ProtocolError"
    assert client.err("QUERY not-json")["kind"] == "ProtocolError"
    assert client.err("QUERY {}")["kind"] == "ProtocolError"
    assert client.err("QUERY []")["kind"] == "ProtocolError"
    assert client.err("")["kind"] == "ProtocolError"
    bad_query = client.err("QUERY " + json.dumps({"q": "THIS IS NOT XQUERY ("}))
    assert "message" in bad_query
    assert client.ok("PING") == {"pong": True}  # still usable


def test_quit_closes_cleanly(client):
    assert client.send("QUIT") == "BYE"
    assert client.file.readline() == ""  # server closed the stream


def test_each_connection_gets_own_session(endpoint):
    a, b = LineClient(endpoint), LineClient(endpoint)
    try:
        a.ok("QUERY " + json.dumps({"q": QUERY_1}))
        assert a.ok("SESSION")["queries"] == 1
        assert b.ok("SESSION")["queries"] == 0
        assert a.ok("SESSION")["session_id"] != b.ok("SESSION")["session_id"]
    finally:
        a.close()
        b.close()


def test_load_wire_command_chunked(client):
    doc = "<bib>" + "".join(
        f"<article><title>t{i}</title></article>" for i in range(4)
    ) + "</bib>"
    # Stream in three chunks; only the final one materializes the doc.
    third = len(doc) // 3
    part = client.ok("LOAD " + json.dumps(
        {"name": "wire.xml", "chunk": doc[:third], "final": False}
    ))
    assert part == {"received": third}
    part = client.ok("LOAD " + json.dumps(
        {"name": "wire.xml", "chunk": doc[third : 2 * third], "final": False}
    ))
    assert part == {"received": 2 * third}
    done = client.ok("LOAD " + json.dumps(
        {"name": "wire.xml", "chunk": doc[2 * third :], "final": True}
    ))
    assert done["document"] == "wire.xml"
    assert done["nodes"] > 0
    count = client.ok("QUERY " + json.dumps(
        {"q": 'count(document("wire.xml")//article)'}
    ))
    assert "<value>4</value>" in count["xml"]


def test_load_rejects_non_string_chunk(client):
    error = client.err("LOAD " + json.dumps(
        {"name": "bad.xml", "chunk": 7, "final": True}
    ))
    assert error["kind"] == "ProtocolError"
    assert client.ok("PING") == {"pong": True}  # connection survives


def test_client_vanishing_mid_reply_marks_session_aborted(running_server):
    # The cluster coordinator abandons shard calls past their deadline;
    # the shard must mark the SESSION aborted (not just the server-wide
    # counter) and still run close_session.  The RST must land while
    # the query executes, so retry the race a few times.
    import socket as socket_module
    import struct
    import time

    service = running_server.service
    raw = LineClient(running_server.endpoint)
    assert raw.ok("PING") == {"pong": True}
    session = next(s for s in service.sessions.active() if s.aborted == 0)
    # Pipeline a burst of UNIQUE (leading whitespace defeats the query
    # cache) grouping queries without reading a single reply: the
    # server is necessarily mid-burst when the reset lands, so the
    # race needs no retry loop.
    burst = "".join(
        "QUERY " + json.dumps({"q": " " * i + QUERY_1}) + "\n"
        for i in range(300)
    )
    raw.file.write(burst)
    raw.file.flush()
    time.sleep(0.1)  # let the server start chewing through the burst
    # SO_LINGER(on, 0): close() sends RST, so the server's reply write
    # fails instead of landing in a dead socket buffer.  The makefile
    # handle holds its own reference to the fd — both must close for
    # the RST to actually fire.
    raw.sock.setsockopt(
        socket_module.SOL_SOCKET,
        socket_module.SO_LINGER,
        struct.pack("ii", 1, 0),
    )
    raw.file.close()
    raw.sock.close()
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline and not session.closed:
        time.sleep(0.02)
    assert session.aborted == 1
    assert session.closed  # close_session ran despite the abort
    stats = running_server.stats()
    assert stats["server_connections_aborted"] >= 1
    assert stats["server_handler_crashes"] == 0
