"""Experiment-harness tests at a tiny scale.

These check the harness machinery and the *qualitative* claims of the
paper's evaluation (who wins; E2's advantage exceeds E1's in value
lookups) without asserting wall-clock numbers, which are noisy in CI.
"""

import pytest

from repro.bench.experiments import (
    run_ablation_buffer_pool,
    run_ablation_grouping_strategies,
    run_ablation_match_strategies,
    run_experiment1,
    run_experiment2,
    run_scaling,
)
from repro.bench.harness import build_database, measured_run
from repro.bench.reporting import format_report, format_scaling, format_table
from repro.datagen.dblp import DBLPConfig
from repro.datagen.sample import QUERY_1

TINY = DBLPConfig(n_articles=60, n_authors=25, seed=7)


class TestHarness:
    def test_build_database_profile(self):
        db, profile = build_database(TINY)
        assert profile.n_articles == 60
        assert db.documents() == ["bib.xml"]

    def test_measured_run_record(self):
        db, _ = build_database(TINY)
        record = measured_run(db, "probe", QUERY_1, "groupby")
        assert record.plan_mode == "groupby"
        assert record.seconds > 0
        assert record.result_size > 0
        assert record.statistics["value_lookups"] > 0

    def test_row_keys(self):
        db, _ = build_database(TINY)
        row = measured_run(db, "probe", QUERY_1, "groupby").row()
        for key in ("label", "plan", "seconds", "value_lookups", "results"):
            assert key in row


class TestExperimentShapes:
    def test_e1_groupby_does_least_lookups(self):
        report = run_experiment1(TINY)
        nested = report.run_by_label("direct-nested-loop")
        hashed = report.run_by_label("direct-hash-join")
        grouped = report.run_by_label("groupby")
        assert grouped.statistics["value_lookups"] < hashed.statistics["value_lookups"]
        assert hashed.statistics["value_lookups"] < nested.statistics["value_lookups"]

    def test_e1_all_plans_same_result_size(self):
        report = run_experiment1(TINY)
        sizes = {run.result_size for run in report.runs}
        assert len(sizes) == 1

    def test_e2_gap_exceeds_e1_gap(self):
        """The paper's headline shape: removing the title output widens
        the grouping advantage (>6x vs ~1.8x)."""
        e1 = run_experiment1(TINY)
        e2 = run_experiment2(TINY)
        e1_ratio = e1.lookup_ratio("direct-hash-join", "groupby")
        e2_ratio = e2.lookup_ratio("direct-hash-join", "groupby")
        assert e2_ratio > e1_ratio

    def test_paper_ratio_bracketing(self):
        """The paper's measured ratios sit between the two baselines in
        value-lookup terms."""
        e2 = run_experiment2(TINY)
        low = e2.lookup_ratio("direct-hash-join", "groupby")
        high = e2.lookup_ratio("direct-nested-loop", "groupby")
        assert low < 6.75 < high

    def test_speedup_and_lookup_helpers(self):
        report = run_experiment2(TINY)
        assert report.speedup("direct-nested-loop", "groupby") > 1
        with pytest.raises(KeyError):
            report.run_by_label("missing")


class TestAblations:
    def test_match_strategies_same_results(self):
        report = run_ablation_match_strategies(TINY)
        sizes = {run.result_size for run in report.runs}
        assert len(sizes) == 1
        indexed = report.run_by_label("indexed")
        scanned = report.run_by_label("full-scan")
        assert (
            indexed.statistics["record_lookups"] < scanned.statistics["record_lookups"]
        )

    def test_grouping_strategies(self):
        report = run_ablation_grouping_strategies(TINY)
        labels = [run.label for run in report.runs]
        assert labels == ["sort", "hash", "replicate", "value-index"]
        sort = report.run_by_label("sort")
        replicate = report.run_by_label("replicate")
        assert (
            sort.statistics["record_lookups"] < replicate.statistics["record_lookups"]
        )

    def test_value_index_strategy_tradeoff(self):
        """Footnote 8: the value index avoids value lookups but pays
        parent navigation per posting."""
        report = run_ablation_grouping_strategies(TINY)
        sort = report.run_by_label("sort")
        value_index = report.run_by_label("value-index")
        assert value_index.statistics["value_lookups"] < sort.statistics["value_lookups"]
        assert value_index.statistics["record_lookups"] > sort.statistics["record_lookups"]
        assert value_index.result_size == sort.result_size

    def test_buffer_pool_sweep(self):
        report = run_ablation_buffer_pool(TINY, frame_budgets=(2, 64))
        small = report.runs[0]
        large = report.runs[1]
        assert small.result_size == large.result_size
        # A tiny pool cannot absorb the working set: more physical reads.
        assert (
            small.statistics["physical_reads"] >= large.statistics["physical_reads"]
        )


class TestReporting:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": ""}], ("a", "b"))
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_report_mentions_paper(self):
        report = run_experiment2(TINY)
        text = format_report(report, "E2")
        assert "E2 count-by-author" in text
        assert "paper (E2)" in text
        assert "speedup" in text

    def test_format_scaling(self):
        scaling = run_scaling(scales=(0.5, 1.0), base=TINY)
        text = format_scaling(scaling)
        assert "E1 nested-loop" in text
        assert text.count("\n") >= 3
