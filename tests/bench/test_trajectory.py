"""TrajectoryRecorder and the committed-artifact writer, including the
fail-loud guard against truncating a real trajectory with an empty
snapshot."""

from __future__ import annotations

import json

import pytest

from repro.bench.trajectory import (
    TrajectoryRecorder,
    record_run,
    trajectory_recorder,
    write_trajectory,
)
from repro.errors import ReproError


@pytest.fixture(autouse=True)
def _clean_global_recorder():
    trajectory_recorder().reset()
    yield
    trajectory_recorder().reset()


def test_latest_entry_per_bench_wins():
    recorder = TrajectoryRecorder()
    recorder.record("e1", 1.0)
    recorder.record("e2", 2.0)
    recorder.record("e1", 0.5, scale=2.0)
    latest = recorder.latest_entries()
    assert [entry["bench"] for entry in latest] == ["e1", "e2"]
    assert latest[0]["seconds"] == 0.5 and latest[0]["scale"] == 2.0


def test_write_and_merge(tmp_path):
    path = str(tmp_path / "BENCH_trajectory.json")
    record_run("e1", 1.0)
    assert write_trajectory(path) == path
    trajectory_recorder().reset()
    record_run("e2", 2.0)
    write_trajectory(path)
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    # The second session refreshed its own row without dropping e1's.
    assert {entry["bench"] for entry in data["entries"]} == {"e1", "e2"}


def test_empty_recorder_never_touches_the_artifact(tmp_path):
    path = str(tmp_path / "BENCH_trajectory.json")
    record_run("e1", 1.0)
    write_trajectory(path)
    before = open(path, encoding="utf-8").read()
    trajectory_recorder().reset()
    assert write_trajectory(path) is None
    assert open(path, encoding="utf-8").read() == before


def test_empty_snapshot_over_nonempty_fails_loudly(tmp_path):
    path = str(tmp_path / "BENCH_trajectory.json")
    full = TrajectoryRecorder()
    full.record("e1", 1.0)
    full.write(path)
    empty = TrajectoryRecorder()
    with pytest.raises(ReproError, match="refusing to overwrite"):
        empty.write(path)
    # The artifact survived the refused write.
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle)["entries"]


def test_empty_snapshot_over_empty_file_is_fine(tmp_path):
    path = str(tmp_path / "BENCH_trajectory.json")
    empty = TrajectoryRecorder()
    empty.write(path)  # nothing to protect: allowed
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle)["entries"] == []
