"""ASCII chart tests."""

from repro.bench.figures import BAR_CHAR, bar_chart, report_chart
from repro.bench.harness import ExperimentReport, RunRecord
from repro.datagen.dblp import DBLPProfile


class TestBarChart:
    def test_scaling_to_peak(self):
        text = bar_chart([("a", 4.0), ("b", 1.0)], width=40)
        lines = text.splitlines()
        assert lines[0].count(BAR_CHAR) == 40
        assert lines[1].count(BAR_CHAR) == 10

    def test_zero_value_has_no_bar(self):
        text = bar_chart([("a", 2.0), ("b", 0.0)])
        lines = text.splitlines()
        assert BAR_CHAR not in lines[1]

    def test_small_nonzero_gets_visible_bar(self):
        text = bar_chart([("big", 1000.0), ("tiny", 0.001)])
        assert text.splitlines()[1].count(BAR_CHAR) >= 1

    def test_labels_aligned(self):
        text = bar_chart([("short", 1.0), ("a-longer-label", 2.0)])
        lines = text.splitlines()
        assert lines[0].index(BAR_CHAR[0]) if BAR_CHAR in lines[0] else True
        # Both bars start at the same column.
        starts = [line.find(BAR_CHAR) for line in lines]
        assert starts[0] == starts[1]

    def test_title_and_unit(self):
        text = bar_chart([("a", 1.5)], title="demo", unit="s")
        assert text.startswith("demo")
        assert "1.5 s" in text

    def test_empty_rows(self):
        assert bar_chart([]) == "(no data)"

    def test_integer_rendering(self):
        assert "2 s" in bar_chart([("a", 2.0)], unit="s")


class TestReportChart:
    def make_report(self):
        report = ExperimentReport("demo", DBLPProfile())
        report.runs.append(
            RunRecord("direct", "naive", 4.0, {"value_lookups": 100}, 10)
        )
        report.runs.append(
            RunRecord("groupby", "groupby", 1.0, {"value_lookups": 25}, 10)
        )
        return report

    def test_seconds_metric(self):
        text = report_chart(self.make_report())
        assert "demo — seconds" in text
        assert "direct" in text and "groupby" in text

    def test_statistics_metric(self):
        text = report_chart(self.make_report(), metric="value_lookups")
        assert "value lookups" in text
        assert "100" in text and "25" in text
