"""Reporting edge cases."""

from repro.bench.harness import ExperimentReport, RunRecord
from repro.bench.reporting import format_report, format_table
from repro.datagen.dblp import DBLPProfile


def run(label, seconds=1.0, lookups=10):
    return RunRecord(label, label, seconds, {"value_lookups": lookups}, 5)


class TestFormatReport:
    def test_without_groupby_no_speedup_lines(self):
        report = ExperimentReport("solo", DBLPProfile())
        report.runs.append(run("direct-hash-join"))
        text = format_report(report)
        assert "speedup" not in text

    def test_without_paper_key(self):
        report = ExperimentReport("demo", DBLPProfile())
        report.runs.append(run("direct-hash-join", 2.0))
        report.runs.append(run("groupby", 1.0))
        text = format_report(report)
        assert "paper (" not in text
        assert "speedup" in text

    def test_infinite_lookup_ratio_safe(self):
        report = ExperimentReport("demo", DBLPProfile())
        report.runs.append(run("direct-hash-join", 2.0, lookups=10))
        report.runs.append(run("groupby", 1.0, lookups=0))
        assert report.lookup_ratio("direct-hash-join", "groupby") == float("inf")
        assert "inf" in format_report(report)

    def test_zero_time_speedup_safe(self):
        report = ExperimentReport("demo", DBLPProfile())
        report.runs.append(run("a", 1.0))
        zero = RunRecord("b", "b", 0.0, {}, 5)
        report.runs.append(zero)
        assert report.speedup("a", "b") == float("inf")


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table([], ("a", "b"))
        assert text.splitlines()[0].startswith("a")

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}], ("a", "b"))
        assert text.splitlines()[2].startswith("1")
