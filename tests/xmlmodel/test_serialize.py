"""Serializer unit tests, including the parse round-trip guarantee."""

import os

from repro.xmlmodel.node import XMLNode, element
from repro.xmlmodel.parse import parse_document, parse_file
from repro.xmlmodel.serialize import escape_attribute, escape_text, serialize, write_file


class TestEscaping:
    def test_escape_text(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_escape_attribute_quotes(self):
        assert escape_attribute('say "hi" & <go>') == "say &quot;hi&quot; &amp; &lt;go&gt;"


class TestSerialize:
    def test_empty_element(self):
        assert serialize(XMLNode("a"), indent=None) == "<a/>"

    def test_text_element(self):
        assert serialize(XMLNode("a", "hi"), indent=None) == "<a>hi</a>"

    def test_attributes(self):
        node = XMLNode("a", attributes={"x": "1", "y": "two"})
        assert serialize(node, indent=None) == '<a x="1" y="two"/>'

    def test_nested_compact(self):
        tree = element("a", None, element("b", "1"), element("c", None))
        assert serialize(tree, indent=None) == "<a><b>1</b><c/></a>"

    def test_indented_layout(self):
        tree = element("a", None, element("b", "1"))
        assert serialize(tree) == "<a>\n  <b>1</b>\n</a>\n"

    def test_mixed_content_text_first(self):
        tree = element("a", "note", element("b", "1"))
        compact = serialize(tree, indent=None)
        assert compact == "<a>note<b>1</b></a>"

    def test_special_characters_roundtrip(self):
        tree = XMLNode("a", 'x < y & "z"', attributes={"k": 'v"w'})
        again = parse_document(serialize(tree, indent=None))
        assert again.structurally_equal(tree)


class TestRoundTrip:
    def test_bibliography_roundtrip_indented(self, fig6_tree):
        again = parse_document(serialize(fig6_tree))
        assert again.structurally_equal(fig6_tree)

    def test_bibliography_roundtrip_compact(self, fig6_tree):
        again = parse_document(serialize(fig6_tree, indent=None))
        assert again.structurally_equal(fig6_tree)

    def test_write_file_roundtrip(self, fig6_tree, tmp_path):
        path = os.path.join(tmp_path, "bib.xml")
        write_file(fig6_tree, path)
        assert parse_file(path).structurally_equal(fig6_tree)
