"""Unit tests for the from-scratch XML parser."""

import pytest

from repro.errors import XMLParseError
from repro.xmlmodel.parse import parse_document


class TestBasics:
    def test_single_element(self):
        root = parse_document("<a/>")
        assert root.tag == "a"
        assert root.content is None
        assert root.children == []

    def test_text_content(self):
        root = parse_document("<a>hello</a>")
        assert root.content == "hello"

    def test_nested_elements(self):
        root = parse_document("<a><b>1</b><c>2</c></a>")
        assert [c.tag for c in root.children] == ["b", "c"]
        assert [c.content for c in root.children] == ["1", "2"]

    def test_whitespace_between_children_dropped(self):
        root = parse_document("<a>\n  <b>1</b>\n  <c>2</c>\n</a>")
        assert root.content is None
        assert len(root.children) == 2

    def test_mixed_text_kept_stripped(self):
        root = parse_document("<a> note <b>1</b></a>")
        assert root.content == "note"

    def test_deep_nesting(self):
        depth = 200
        text = "".join(f"<n{i}>" for i in range(depth))
        text += "".join(f"</n{i}>" for i in reversed(range(depth)))
        root = parse_document(text)
        assert root.subtree_size() == depth

    def test_content_whitespace_stripped(self):
        root = parse_document("<a>  hi  </a>")
        assert root.content == "hi"

    def test_empty_content_is_none(self):
        root = parse_document("<a>   </a>")
        assert root.content is None


class TestAttributes:
    def test_double_and_single_quotes(self):
        root = parse_document("<a x=\"1\" y='2'/>")
        assert root.attributes == {"x": "1", "y": "2"}

    def test_attribute_entities(self):
        root = parse_document('<a x="a&amp;b"/>')
        assert root.attributes["x"] == "a&b"

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document('<a x="1" x="2"/>')

    def test_unquoted_attribute_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("<a x=1/>")


class TestEntitiesAndSections:
    def test_predefined_entities(self):
        root = parse_document("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;s&apos;</a>")
        assert root.content == "<tag> & \"q\" 's'"

    def test_decimal_character_reference(self):
        assert parse_document("<a>&#65;</a>").content == "A"

    def test_hex_character_reference(self):
        assert parse_document("<a>&#x41;</a>").content == "A"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("<a>&nope;</a>")

    def test_cdata(self):
        root = parse_document("<a><![CDATA[<not-a-tag> & raw]]></a>")
        assert root.content == "<not-a-tag> & raw"

    def test_comments_skipped(self):
        root = parse_document("<!-- head --><a><!-- inner -->x</a><!-- tail -->")
        assert root.content == "x"

    def test_processing_instruction_skipped(self):
        root = parse_document('<?xml version="1.0"?><a>x</a>')
        assert root.content == "x"

    def test_doctype_skipped(self):
        root = parse_document("<!DOCTYPE doc SYSTEM 'd.dtd'><a/>")
        assert root.tag == "a"


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "just text",
            "<a>",
            "<a></b>",
            "<a></a><b></b>",
            "<a><b></a></b>",
            "<a>&unterminated",
            "<a x='1'",
            "<a/><junk/>",
            "<a/>trailing",
            "<!-- unterminated",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(XMLParseError):
            parse_document(text)

    def test_error_carries_position(self):
        try:
            parse_document("<a>\n<b></c>\n</a>")
        except XMLParseError as exc:
            assert exc.line == 2
            assert "mismatched" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected XMLParseError")


class TestDBLPShape:
    def test_bibliography_document(self):
        text = """
        <doc_root>
          <article>
            <title>Querying XML</title>
            <author>Jack</author><author>John</author>
            <year>1999</year>
          </article>
        </doc_root>
        """
        root = parse_document(text)
        article = root.children[0]
        assert article.find("title").content == "Querying XML"
        assert [a.content for a in article.findall("author")] == ["Jack", "John"]
