"""Axis-navigation helper tests."""

from repro.xmlmodel.navigate import (
    atomic_value,
    attribute_step,
    child_step,
    descendant_or_self_step,
    descendant_step,
    string_value,
)
from repro.xmlmodel.node import element


def bib():
    return element(
        "doc_root",
        None,
        element(
            "article",
            None,
            element("title", "Querying XML"),
            element("author", "Jack", element("institution", "U Michigan")),
        ),
        element("article", None, element("author", "John")),
    )


class TestSteps:
    def test_child_step_by_tag(self):
        root = bib()
        articles = child_step([root], "article")
        assert len(articles) == 2

    def test_child_step_wildcard(self):
        root = bib()
        assert len(child_step([root], None)) == 2

    def test_descendant_step(self):
        root = bib()
        authors = descendant_step([root], "author")
        assert [a.content for a in authors] == ["Jack", "John"]

    def test_descendant_step_dedups_nested_contexts(self):
        root = bib()
        contexts = [root, root.children[0]]  # nested contexts overlap
        authors = descendant_step(contexts, "author")
        assert [a.content for a in authors] == ["Jack", "John"]

    def test_descendant_or_self(self):
        root = bib()
        articles = descendant_or_self_step([root.children[0]], "article")
        assert len(articles) == 1

    def test_attribute_step(self):
        node = element("a", None)
        node.attributes["lang"] = "en"
        assert attribute_step([node, element("b", None)], "lang") == ["en"]


class TestValues:
    def test_string_value_concatenates(self):
        root = bib()
        assert string_value(root.children[0]) == "Querying XMLJackU Michigan"

    def test_atomic_value_prefers_direct_content(self):
        author = bib().children[0].children[1]
        assert atomic_value(author) == "Jack"

    def test_atomic_value_falls_back_to_string_value(self):
        wrapper = element("w", None, element("x", "a"), element("y", "b"))
        assert atomic_value(wrapper) == "ab"
