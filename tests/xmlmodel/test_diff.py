"""Structural-diff helper tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.xmlmodel.diff import (
    assert_collections_equal,
    diff_collections,
    first_difference,
)
from repro.xmlmodel.node import XMLNode, element
from repro.xmlmodel.tree import Collection, DataTree


def sample():
    return element(
        "article",
        None,
        element("title", "T1"),
        element("author", "Jack"),
        element("author", "Jill"),
    )


class TestFirstDifference:
    def test_equal_trees(self):
        assert first_difference(sample(), sample()) is None

    def test_tag_difference(self):
        other = sample()
        other.tag = "book"
        found = first_difference(sample(), other)
        assert found.kind == "tag"
        assert found.path == "article"

    def test_content_difference_with_path(self):
        other = sample()
        other.children[2].content = "Jane"
        found = first_difference(sample(), other)
        assert found.kind == "content"
        assert found.path == "article/author[1]"
        assert (found.left, found.right) == ("Jill", "Jane")

    def test_attribute_difference(self):
        other = sample()
        other.children[0].attributes["lang"] = "en"
        found = first_difference(sample(), other)
        assert found.kind == "attributes"
        assert found.path == "article/title[0]"

    def test_child_count_difference(self):
        other = sample()
        other.add("year", "1999")
        found = first_difference(sample(), other)
        assert found.kind == "child-count"

    def test_render_readable(self):
        other = sample()
        other.children[1].content = "X"
        text = first_difference(sample(), other).render()
        assert "author[0]" in text and "'Jack'" in text


class TestCollections:
    def test_equal_collections(self):
        a = Collection([DataTree(sample())])
        b = Collection([DataTree(sample())])
        assert diff_collections(a, b) is None
        assert_collections_equal(a, b)  # must not raise

    def test_size_mismatch(self):
        a = Collection([DataTree(sample())])
        b = Collection([DataTree(sample()), DataTree(sample())])
        assert "sizes differ" in diff_collections(a, b)

    def test_located_tree_report(self):
        a = Collection([DataTree(sample()), DataTree(sample())])
        changed = sample()
        changed.children[0].content = "T2"
        b = Collection([DataTree(sample()), DataTree(changed)])
        report = diff_collections(a, b)
        assert report.startswith("tree 1:")

    def test_assert_raises_with_location(self):
        a = Collection([DataTree(sample())])
        changed = sample()
        changed.tag = "book"
        b = Collection([DataTree(changed)])
        with pytest.raises(AssertionError, match="tag differs"):
            assert_collections_equal(a, b)


tags = st.sampled_from(["a", "b", "c"])


@st.composite
def trees(draw, depth=2):
    node = XMLNode(draw(tags), draw(st.one_of(st.none(), st.sampled_from(["x", "y"]))))
    if depth > 0:
        for child in draw(st.lists(trees(depth=depth - 1), max_size=3)):
            node.append_child(child)
    return node


@settings(max_examples=60, deadline=None)
@given(trees(), trees())
def test_diff_agrees_with_structural_equality(a, b):
    """first_difference is None exactly when trees are structurally
    equal."""
    assert (first_difference(a, b) is None) == a.structurally_equal(b)
