"""Property-based tests for the XML data model (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.xmlmodel.node import XMLNode
from repro.xmlmodel.parse import parse_document
from repro.xmlmodel.serialize import serialize

# Tag names: XML-safe identifiers.
tags = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
# Content: printable text without leading/trailing whitespace ambiguity.
contents = st.one_of(
    st.none(),
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc"), blacklist_characters="\r"),
        min_size=1,
        max_size=30,
    ).map(str.strip).filter(lambda s: s != ""),
)
attribute_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=15
)


@st.composite
def xml_trees(draw, max_depth: int = 3, max_children: int = 3) -> XMLNode:
    node = XMLNode(
        draw(tags),
        draw(contents),
        draw(
            st.dictionaries(tags, attribute_values, max_size=2).map(
                lambda d: d or None
            )
        ),
    )
    if max_depth > 0:
        for child in draw(
            st.lists(xml_trees(max_depth=max_depth - 1, max_children=max_children), max_size=max_children)
        ):
            node.append_child(child)
    return node


@settings(max_examples=60, deadline=None)
@given(xml_trees())
def test_serialize_parse_roundtrip_compact(tree):
    """parse(serialize(t)) is structurally equal to t (compact form)."""
    assert parse_document(serialize(tree, indent=None)).structurally_equal(tree)


@settings(max_examples=60, deadline=None)
@given(xml_trees())
def test_serialize_parse_roundtrip_indented(tree):
    assert parse_document(serialize(tree)).structurally_equal(tree)


@settings(max_examples=60, deadline=None)
@given(xml_trees())
def test_deep_copy_equal_but_disjoint(tree):
    copy = tree.deep_copy()
    assert copy.structurally_equal(tree)
    originals = {id(node) for node in tree.iter()}
    assert all(id(node) not in originals for node in copy.iter())


@settings(max_examples=60, deadline=None)
@given(xml_trees())
def test_preorder_postorder_same_node_set(tree):
    pre = {id(node) for node in tree.iter()}
    post = {id(node) for node in tree.iter_postorder()}
    assert pre == post
    assert len(pre) == tree.subtree_size()


@settings(max_examples=60, deadline=None)
@given(xml_trees())
def test_canonical_key_matches_structural_equality(tree):
    copy = tree.deep_copy()
    assert tree.canonical_key() == copy.canonical_key()


@settings(max_examples=40, deadline=None)
@given(xml_trees(), xml_trees())
def test_canonical_key_distinguishes(tree_a, tree_b):
    """Equal canonical keys imply structural equality (no collisions)."""
    if tree_a.canonical_key() == tree_b.canonical_key():
        assert tree_a.structurally_equal(tree_b)
