"""Unit tests for the in-memory tree node."""

import pytest

from repro.xmlmodel.node import XMLNode, element


def small_tree() -> XMLNode:
    return element(
        "article",
        None,
        element("title", "Querying XML"),
        element("author", "Jack", element("institution", "U Michigan")),
        element("author", "John"),
    )


class TestConstruction:
    def test_append_child_sets_parent(self):
        parent = XMLNode("a")
        child = parent.append_child(XMLNode("b"))
        assert child.parent is parent
        assert parent.children == [child]

    def test_add_builder_returns_child(self):
        root = XMLNode("root")
        child = root.add("item", "text", kind="x")
        assert child.tag == "item"
        assert child.content == "text"
        assert child.attributes == {"kind": "x"}

    def test_insert_child_position(self):
        root = XMLNode("root")
        first = root.add("a")
        root.insert_child(0, XMLNode("b"))
        assert [c.tag for c in root.children] == ["b", "a"]
        assert root.children[0].parent is root
        assert root.children[1] is first

    def test_remove_child(self):
        root = XMLNode("root")
        child = root.add("a")
        root.remove_child(child)
        assert root.children == []
        assert child.parent is None

    def test_remove_child_missing_raises(self):
        with pytest.raises(ValueError):
            XMLNode("root").remove_child(XMLNode("a"))

    def test_child_index(self):
        root = XMLNode("root")
        a = root.add("a")
        b = root.add("b")
        assert a.child_index() == 0
        assert b.child_index() == 1

    def test_child_index_of_root_raises(self):
        with pytest.raises(ValueError):
            XMLNode("root").child_index()

    def test_element_builder(self):
        tree = small_tree()
        assert [c.tag for c in tree.children] == ["title", "author", "author"]


class TestTraversal:
    def test_iter_is_preorder(self):
        tree = small_tree()
        tags = [node.tag for node in tree.iter()]
        assert tags == ["article", "title", "author", "institution", "author"]

    def test_postorder(self):
        tree = small_tree()
        tags = [node.tag for node in tree.iter_postorder()]
        assert tags == ["title", "institution", "author", "author", "article"]
        assert tags[-1] == "article"

    def test_descendants_excludes_self(self):
        tree = small_tree()
        assert all(node is not tree for node in tree.descendants())
        assert sum(1 for _ in tree.descendants()) == tree.subtree_size() - 1

    def test_ancestors(self):
        tree = small_tree()
        institution = tree.children[1].children[0]
        assert [node.tag for node in institution.ancestors()] == ["author", "article"]

    def test_find_first_child(self):
        tree = small_tree()
        assert tree.find("author").content == "Jack"
        assert tree.find("nope") is None

    def test_findall(self):
        tree = small_tree()
        assert [node.content for node in tree.findall("author")] == ["Jack", "John"]

    def test_find_descendants(self):
        tree = small_tree()
        assert len(tree.find_descendants("institution")) == 1
        assert len(tree.find_descendants("article")) == 1  # includes self

    def test_walk_visits_every_node(self):
        tree = small_tree()
        visited = []
        tree.walk(lambda node: visited.append(node.tag))
        assert len(visited) == tree.subtree_size()


class TestMeasures:
    def test_subtree_size(self):
        assert small_tree().subtree_size() == 5
        assert XMLNode("leaf").subtree_size() == 1

    def test_depth(self):
        tree = small_tree()
        institution = tree.children[1].children[0]
        assert tree.depth() == 0
        assert institution.depth() == 2

    def test_height(self):
        tree = small_tree()
        assert tree.height() == 2
        assert XMLNode("leaf").height() == 0

    def test_is_leaf(self):
        tree = small_tree()
        assert tree.children[0].is_leaf()
        assert not tree.is_leaf()

    def test_root(self):
        tree = small_tree()
        institution = tree.children[1].children[0]
        assert institution.root() is tree


class TestCopyAndCompare:
    def test_deep_copy_is_equal_and_disjoint(self):
        tree = small_tree()
        copy = tree.deep_copy()
        assert copy.structurally_equal(tree)
        copy.children[0].content = "changed"
        assert not copy.structurally_equal(tree)
        assert tree.children[0].content == "Querying XML"

    def test_deep_copy_preserves_nid(self):
        tree = small_tree()
        tree.nid = 42
        tree.children[0].nid = 43
        copy = tree.deep_copy()
        assert copy.nid == 42
        assert copy.children[0].nid == 43

    def test_structural_equality_ignores_nid(self):
        a = small_tree()
        b = small_tree()
        a.nid = 1
        assert a.structurally_equal(b)

    def test_structural_inequality_on_tag(self):
        a = small_tree()
        b = small_tree()
        b.tag = "book"
        assert not a.structurally_equal(b)

    def test_structural_inequality_on_child_count(self):
        a = small_tree()
        b = small_tree()
        b.add("extra")
        assert not a.structurally_equal(b)

    def test_structural_inequality_on_attributes(self):
        a = small_tree()
        b = small_tree()
        b.attributes["lang"] = "en"
        assert not a.structurally_equal(b)

    def test_canonical_key_equality(self):
        assert small_tree().canonical_key() == small_tree().canonical_key()

    def test_canonical_key_order_sensitive_children(self):
        a = element("r", None, element("x", "1"), element("y", "2"))
        b = element("r", None, element("y", "2"), element("x", "1"))
        assert a.canonical_key() != b.canonical_key()

    def test_canonical_key_hashable(self):
        {small_tree().canonical_key(): True}


class TestDisplay:
    def test_sketch_contains_values(self):
        text = small_tree().sketch()
        assert "article" in text
        assert "author: Jack" in text
        assert text.count("\n") == 4

    def test_sketch_shows_attributes(self):
        node = XMLNode("a", attributes={"k": "v"})
        assert "k='v'" in node.sketch()
