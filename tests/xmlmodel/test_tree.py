"""DataTree / Collection tests."""

from repro.xmlmodel.node import element
from repro.xmlmodel.tree import Collection, DataTree


def trees():
    return [
        DataTree(element("a", "1")),
        DataTree(element("b", "2", element("c", "3"))),
    ]


class TestDataTree:
    def test_size_and_iter(self):
        tree = trees()[1]
        assert tree.size() == 2
        assert [n.tag for n in tree.iter_nodes()] == ["b", "c"]

    def test_copy_is_independent(self):
        tree = trees()[0]
        copy = tree.copy()
        copy.root.content = "changed"
        assert tree.root.content == "1"
        assert copy.doc_id == tree.doc_id

    def test_provenance_fields(self):
        tree = DataTree(element("a", None), doc_id=3, source_root_nid=17)
        copy = tree.copy()
        assert (copy.doc_id, copy.source_root_nid) == (3, 17)

    def test_structural_equality(self):
        a, b = DataTree(element("x", "1")), DataTree(element("x", "1"))
        assert a.structurally_equal(b)


class TestCollection:
    def test_sequence_protocol(self):
        collection = Collection(trees())
        assert len(collection) == 2
        assert collection[0].root.tag == "a"
        assert [t.root.tag for t in collection] == ["a", "b"]

    def test_append_extend(self):
        collection = Collection()
        collection.append(trees()[0])
        collection.extend(trees())
        assert len(collection) == 3

    def test_from_roots(self):
        collection = Collection.from_roots([element("x", None), element("y", None)])
        assert [t.root.tag for t in collection] == ["x", "y"]

    def test_total_nodes(self):
        assert Collection(trees()).total_nodes() == 3

    def test_map_preserves_order(self):
        collection = Collection(trees())
        mapped = collection.map_trees(lambda t: t.copy())
        assert mapped.structurally_equal(collection)

    def test_filter(self):
        collection = Collection(trees())
        filtered = collection.filter_trees(lambda t: t.size() > 1)
        assert len(filtered) == 1
        assert filtered[0].root.tag == "b"

    def test_copy_deep(self):
        collection = Collection(trees())
        copy = collection.copy()
        copy[0].root.content = "changed"
        assert collection[0].root.content == "1"

    def test_structural_equality_order_sensitive(self):
        a = Collection(trees())
        b = Collection(list(reversed(trees())))
        assert not a.structurally_equal(b)

    def test_structural_equality_length(self):
        assert not Collection(trees()).structurally_equal(Collection(trees()[:1]))

    def test_sketch_lists_every_tree(self):
        text = Collection(trees()).sketch()
        assert "--- tree 0 ---" in text
        assert "--- tree 1 ---" in text
