"""Every example script must run clean (smoke tests, subprocess-based)."""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(REPO_ROOT, "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "tax_algebra_tour.py",
    "institution_grouping.py",
    "nested_grouping.py",
    "persistent_store.py",
    "optimizer_tour.py",
]


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=300,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs_clean(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example prints something


@pytest.mark.slow
def test_author_grouping_example():
    """The evaluation example at a reduced scale."""
    result = run_example("author_grouping.py", "0.25")
    assert result.returncode == 0, result.stderr[-2000:]
    assert "E1 titles-by-author" in result.stdout
    assert "paper (E2)" in result.stdout


def test_quickstart_output_shape():
    result = run_example("quickstart.py")
    assert "authorpubs" in result.stdout
    assert "GROUPBY" in result.stdout
    assert "identical results" in result.stdout
