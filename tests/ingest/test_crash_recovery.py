"""Crash-point enumeration for the journaled ingest-batch protocol.

Every batch commit walks the same journal discipline as a bulk load:
journal written -> pages synced -> meta committed -> journal cleared.
For each named crash point, and for crashes landing on the first,
middle, and later batches, killing the store there and reopening must
observe a clean state — checksums verify, the document sits at a batch
boundary (complete batches only, rolled back or rolled forward), the
partial document materializes well-formed, and a fresh index build
over the recovered store is consistent.

Seeds come from ``SEEDS``; CI adds extra ones via ``REPRO_FAULT_SEED``.
"""

from __future__ import annotations

import os

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.indexing.manager import IndexManager
from repro.ingest import IngestSession, chunks_of
from repro.storage.faults import FaultPlan, SimulatedCrash
from repro.storage.journal import INGEST_CRASH_POINTS, JOURNAL_FILE
from repro.storage.page import PAGE_SIZE
from repro.storage.store import DATA_FILE, NodeStore
from repro.xmlmodel.serialize import serialize

SEEDS = [0]
_env_seed = os.environ.get("REPRO_FAULT_SEED")
if _env_seed is not None:
    SEEDS.append(int(_env_seed))

CORPUS = generate_dblp(DBLPConfig(n_articles=30, n_authors=12, seed=5))
TEXT = serialize(CORPUS, indent=None)
BATCH = 60

#: Crash points where the batch's meta.save() hit disk — recovery must
#: roll the batch *forward*; everywhere else it must roll it back.
_COMMITTED = ("ingest.meta_committed", "ingest.journal_cleared")


def _stream_until_crash(store) -> tuple[int, int]:
    """Feed the corpus; return (batches committed, nodes committed)
    as of the last *completed* commit before the crash."""
    session = IngestSession(store, "bib.xml", batch_size=BATCH)
    with pytest.raises(SimulatedCrash):
        for chunk in chunks_of(TEXT, 512):
            session.feed(chunk)
        session.finish()
    return session.batches_committed, session.nodes_streamed


def _assert_recovered(directory, point, batches_done, nodes_done):
    with NodeStore(directory) as store:
        report = store.verify()
        assert report.ok, report.render()
        rolled_forward = point in _COMMITTED
        if batches_done == 0 and not rolled_forward:
            # The very first batch died pre-commit: no document at all.
            assert "bib.xml" not in {i.name for i in store.documents()}
            return
        info = store.document("bib.xml")
        # At a batch boundary: every committed batch, nothing torn.
        if rolled_forward:
            assert info.n_nodes > nodes_done
        else:
            assert info.n_nodes == nodes_done
        tree = store.materialize(info.root_nid)
        assert tree.tag == CORPUS.tag
        # The recovered prefix is a prefix of the source document.
        for got, want in zip(tree.children, CORPUS.children):
            assert got.structurally_equal(want)
        # Indexes rebuild cleanly over the recovered store.
        manager = IndexManager(store)
        manager.build()
        manager.check_invariants()
        assert not os.path.exists(os.path.join(directory, JOURNAL_FILE))
        assert (
            os.path.getsize(os.path.join(directory, DATA_FILE)) % PAGE_SIZE
            == 0
        )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("point", INGEST_CRASH_POINTS)
def test_crash_on_first_batch(tmp_path, point, seed):
    directory = os.path.join(tmp_path, "db")
    store = NodeStore(
        directory, fault_plan=FaultPlan(seed=seed, crash_at=point)
    )
    batches, nodes = _stream_until_crash(store)
    assert batches == 0
    _assert_recovered(directory, point, batches, nodes)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("point", INGEST_CRASH_POINTS)
@pytest.mark.parametrize("crash_batch", [2, 4])
def test_crash_on_later_batch(tmp_path, point, seed, crash_batch):
    """Arm the crash just before batch ``crash_batch`` commits, so the
    recovery path runs against a store that already holds committed
    ingest batches (in-place root rewrites included)."""
    directory = os.path.join(tmp_path, "db")
    store = NodeStore(directory)
    session = IngestSession(store, "bib.xml", batch_size=BATCH)

    def arm(event):
        if event.batch == crash_batch - 1:
            store.fault_plan = FaultPlan(seed=seed, crash_at=point)

    session.on_batch = arm  # crash arms between commits
    with pytest.raises(SimulatedCrash):
        for chunk in chunks_of(TEXT, 512):
            session.feed(chunk)
        session.finish()
    batches, nodes = session.batches_committed, session.nodes_streamed
    assert batches == crash_batch - 1
    _assert_recovered(directory, point, batches, nodes)


@pytest.mark.parametrize("seed", SEEDS)
def test_resume_after_rollback(tmp_path, seed):
    """After a rolled-back batch the document is loadable again under
    a fresh name and the old one still materializes its prefix."""
    directory = os.path.join(tmp_path, "db")
    store = NodeStore(
        directory,
        fault_plan=FaultPlan(seed=seed, crash_at="ingest.pages_synced"),
    )
    store.load_tree(generate_dblp(DBLPConfig(5, 4, seed=1)), "a.xml")
    # The bulk-load path shares crash points only under load.*; the
    # ingest plan fires on the first ingest batch.
    _stream_until_crash(store)
    with NodeStore(directory) as reopened:
        assert reopened.verify().ok
        session = IngestSession(reopened, "retry.xml", batch_size=BATCH)
        for chunk in chunks_of(TEXT, 512):
            session.feed(chunk)
        info = session.finish()
        assert info.n_nodes == CORPUS.subtree_size()
        assert reopened.materialize(info.root_nid).structurally_equal(CORPUS)
        assert reopened.verify().ok
