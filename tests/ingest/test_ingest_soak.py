"""Ingest soak: a streaming load runs to completion while reader
threads continuously execute the paper's E1/E2 queries against an
already-loaded document, and every concurrent answer must be identical
to the quiescent answer.  A second leg crashes the store mid-ingest at
a seed-chosen crash point, recovers, and re-ingests.

``REPRO_FAULT_SEED`` (the CI soak matrix knob) varies the corpus, the
batch size, and the crash placement.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1, QUERY_2
from repro.indexing.manager import IndexManager
from repro.ingest import IngestSession, chunks_of
from repro.query.database import Database
from repro.service import QueryService, ServiceConfig
from repro.storage.faults import FaultPlan, SimulatedCrash
from repro.storage.journal import INGEST_CRASH_POINTS
from repro.storage.store import NodeStore
from repro.xmlmodel.diff import assert_collections_equal, diff_collections
from repro.xmlmodel.serialize import serialize

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

BASE = generate_dblp(DBLPConfig(n_articles=30, n_authors=12, seed=5))
INCOMING = generate_dblp(
    DBLPConfig(n_articles=80, n_authors=30, seed=13 + SEED)
)
INCOMING_TEXT = serialize(INCOMING, indent="  ")
BATCH = 96 + 17 * (SEED % 5)
INCOMING_QUERY = (
    'FOR $a IN document("incoming.xml")//article, $y IN $a/year '
    'WHERE $y = "2000" RETURN $a'
)
READERS = 4


def test_readers_see_stable_answers_during_ingest():
    db = Database()
    db.load(tree=BASE, name="bib.xml")
    service = QueryService(db, ServiceConfig(workers=READERS))
    try:
        quiescent = {
            query: service.query(query).collection
            for query in (QUERY_1, QUERY_2)
        }
        stop = threading.Event()
        failures: list[str] = []
        reads = [0] * READERS

        def reader(worker: int) -> None:
            queries = (QUERY_1, QUERY_2)
            while not stop.is_set():
                query = queries[reads[worker] % 2]
                got = service.query(query).collection
                report = diff_collections(quiescent[query], got)
                if report is not None:
                    failures.append(str(report))
                    return
                reads[worker] += 1

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in range(READERS)
        ]
        for thread in threads:
            thread.start()
        try:
            report = service.load_stream(
                INCOMING_TEXT, "incoming.xml", batch_size=BATCH
            )
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
        assert not failures, failures[0]
        assert report.batches > 3
        assert sum(reads) > READERS  # readers really ran mid-ingest
        # The streamed document answers identically to a whole load.
        reference = Database()
        reference.load(tree=INCOMING, name="incoming.xml")
        assert_collections_equal(
            reference.query(INCOMING_QUERY).collection,
            db.query(INCOMING_QUERY).collection,
        )
        assert db.verify().ok
    finally:
        service.close()
        db.close()


def test_crash_recover_reingest_cycle(tmp_path):
    point = INGEST_CRASH_POINTS[SEED % len(INGEST_CRASH_POINTS)]
    crash_batch = 2 + SEED % 3
    directory = os.path.join(tmp_path, "db")
    store = NodeStore(directory)
    session = IngestSession(store, "incoming.xml", batch_size=BATCH)

    def arm(event):
        if event.batch == crash_batch - 1:
            store.fault_plan = FaultPlan(seed=SEED, crash_at=point)

    session.on_batch = arm
    with pytest.raises(SimulatedCrash):
        for chunk in chunks_of(INCOMING_TEXT, 2048):
            session.feed(chunk)
        session.finish()

    with NodeStore(directory) as recovered:
        assert recovered.verify().ok
        retry = IngestSession(recovered, "retry.xml", batch_size=BATCH)
        for chunk in chunks_of(INCOMING_TEXT, 2048):
            retry.feed(chunk)
        info = retry.finish()
        assert info.n_nodes == INCOMING.subtree_size()
        assert recovered.materialize(info.root_nid).structurally_equal(
            INCOMING
        )
        manager = IndexManager(recovered)
        manager.build()
        manager.check_invariants()
        assert recovered.verify().ok
