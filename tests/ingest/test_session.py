"""IngestSession: batch cutting at root-child boundaries, per-batch
progress and generation bumps, abort-keeps-committed-batches, and —
the load-bearing claim — incremental index maintenance producing
exactly the structures a from-scratch rebuild over the same store
produces."""

from __future__ import annotations

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.errors import XMLParseError
from repro.indexing.manager import IndexManager
from repro.ingest import DEFAULT_BATCH_NODES, IngestSession, chunks_of
from repro.storage.store import NodeStore
from repro.xmlmodel.serialize import serialize

CORPUS = generate_dblp(DBLPConfig(n_articles=50, n_authors=20, seed=11))
TEXT = serialize(CORPUS, indent="  ")


def _ingest(store, *, batch_size, indexes=None, chunk_chars=2048):
    session = IngestSession(
        store, "bib.xml", batch_size=batch_size, indexes=indexes
    )
    for chunk in chunks_of(TEXT, chunk_chars):
        session.feed(chunk)
    info = session.finish()
    return session, info


def test_batches_cover_the_document():
    store = NodeStore()
    session, info = _ingest(store, batch_size=80)
    assert session.batches_committed > 2
    assert info.n_nodes == CORPUS.subtree_size()
    assert session.nodes_streamed == info.n_nodes
    events = session.progress
    assert len(events) == session.batches_committed
    assert sum(e.nodes_in_batch for e in events) == info.n_nodes
    assert events[-1].nodes_total == info.n_nodes
    # One generation bump per batch: batch-granular cache invalidation.
    generations = [e.generation for e in events]
    assert generations == sorted(generations)
    assert len(set(generations)) == len(generations)


def test_materialized_tree_equals_source():
    store = NodeStore()
    _, info = _ingest(store, batch_size=64)
    assert store.materialize(info.root_nid).structurally_equal(CORPUS)
    assert store.verify().ok


def test_default_batch_size_is_bounded():
    store = NodeStore()
    session = IngestSession(store, "bib.xml")  # batch_size=None
    for chunk in chunks_of(TEXT, 4096):
        session.feed(chunk)
    info = session.finish()
    assert info.n_nodes == CORPUS.subtree_size()
    # The default still batches (bounded memory), it just cuts less often.
    assert all(
        e.nodes_in_batch <= DEFAULT_BATCH_NODES + CORPUS.subtree_size() // 2
        for e in session.progress
    )


def test_abort_keeps_committed_batches():
    store = NodeStore()
    session = IngestSession(store, "bib.xml", batch_size=60)
    half = TEXT[: len(TEXT) // 2]
    for chunk in chunks_of(half, 1024):
        session.feed(chunk)
    committed = session.batches_committed
    streamed = session.nodes_streamed
    assert committed >= 1
    session.abort()
    assert not session.active
    session.abort()  # idempotent
    info = store.document("bib.xml")
    assert info.n_nodes == streamed
    assert store.verify().ok
    # The partial document is readable and well-formed.
    assert store.materialize(info.root_nid).tag == CORPUS.tag


def test_empty_document_commits_one_empty_batch():
    store = NodeStore()
    session = IngestSession(store, "empty.xml", batch_size=10)
    session.feed("<root/>")
    info = session.finish()
    assert info.n_nodes == 1
    assert session.batches_committed == 1
    assert store.materialize(info.root_nid).tag == "root"


def test_malformed_stream_propagates_parse_error():
    store = NodeStore()
    session = IngestSession(store, "bad.xml", batch_size=10)
    with pytest.raises(XMLParseError):
        session.feed("<r><a></mismatched>")
    session.abort()


def test_ingest_counters():
    store = NodeStore()
    session, info = _ingest(store, batch_size=80)
    stats = store.stats()
    assert stats["ingest_batches_committed"] == session.batches_committed
    assert stats["ingest_nodes_streamed"] == info.n_nodes
    assert stats["ingests_started"] == 1
    assert stats["ingests_finished"] == 1
    assert stats["ingests_aborted"] == 0


# ----------------------------------------------------------------------
# Incremental index maintenance == rebuild
# ----------------------------------------------------------------------
def _assert_indexes_equal(maintained: IndexManager, store: NodeStore):
    """Compare the incrementally-maintained manager against a fresh
    rebuild over the *same* store (the only valid oracle: batch-wise
    labelling retires one root label per batch, so labels differ from
    a whole-document load of the same text)."""
    oracle = IndexManager(store)
    oracle.build()
    maintained.check_invariants()
    tags = sorted(store.meta.symbols.names())
    assert tags
    for tag in tags:
        assert maintained.labels_for_tag(tag) == oracle.labels_for_tag(tag)
        assert maintained.tag_cardinality(tag) == oracle.tag_cardinality(tag)
        assert maintained.distinct_values(tag) == oracle.distinct_values(tag)
    ours = maintained.ensure_statistics()
    theirs = oracle.ensure_statistics()
    assert ours.rows() == theirs.rows()
    our_table = maintained.ensure_columnar()
    their_table = oracle.ensure_columnar()
    assert our_table.n_rows == their_table.n_rows
    assert our_table.generation == their_table.generation
    assert [
        our_table.label_of_row(row) for row in range(our_table.n_rows)
    ] == [their_table.label_of_row(row) for row in range(their_table.n_rows)]


@pytest.mark.parametrize("batch_size", [50, 120, 400])
def test_incremental_maintenance_equals_rebuild(batch_size):
    store = NodeStore()
    manager = IndexManager(store)
    manager.build()
    session = IngestSession(
        store, "bib.xml", batch_size=batch_size, indexes=manager
    )
    for chunk in chunks_of(TEXT, 2048):
        session.feed(chunk)
    session.finish()
    assert session.batches_committed >= 1
    _assert_indexes_equal(manager, store)
    counters = manager.work_counters()
    assert counters["index_incremental_updates"] > 0
    assert counters["index_rebuild_avoided"] > 0


def test_incremental_maintenance_across_documents():
    """A second streamed document extends the already-maintained
    indexes, not just the first."""
    store = NodeStore()
    manager = IndexManager(store)
    manager.build()
    for name in ("one.xml", "two.xml"):
        session = IngestSession(store, name, batch_size=90, indexes=manager)
        for chunk in chunks_of(TEXT, 2048):
            session.feed(chunk)
        session.finish()
    _assert_indexes_equal(manager, store)
