"""StreamParser: incremental parsing equals whole-document parsing no
matter where the chunk boundaries fall — mid-tag, mid-attribute,
mid-entity, one character at a time — plus chunk-source normalization
(``chunks_of``/``stream_file``) and typed failure on malformed input."""

from __future__ import annotations

import io
import os

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import figure6_database
from repro.errors import DatabaseError, XMLParseError
from repro.ingest import StreamParser, chunks_of, stream_file
from repro.xmlmodel.parse import parse_document
from repro.xmlmodel.serialize import serialize


def _reassemble(text: str, chunk_size: int):
    """Feed ``text`` in ``chunk_size`` pieces; return the full tree."""
    parser = StreamParser()
    children = []
    for start in range(0, len(text), chunk_size):
        children.extend(parser.feed(text[start : start + chunk_size]))
    parser.close()
    root = parser.root
    assert root is not None
    for child in children:
        root.append_child(child)
    return root


SMALL = serialize(figure6_database(), indent="  ")


@pytest.mark.parametrize("chunk_size", [1, 3, 17, 64, 100_000])
def test_chunk_boundaries_anywhere(chunk_size):
    want = parse_document(SMALL)
    got = _reassemble(SMALL, chunk_size)
    assert got.structurally_equal(want)


def test_generated_corpus_roundtrip():
    text = serialize(
        generate_dblp(DBLPConfig(n_articles=40, n_authors=12, seed=3)),
        indent=None,
    )
    want = parse_document(text)
    for chunk_size in (7, 256, 4096):
        assert _reassemble(text, chunk_size).structurally_equal(want)


def test_children_stream_out_incrementally():
    """Root children are handed back as soon as they complete, without
    waiting for the end of the document."""
    text = "<r><a>1</a><b>2</b><c>3</c></r>"
    parser = StreamParser()
    seen = []
    for ch in text:
        seen.extend(child.tag for child in parser.feed(ch))
        if ch == ">" and seen:
            break
    # The first child was emitted before the document ended.
    assert seen and seen[0] == "a"
    assert not parser.at_end


def test_root_shell_attributes():
    parser = StreamParser()
    children = parser.feed('<bib year="2002" kind="x"><a/></bib>')
    parser.close()
    assert parser.root.tag == "bib"
    assert parser.root.attributes == {"year": "2002", "kind": "x"}
    assert [c.tag for c in children] == ["a"]


def test_truncated_document_raises_on_close():
    parser = StreamParser()
    parser.feed("<r><a>unclosed")
    with pytest.raises(XMLParseError):
        parser.close()


def test_feed_after_close_raises():
    parser = StreamParser()
    parser.feed("<r/>")
    parser.close()
    with pytest.raises(XMLParseError):
        parser.feed("<more/>")


def test_malformed_markup_raises():
    parser = StreamParser()
    with pytest.raises(XMLParseError):
        parser.feed("<r><a></b></r>")


# ----------------------------------------------------------------------
# Chunk sources
# ----------------------------------------------------------------------
def test_chunks_of_string():
    pieces = list(chunks_of("abcdef", 4))
    assert pieces == ["abcd", "ef"]


def test_chunks_of_file_like():
    pieces = list(chunks_of(io.StringIO("abcdef"), 4))
    assert pieces == ["abcd", "ef"]


def test_chunks_of_iterable_passthrough():
    assert list(chunks_of(iter(["ab", "cd"]))) == ["ab", "cd"]


def test_chunks_of_rejects_unusable_source():
    with pytest.raises(DatabaseError):
        list(chunks_of(42))


def test_stream_file(tmp_path):
    path = os.path.join(tmp_path, "doc.xml")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(SMALL)
    text = "".join(stream_file(path, chunk_chars=11))
    assert text == SMALL
