"""B+tree unit and property tests (model-checked against a dict)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexError_
from repro.indexing.btree import BPlusTree


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.search("missing") == []
        assert "missing" not in tree

    def test_insert_and_search(self):
        tree = BPlusTree()
        tree.insert("b", 2)
        tree.insert("a", 1)
        assert tree.search("a") == [1]
        assert tree.search("b") == [2]
        assert "a" in tree

    def test_posting_list_accumulates(self):
        tree = BPlusTree()
        tree.insert("k", 1)
        tree.insert("k", 2)
        tree.insert("k", 3)
        assert tree.search("k") == [1, 2, 3]
        assert len(tree) == 1
        assert tree.n_entries == 3

    def test_search_returns_copy(self):
        tree = BPlusTree()
        tree.insert("k", 1)
        tree.search("k").append(99)
        assert tree.search("k") == [1]

    def test_order_validation(self):
        with pytest.raises(IndexError_):
            BPlusTree(order=2)


class TestSplitsAndScale:
    def test_many_keys_split_leaves(self):
        tree = BPlusTree(order=4)
        for i in range(500):
            tree.insert(i, i * 10)
        assert len(tree) == 500
        assert tree.height > 2
        for i in (0, 123, 499):
            assert tree.search(i) == [i * 10]
        tree.check_invariants()

    def test_reverse_insertion_order(self):
        tree = BPlusTree(order=4)
        for i in reversed(range(200)):
            tree.insert(i, i)
        assert list(tree.keys()) == list(range(200))
        tree.check_invariants()

    def test_interleaved_insertion(self):
        tree = BPlusTree(order=6)
        keys = [(i * 37) % 101 for i in range(101)]
        for key in keys:
            tree.insert(key, key)
        assert list(tree.keys()) == sorted(set(keys))
        tree.check_invariants()


class TestRangeScan:
    def make(self):
        tree = BPlusTree(order=4)
        for i in range(0, 100, 2):  # even keys only
            tree.insert(i, f"v{i}")
        return tree

    def test_full_scan_ordered(self):
        tree = self.make()
        keys = [key for key, _ in tree.range_scan()]
        assert keys == list(range(0, 100, 2))

    def test_bounded_scan(self):
        tree = self.make()
        keys = [key for key, _ in tree.range_scan(lo=10, hi=20)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_scan_bounds_between_keys(self):
        tree = self.make()
        keys = [key for key, _ in tree.range_scan(lo=11, hi=19)]
        assert keys == [12, 14, 16, 18]

    def test_open_ended_scan(self):
        tree = self.make()
        keys = [key for key, _ in tree.range_scan(lo=90)]
        assert keys == [90, 92, 94, 96, 98]

    def test_empty_range(self):
        tree = self.make()
        assert list(tree.range_scan(lo=200)) == []

    def test_items_alias(self):
        tree = self.make()
        assert list(tree.items()) == list(tree.range_scan())


class TestRemove:
    def test_remove_single_posting(self):
        tree = BPlusTree()
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree.remove("k", 1)
        assert tree.search("k") == [2]
        assert tree.n_entries == 1

    def test_remove_last_posting_drops_key(self):
        tree = BPlusTree()
        tree.insert("k", 1)
        assert tree.remove("k", 1)
        assert "k" not in tree
        assert len(tree) == 0

    def test_remove_missing(self):
        tree = BPlusTree()
        tree.insert("k", 1)
        assert not tree.remove("k", 99)
        assert not tree.remove("other", 1)

    def test_scans_stay_correct_after_removals(self):
        tree = BPlusTree(order=4)
        for i in range(100):
            tree.insert(i, i)
        for i in range(0, 100, 3):
            assert tree.remove(i, i)
        expected = [i for i in range(100) if i % 3 != 0]
        assert list(tree.keys()) == expected
        tree.check_invariants()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(-50, 50), st.integers(0, 5)), min_size=0, max_size=200
    )
)
def test_model_equivalence(pairs):
    """The tree behaves exactly like a dict-of-lists model."""
    tree = BPlusTree(order=4)
    model: dict[int, list[int]] = {}
    for key, value in pairs:
        tree.insert(key, value)
        model.setdefault(key, []).append(value)
    assert len(tree) == len(model)
    for key, values in model.items():
        assert tree.search(key) == values
    assert list(tree.keys()) == sorted(model)
    tree.check_invariants()


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 100), min_size=1, max_size=150),
    st.integers(-10, 110),
    st.integers(-10, 110),
)
def test_range_scan_model(keys, lo, hi):
    if lo > hi:
        lo, hi = hi, lo
    tree = BPlusTree(order=4)
    for key in keys:
        tree.insert(key, key)
    got = [key for key, _ in tree.range_scan(lo=lo, hi=hi)]
    expected = sorted({k for k in keys if lo <= k <= hi})
    assert got == expected
