"""Columnar node table: invariants, join equivalence, snapshot
lifecycle, persistence, and columnar-vs-fallback structural identity."""

from __future__ import annotations

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1, QUERY_COUNT, figure6_database
from repro.indexing.columnar import columnar_statistics
from repro.indexing.manager import IndexManager
from repro.pattern.matcher import StoreMatcher
from repro.pattern.pattern import Axis, PatternNode, PatternTree
from repro.pattern.structural_join import staircase_join_rows, structural_join
from repro.pattern.predicates import ContentEquals, conjoin, tag
from repro.query.database import Database
from repro.storage.store import NodeStore
from repro.xmlmodel.diff import diff_collections
from repro.xmlmodel.node import element

INSTITUTION_QUERY = """
FOR $i IN distinct-values(document("bib.xml")//institution)
RETURN
<instpubs>
{$i}
{
FOR $b IN document("bib.xml")//article
WHERE $i = $b/author/institution
RETURN $b/title
}
</instpubs>
"""

SORTED_QUERY = """
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
{$a}
{
FOR $b IN document("bib.xml")//article
WHERE $a = $b/author
RETURN $b/title SORTBY(. DESCENDING)
}
</authorpubs>
"""


def nested_sections():
    """Same-tag nesting: sec inside sec (exercises the merge path)."""
    return element(
        "doc_root",
        None,
        element(
            "sec",
            None,
            element("p", "a"),
            element(
                "sec",
                None,
                element("p", "b"),
                element("sec", None, element("p", "c")),
            ),
            element("p", "d"),
        ),
        element("sec", None, element("p", "e")),
    )


def build_for(tree):
    store = NodeStore()
    store.load_tree(tree, "t.xml")
    indexes = IndexManager(store)
    indexes.build()
    return store, indexes, indexes.ensure_columnar()


class TestTableInvariants:
    def test_row_order_is_start_and_nid_order(self):
        _, _, table = build_for(figure6_database())
        assert list(table.starts) == sorted(table.starts)
        assert list(table.nids) == sorted(table.nids)
        assert table.n_rows == len(table.starts) == len(table.ends)

    def test_tag_directory_covers_every_row(self):
        store, _, table = build_for(figure6_database())
        covered = 0
        for sym, (lo, hi) in table.tag_dir.items():
            covered += hi - lo
            for p in range(lo, hi):
                row = table.tag_rows[p]
                assert table.tags[row] == sym
                assert table.tag_starts[p] == table.starts[row]
        assert covered == table.n_rows

    def test_label_of_row_round_trips(self):
        store, _, table = build_for(figure6_database())
        for row in range(table.n_rows):
            label = table.label_of_row(row)
            assert table.row_of_label(label) == row
            assert store.label(label.nid) == (label.start, label.end, label.level)

    def test_rows_for_labels_rejects_foreign_labels(self):
        from repro.indexing.labels import NodeLabel

        _, _, table = build_for(figure6_database())
        good = table.label_of_row(0)
        assert table.rows_for_labels([good]) == [0]
        assert table.rows_for_labels([NodeLabel(9999, 9999, 10000, 1)]) is None


class TestStaircaseJoin:
    def grouped_reference(self, ancestors, descendants, axis, table):
        pairs = structural_join(ancestors, descendants, axis)
        grouped = {}
        for a, d in pairs:
            grouped.setdefault(table.row_of_label(a), []).append(table.row_of_label(d))
        return grouped

    @pytest.mark.parametrize("axis", [Axis.AD, Axis.PC])
    def test_matches_object_join_on_flat_streams(self, axis):
        _, indexes, table = build_for(figure6_database())
        sym = lambda name: indexes.store.meta.symbols.lookup(name)
        articles = table.stream_for_tag(sym("article"))
        authors = table.stream_for_tag(sym("author"))
        got = staircase_join_rows(articles, authors, axis)
        want = self.grouped_reference(
            [table.label_of_row(r) for r in articles.row_list()],
            [table.label_of_row(r) for r in authors.row_list()],
            axis,
            table,
        )
        assert got == want
        assert columnar_statistics().window_scans > 0

    @pytest.mark.parametrize("axis", [Axis.AD, Axis.PC])
    def test_nested_ancestors_use_merge_and_agree(self, axis):
        _, indexes, table = build_for(nested_sections())
        stats = columnar_statistics()
        merges_before = stats.merge_joins
        sym = lambda name: indexes.store.meta.symbols.lookup(name)
        secs = table.stream_for_tag(sym("sec"))
        ps = table.stream_for_tag(sym("p"))
        got = staircase_join_rows(secs, ps, axis)
        assert stats.merge_joins == merges_before + 1
        want = self.grouped_reference(
            [table.label_of_row(r) for r in secs.row_list()],
            [table.label_of_row(r) for r in ps.row_list()],
            axis,
            table,
        )
        assert got == want

    def test_self_join_never_pairs_a_node_with_itself(self):
        _, indexes, table = build_for(nested_sections())
        sym = indexes.store.meta.symbols.lookup("sec")
        secs = table.stream_for_tag(sym)
        grouped = staircase_join_rows(secs, secs, Axis.AD)
        for a_row, d_rows in grouped.items():
            assert a_row not in d_rows


class TestMatcherEquivalence:
    def binding_nids(self, matches):
        return [
            {label: node.nid for label, node in match.bindings.items()}
            for match in matches
        ]

    def patterns(self):
        pc = PatternNode("$1", tag("article"))
        pc.add("$2", tag("author"), Axis.PC)
        ad = PatternNode("$1", tag("sec"))
        ad.add("$2", tag("p"), Axis.AD)
        wild = PatternNode("$1", tag("article"))
        wild.add("$2", None, Axis.PC)
        value = PatternNode("$1", tag("article"))
        value.add("$2", conjoin(tag("author"), ContentEquals("Jack")), Axis.PC)
        chain = PatternNode("$1", tag("doc_root"))
        a = chain.add("$2", tag("article"), Axis.AD)
        a.add("$3", tag("title"), Axis.PC)
        return [PatternTree(p) for p in (pc, wild, value, chain)], PatternTree(ad)

    def test_columnar_and_object_walk_agree(self):
        store, indexes, table = build_for(figure6_database())
        columnar = StoreMatcher(store, indexes, columnar=table)
        plain = StoreMatcher(store, indexes)
        flat_patterns, _ = self.patterns()
        for pattern in flat_patterns:
            got = self.binding_nids(columnar.match(pattern))
            want = self.binding_nids(plain.match(pattern))
            assert got == want

    def test_columnar_and_object_walk_agree_on_nesting(self):
        store, indexes, table = build_for(nested_sections())
        columnar = StoreMatcher(store, indexes, columnar=table)
        plain = StoreMatcher(store, indexes)
        _, ad_pattern = self.patterns()
        assert self.binding_nids(columnar.match(ad_pattern)) == self.binding_nids(
            plain.match(ad_pattern)
        )

    def test_doc_bounds_scope_matches(self):
        store = NodeStore()
        store.load_tree(figure6_database(), "a.xml")
        store.load_tree(figure6_database(), "b.xml")
        indexes = IndexManager(store)
        indexes.build()
        table = indexes.ensure_columnar()
        pattern, _ = self.patterns()
        info = store.document("b.xml")
        bounds = store.label(info.root_nid)[:2]
        columnar = StoreMatcher(store, indexes, columnar=table)
        plain = StoreMatcher(store, indexes)
        got = self.binding_nids(columnar.match(pattern[0], doc_bounds=bounds))
        want = self.binding_nids(plain.match(pattern[0], doc_bounds=bounds))
        assert got == want and got  # scoped and non-empty

    @pytest.mark.parametrize("tree_builder", [figure6_database, nested_sections])
    def test_pure_python_path_agrees(self, tree_builder, monkeypatch):
        """Forcing numpy away exercises the pure staircase merge; it
        must agree with the vectorized kernels and the object walk."""
        store, indexes, table = build_for(tree_builder())
        flat_patterns, ad_pattern = self.patterns()
        all_patterns = flat_patterns + [ad_pattern]
        columnar = StoreMatcher(store, indexes, columnar=table)
        plain = StoreMatcher(store, indexes)
        vectorized = [columnar.match(p) for p in all_patterns]

        import repro.pattern.matcher as matcher_module

        monkeypatch.setattr(matcher_module, "_np", None)
        for pattern, fast in zip(all_patterns, vectorized):
            pure = self.binding_nids(columnar.match(pattern))
            assert pure == self.binding_nids(fast)
            assert pure == self.binding_nids(plain.match(pattern))

    def test_match_counts_scans_and_fallbacks(self):
        store, indexes, table = build_for(figure6_database())
        stats = columnar_statistics()
        pattern, _ = self.patterns()
        columnar = StoreMatcher(store, indexes, columnar=table)
        before = (stats.scans, stats.fallbacks)
        columnar.match(pattern[0])
        assert stats.scans == before[0] + 1 and stats.fallbacks == before[1]
        plain = StoreMatcher(store, indexes, columnar=None)
        plain.match(pattern[0])
        assert stats.scans == before[0] + 1  # object walk never counts a scan


class TestSnapshotLifecycle:
    def test_lazy_build_on_first_query(self, fig6_tree):
        db = Database(columnar=True)  # pinned: env may force columnar off
        report = db.load(tree=fig6_tree, name="bib.xml")
        assert report.columnar == "pending"
        assert db.indexes.columnar_status()["state"] == "pending"
        builds = columnar_statistics().builds
        db.query(QUERY_1)
        assert columnar_statistics().builds == builds + 1
        assert db.indexes.columnar_status()["state"] == "ready"

    def test_reused_while_generation_stable(self, fig6_tree):
        db = Database(columnar=True)
        db.load(tree=fig6_tree, name="bib.xml")
        db.query(QUERY_1)
        builds = columnar_statistics().builds
        db.query(QUERY_1)
        db.query(QUERY_COUNT)
        assert columnar_statistics().builds == builds

    @pytest.mark.parametrize("mutation", ["load", "drop", "compact", "repair"])
    def test_invalidated_by_mutation(self, fig6_tree, mutation):
        db = Database(columnar=True)
        db.load(tree=fig6_tree, name="bib.xml")
        db.query(QUERY_1)
        generation = db.indexes.columnar_status()["generation"]
        if mutation == "load":
            db.load(tree=figure6_database(), name="more.xml")
        elif mutation == "drop":
            db.load(tree=figure6_database(), name="more.xml")
            db.drop_document("more.xml")
        elif mutation == "compact":
            db.compact()
        else:
            db.repair()
        status = db.indexes.columnar_status()
        assert status["state"] == "pending"
        if mutation != "repair":  # clean-store repair rebuilds in place
            assert db.data_generation > generation
        builds = columnar_statistics().builds
        result = db.query(QUERY_1)
        assert columnar_statistics().builds == builds + 1
        assert len(result.collection) == 3

    def test_compact_swaps_store_and_table_follows(self, fig6_tree):
        db = Database(columnar=True)
        db.load(tree=fig6_tree, name="bib.xml")
        db.load(tree=figure6_database(), name="gone.xml")
        db.query(QUERY_1)
        db.drop_document("gone.xml")
        db.compact()
        db.query(QUERY_1)
        table = db.indexes.columnar_if_fresh()
        assert table is not None
        assert table.generation == db.store.generation
        assert table.n_rows == db.store.n_nodes()

    def test_disabled_states(self, fig6_tree):
        no_indexes = Database(use_indexes=False)
        assert no_indexes.load(tree=fig6_tree, name="bib.xml").columnar == "disabled"
        no_columnar = Database(columnar=False)
        assert no_columnar.load(tree=fig6_tree, name="bib.xml").columnar == "disabled"
        builds = columnar_statistics().builds
        no_columnar.query(QUERY_1)
        assert columnar_statistics().builds == builds

    def test_env_flag_disables_columnar(self, fig6_tree, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR", "off")
        db = Database()
        assert db.columnar_enabled is False
        monkeypatch.setenv("REPRO_COLUMNAR", "auto")
        assert Database().columnar_enabled is True


class TestPersistence:
    def test_reopen_skips_rebuild(self, fig6_tree, tmp_path):
        directory = str(tmp_path / "db")
        with Database(directory, columnar=True) as db:
            db.load(tree=fig6_tree, name="bib.xml")
            db.query(QUERY_1)  # builds and opportunistically persists

        builds = columnar_statistics().builds
        with Database(directory, columnar=True) as reopened:
            assert reopened.indexes.columnar_status()["state"] == "ready"
            result = reopened.query(QUERY_1)
            assert len(result.collection) == 3
            assert columnar_statistics().builds == builds  # no rebuild

    def test_snapshot_without_columnar_falls_back_to_lazy_build(
        self, fig6_tree, tmp_path
    ):
        directory = str(tmp_path / "db")
        with Database(directory) as db:
            db.load(tree=fig6_tree, name="bib.xml")
            # No query ran: the persisted snapshot has no columnar chunks.

        with Database(directory, columnar=True) as reopened:
            assert reopened.indexes.columnar_status()["state"] == "pending"
            builds = columnar_statistics().builds
            reopened.query(QUERY_1)
            assert columnar_statistics().builds == builds + 1


class TestStructuralIdentity:
    """E1/E2/E4 produce structurally identical results columnar vs
    object-walk fallback, across every physical plan mode."""

    @pytest.fixture(scope="class")
    def trees(self):
        return generate_dblp(
            DBLPConfig(n_articles=60, n_authors=20, seed=7, with_institutions=True)
        )

    @pytest.fixture(scope="class")
    def columnar_db(self, trees):
        db = Database(columnar=True)
        db.load(tree=trees, name="bib.xml")
        return db

    @pytest.fixture(scope="class")
    def fallback_db(self, trees):
        db = Database(columnar=False)
        db.load(tree=trees, name="bib.xml")
        return db

    @pytest.mark.parametrize(
        "query",
        [QUERY_1, QUERY_COUNT, INSTITUTION_QUERY, SORTED_QUERY],
        ids=["e1", "e2", "e4-institution", "e4-sorted"],
    )
    @pytest.mark.parametrize("plan", ["auto", "naive", "naive-hash", "groupby"])
    def test_identical_results(self, columnar_db, fallback_db, query, plan):
        got = columnar_db.query(query, plan=plan)
        want = fallback_db.query(query, plan=plan)
        assert diff_collections(got.collection, want.collection) is None
