"""Tag index, value index, and index manager tests."""

import pytest

from repro.errors import IndexError_
from repro.indexing.labels import NodeLabel, assert_document_order, sort_document_order
from repro.indexing.manager import IndexManager
from repro.indexing.tag_index import TagIndex
from repro.indexing.value_index import ValueIndex


def label(nid, start=None, end=None, level=1):
    start = nid * 2 if start is None else start
    end = start + 1 if end is None else end
    return NodeLabel(nid, start, end, level)


class TestNodeLabel:
    def test_contains(self):
        outer = NodeLabel(0, 0, 9, 0)
        inner = NodeLabel(1, 2, 3, 2)
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert not outer.contains(outer)

    def test_is_parent_of(self):
        outer = NodeLabel(0, 0, 9, 0)
        child = NodeLabel(1, 1, 4, 1)
        grandchild = NodeLabel(2, 2, 3, 2)
        assert outer.is_parent_of(child)
        assert not outer.is_parent_of(grandchild)

    def test_sort_document_order(self):
        labels = [label(2), label(0), label(1)]
        assert [l.nid for l in sort_document_order(labels)] == [0, 1, 2]

    def test_assert_document_order(self):
        assert_document_order([label(0), label(1)])
        with pytest.raises(ValueError):
            assert_document_order([label(1), label(0)])


class TestTagIndex:
    def test_postings_in_document_order(self):
        index = TagIndex()
        index.add(0, label(0))
        index.add(0, label(2))
        index.add(0, label(1))  # out of order: triggers lazy sort
        assert [l.nid for l in index.labels(0)] == [0, 1, 2]

    def test_missing_tag_empty(self):
        assert TagIndex().labels(9) == []

    def test_count_and_total(self):
        index = TagIndex()
        index.add(0, label(0))
        index.add(0, label(1))
        index.add(1, label(2))
        assert index.count(0) == 2
        assert index.count(7) == 0
        assert index.total_postings() == 3
        assert index.tags() == [0, 1]

    def test_lookups_counted(self):
        index = TagIndex()
        index.add(0, label(0))
        index.labels(0)
        index.labels(0)
        assert index.lookups == 2

    def test_invariant_duplicate_nid_rejected(self):
        index = TagIndex()
        index.add(0, NodeLabel(5, 0, 1, 1))
        index.add(0, NodeLabel(5, 2, 3, 1))
        with pytest.raises(IndexError_):
            index.check_invariants()


class TestValueIndex:
    def make(self):
        index = ValueIndex()
        index.add(0, "Jack", label(3))
        index.add(0, "Jack", label(1))
        index.add(0, "Jill", label(2))
        index.add(1, "Jack", label(9))  # different tag, same value
        return index

    def test_lookup_sorted(self):
        index = self.make()
        assert [l.nid for l in index.labels(0, "Jack")] == [1, 3]

    def test_missing_value(self):
        assert self.make().labels(0, "Nobody") == []

    def test_type_heterogeneity_keys_scoped_by_tag(self):
        index = self.make()
        assert [l.nid for l in index.labels(1, "Jack")] == [9]

    def test_distinct_values_ascending(self):
        index = self.make()
        values = [value for value, _ in index.distinct_values(0)]
        assert values == ["Jack", "Jill"]

    def test_distinct_values_does_not_leak_other_tags(self):
        index = self.make()
        postings = dict(index.distinct_values(0))
        assert all(l.nid != 9 for labels in postings.values() for l in labels)

    def test_sizes(self):
        index = self.make()
        assert index.n_keys() == 3
        assert index.n_entries() == 4


class TestIndexManager:
    def test_labels_for_tag(self, store, indexes):
        authors = indexes.labels_for_tag("author")
        assert len(authors) == 5
        assert [store.content(l.nid) for l in authors] == [
            "Jack", "John", "Jill", "Jack", "John",
        ]

    def test_labels_for_unknown_tag(self, indexes):
        assert indexes.labels_for_tag("nope") == []

    def test_labels_for_tag_value(self, store, indexes):
        jacks = indexes.labels_for_tag_value("author", "Jack")
        assert len(jacks) == 2
        assert all(store.content(l.nid) == "Jack" for l in jacks)

    def test_distinct_values(self, indexes):
        values = [value for value, _ in indexes.distinct_values("author")]
        assert values == ["Jack", "Jill", "John"]  # ascending

    def test_tag_cardinality(self, indexes):
        assert indexes.tag_cardinality("article") == 3
        assert indexes.tag_cardinality("ghost") == 0

    def test_check_invariants(self, indexes):
        indexes.check_invariants()

    def test_unbuilt_invariants_rejected(self, store):
        manager = IndexManager(store)
        with pytest.raises(IndexError_):
            manager.check_invariants()

    def test_rebuild_after_second_document(self, store):
        manager = IndexManager(store)
        manager.build()
        store.load_text("<doc_root><author>Zara</author></doc_root>", "b.xml")
        manager.build()
        values = [value for value, _ in manager.distinct_values("author")]
        assert "Zara" in values

    def test_statistics_keys(self, indexes):
        indexes.labels_for_tag("author")
        stats = indexes.statistics()
        assert stats["tag_index_lookups"] >= 1
        assert stats["tag_index_postings"] > 0
