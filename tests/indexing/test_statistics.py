"""Optimizer statistics: collection correctness, the 0x04 snapshot
chunk round-trip, and generation-bump invalidation — the same
lifecycle the columnar node table follows."""

from __future__ import annotations

import pytest

from repro.datagen.sample import QUERY_1, figure6_database
from repro.indexing import statistics as statistics_module
from repro.indexing.statistics import build_statistics, statistics_from_rows
from repro.query.database import Database


def _sym(db: Database, tag: str) -> int:
    sym = db.store.meta.symbols.lookup(tag)
    assert sym is not None, f"tag {tag!r} not in symbol table"
    return sym


@pytest.fixture
def build_calls(monkeypatch):
    """Count build_statistics invocations (the manager imports it
    lazily from the statistics module, so patching the module works)."""
    calls = []
    original = statistics_module.build_statistics

    def counting(*args, **kwargs):
        calls.append(args)
        return original(*args, **kwargs)

    monkeypatch.setattr(statistics_module, "build_statistics", counting)
    return calls


class TestCollection:
    def test_collected_at_load_time(self, fig6_tree):
        db = Database()
        db.load(tree=fig6_tree, name="bib.xml")
        stats = db.indexes.statistics_if_fresh()
        assert stats is not None  # eager: build() collects, no query ran
        assert stats.version == db.store.generation
        assert stats.total_nodes == db.store.n_nodes()

    def test_per_tag_counts_and_distincts(self, fig6_tree):
        db = Database()
        db.load(tree=fig6_tree, name="bib.xml")
        stats = db.indexes.ensure_statistics()
        articles = stats.for_tag(_sym(db, "article"))
        assert articles.count == 3
        authors = stats.for_tag(_sym(db, "author"))
        assert authors.count == 5
        assert authors.distinct_values == 3  # Jack, John, Jill
        assert articles.min_level == articles.max_level  # one level band
        assert articles.avg_subtree_size > 1.0

    def test_rows_round_trip(self, fig6_tree):
        db = Database()
        db.load(tree=fig6_tree, name="bib.xml")
        stats = db.indexes.ensure_statistics()
        rebuilt = statistics_from_rows(stats.rows(), stats.generation)
        assert rebuilt.version == stats.version
        assert rebuilt.total_nodes == stats.total_nodes
        assert rebuilt.per_tag == stats.per_tag

    def test_build_skips_contentless_statistics_counters(self, fig6_tree):
        """Statistics building is maintenance work: it must not inflate
        the per-query index-lookup counters profiles delta against."""
        db = Database()
        db.load(tree=fig6_tree, name="bib.xml")
        before = db.indexes.work_counters()
        build_statistics(
            db.store, db.indexes.tag_index, db.indexes.value_index,
            db.store.generation,
        )
        assert db.indexes.work_counters() == before


class TestSnapshotLifecycle:
    def test_reused_while_generation_stable(self, fig6_tree, build_calls):
        db = Database()
        db.load(tree=fig6_tree, name="bib.xml")
        builds = len(build_calls)
        db.query(QUERY_1)
        db.query(QUERY_1)
        assert db.indexes.ensure_statistics() is db.indexes.ensure_statistics()
        assert len(build_calls) == builds  # load-time stats served throughout

    @pytest.mark.parametrize("mutation", ["load", "drop", "compact"])
    def test_invalidated_by_mutation(self, fig6_tree, mutation):
        db = Database()
        db.load(tree=fig6_tree, name="bib.xml")
        version = db.indexes.statistics_version()
        if mutation == "load":
            db.load(tree=figure6_database(), name="more.xml")
        elif mutation == "drop":
            db.load(tree=figure6_database(), name="more.xml")
            db.drop_document("more.xml")
        else:
            db.load(tree=figure6_database(), name="more.xml")
            db.drop_document("more.xml")
            db.compact()
        assert db.store.generation > version
        fresh = db.indexes.ensure_statistics()
        assert fresh.version == db.store.generation > version

    def test_version_tracks_generation(self, fig6_tree):
        db = Database()
        db.load(tree=fig6_tree, name="bib.xml")
        assert db.statistics_version == db.store.generation
        db.load(tree=figure6_database(), name="more.xml")
        assert db.statistics_version == db.store.generation


class TestPersistence:
    def test_reopen_restores_from_chunk_without_rebuild(
        self, fig6_tree, tmp_path, build_calls
    ):
        directory = str(tmp_path / "db")
        with Database(directory) as db:
            db.load(tree=fig6_tree, name="bib.xml")
            expected = db.indexes.ensure_statistics()

        builds = len(build_calls)
        with Database(directory) as reopened:
            restored = reopened.indexes.statistics_if_fresh()
            assert restored is not None  # came from the 0x04 chunk
            assert len(build_calls) == builds  # no rebuild scan
            # Generations are process-local: the chunk is restamped with
            # the reopened store's generation, so it reads as fresh.
            assert restored.version == reopened.store.generation
            assert restored.per_tag == expected.per_tag
            result = reopened.query(QUERY_1)
            assert len(result.collection) == 3
            assert len(build_calls) == builds

    def test_snapshot_without_chunk_falls_back_to_lazy_build(
        self, fig6_tree, tmp_path, build_calls
    ):
        """A snapshot persisted before the statistics chunk existed (or
        with stale statistics) rebuilds lazily on first use."""
        directory = str(tmp_path / "db")
        with Database(directory) as db:
            db.load(tree=fig6_tree, name="bib.xml")

        with Database(directory) as reopened:
            # Simulate a pre-statistics snapshot restore.
            reopened.indexes._statistics = None
            builds = len(build_calls)
            stats = reopened.indexes.ensure_statistics()
            assert len(build_calls) == builds + 1
            assert stats.version == reopened.store.generation
