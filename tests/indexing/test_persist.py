"""Index persistence tests: round-trip, staleness, corruption fallback."""

import os

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1, figure6_database
from repro.indexing.manager import IndexManager
from repro.indexing.persist import INDEX_FILE, load_indexes, save_indexes
from repro.query.database import Database
from repro.storage.store import NodeStore


@pytest.fixture
def disk_store(tmp_path):
    directory = os.path.join(tmp_path, "db")
    store = NodeStore(directory)
    store.load_tree(figure6_database(), "bib.xml")
    yield store, directory
    store.close()


class TestRoundTrip:
    def test_save_then_load(self, disk_store):
        store, directory = disk_store
        manager = IndexManager(store)
        manager.build()
        manager.save(directory)

        fresh = IndexManager(store)
        assert fresh.try_load(directory)
        assert fresh.labels_for_tag("author") == manager.labels_for_tag("author")
        assert fresh.labels_for_tag_value("author", "Jack") == manager.labels_for_tag_value(
            "author", "Jack"
        )
        assert [v for v, _ in fresh.distinct_values("author")] == [
            v for v, _ in manager.distinct_values("author")
        ]

    def test_loaded_indexes_pass_invariants(self, disk_store):
        store, directory = disk_store
        manager = IndexManager(store)
        manager.build()
        manager.save(directory)
        fresh = IndexManager(store)
        fresh.try_load(directory)
        fresh.check_invariants()

    def test_large_postings_chunked(self, tmp_path):
        """More postings than one chunk: everything survives the trip."""
        directory = os.path.join(tmp_path, "big")
        store = NodeStore(directory)
        store.load_tree(
            generate_dblp(DBLPConfig(n_articles=300, n_authors=40, seed=2)), "bib.xml"
        )
        manager = IndexManager(store)
        manager.build()
        manager.save(directory)
        fresh = IndexManager(store)
        assert fresh.try_load(directory)
        assert fresh.labels_for_tag("article") == manager.labels_for_tag("article")
        assert fresh.tag_index.total_postings() == manager.tag_index.total_postings()
        assert fresh.value_index.n_entries() == manager.value_index.n_entries()
        store.close()


class TestFallbacks:
    def test_missing_file(self, disk_store):
        store, directory = disk_store
        manager = IndexManager(store)
        assert not manager.try_load(directory)

    def test_stale_fingerprint_rejected(self, disk_store):
        store, directory = disk_store
        manager = IndexManager(store)
        manager.build()
        manager.save(directory)
        # Another document changes the fingerprint.
        store.load_text("<doc_root><author>Zara</author></doc_root>", "b.xml")
        fresh = IndexManager(store)
        assert not fresh.try_load(directory)

    def test_corrupt_file_rejected(self, disk_store):
        store, directory = disk_store
        manager = IndexManager(store)
        manager.build()
        manager.save(directory)
        path = os.path.join(directory, INDEX_FILE)
        with open(path, "r+b") as handle:
            handle.seek(50)
            handle.write(b"\xff\xff\xff")
        fresh = IndexManager(store)
        assert not fresh.try_load(directory)

    def test_truncated_file_rejected(self, disk_store):
        store, directory = disk_store
        manager = IndexManager(store)
        manager.build()
        manager.save(directory)
        path = os.path.join(directory, INDEX_FILE)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 100)
        fresh = IndexManager(store)
        assert not fresh.try_load(directory)

    def test_save_is_atomic(self, disk_store):
        store, directory = disk_store
        manager = IndexManager(store)
        manager.build()
        manager.save(directory)
        assert not os.path.exists(os.path.join(directory, INDEX_FILE) + ".tmp")


class TestDatabaseIntegration:
    def test_reopen_uses_persisted_indexes(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        with Database(directory=directory) as db:
            db.load(tree=figure6_database(), name="bib.xml")
            expected = db.query(QUERY_1).collection
        assert os.path.exists(os.path.join(directory, INDEX_FILE))
        with Database(directory=directory) as db:
            # No rebuild scan: indexes were loaded from the page file.
            assert db.indexes._built
            assert db.query(QUERY_1).collection.structurally_equal(expected)

    def test_reopen_with_deleted_index_file_rebuilds(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        with Database(directory=directory) as db:
            db.load(tree=figure6_database(), name="bib.xml")
            expected = db.query(QUERY_1).collection
        os.remove(os.path.join(directory, INDEX_FILE))
        with Database(directory=directory) as db:
            assert db.query(QUERY_1).collection.structurally_equal(expected)

    def test_module_level_functions(self, disk_store):
        store, directory = disk_store
        manager = IndexManager(store)
        manager.build()
        save_indexes(manager, directory)
        fresh = IndexManager(store)
        assert load_indexes(fresh, directory)
