"""Logical and physical executor tests."""

import pytest

from repro.datagen.sample import QUERY_1, QUERY_COUNT
from repro.errors import TranslationError
from repro.query.logical_exec import LogicalExecutor
from repro.query.parser import parse_query
from repro.query.physical import PhysicalExecutor
from repro.query.plan import PlanNode, scan
from repro.query.rewrite import rewrite
from repro.query.translate import naive_plan, recognize


def plans(text):
    naive = naive_plan(recognize(parse_query(text)), "doc_root")
    return naive, rewrite(naive)


class TestLogicalExecutor:
    def test_scan_materializes_document(self, store, indexes):
        executor = LogicalExecutor(store, indexes)
        out = executor.execute(scan("bib.xml"))
        assert len(out) == 1
        assert out[0].root.tag == "doc_root"

    def test_scan_cached(self, store, indexes):
        executor = LogicalExecutor(store, indexes)
        first = executor.execute(scan("bib.xml"))
        second = executor.execute(scan("bib.xml"))
        assert first is second

    def test_naive_plan_query1(self, store, indexes):
        naive, _ = plans(QUERY_1)
        out = LogicalExecutor(store, indexes).execute(naive)
        assert len(out) == 3
        assert out[0].root.tag == "authorpubs"
        titles = [c.content for c in out[0].root.children if c.tag == "title"]
        assert titles == ["Querying XML", "XML and the Web"]

    def test_groupby_plan_query1_identical(self, store, indexes):
        naive, grouped = plans(QUERY_1)
        executor = LogicalExecutor(store, indexes)
        assert executor.execute(naive).structurally_equal(executor.execute(grouped))

    def test_count_plans_agree(self, store, indexes):
        naive, grouped = plans(QUERY_COUNT)
        executor = LogicalExecutor(store, indexes)
        a = executor.execute(naive)
        b = executor.execute(grouped)
        assert a.structurally_equal(b)
        assert [t.root.content for t in a] == ["2", "2", "1"]

    def test_unsupported_op_rejected(self, store, indexes):
        with pytest.raises(TranslationError):
            LogicalExecutor(store, indexes).execute(PlanNode("mystery"))


class TestPhysicalExecutor:
    def executor(self, store, indexes, **kwargs):
        return PhysicalExecutor(store, indexes, **kwargs)

    def test_naive_plan_query1(self, store, indexes):
        naive, _ = plans(QUERY_1)
        out = self.executor(store, indexes).execute(naive)
        assert len(out) == 3
        assert out[0].root.children[0].content == "Jack"

    def test_groupby_plan_query1(self, store, indexes):
        _, grouped = plans(QUERY_1)
        out = self.executor(store, indexes).execute(grouped)
        assert len(out) == 3
        titles = [c.content for c in out[1].root.children if c.tag == "title"]
        assert titles == ["Querying XML", "Hack HTML"]  # John

    def test_physical_matches_logical(self, store, indexes):
        for text in (QUERY_1, QUERY_COUNT):
            naive, grouped = plans(text)
            logical = LogicalExecutor(store, indexes)
            physical = self.executor(store, indexes)
            reference = logical.execute(naive)
            assert physical.execute(naive).structurally_equal(reference)
            assert physical.execute(grouped).structurally_equal(reference)

    def test_join_strategies_equivalent(self, store, indexes):
        naive, _ = plans(QUERY_1)
        nested = self.executor(store, indexes, join_strategy="nested-loop").execute(naive)
        hashed = self.executor(store, indexes, join_strategy="value-hash").execute(naive)
        assert nested.structurally_equal(hashed)

    def test_grouping_strategies_equivalent(self, store, indexes):
        _, grouped = plans(QUERY_1)
        results = [
            self.executor(store, indexes, grouping_strategy=s).execute(grouped)
            for s in ("sort", "hash", "replicate", "value-index")
        ]
        for other in results[1:]:
            assert results[0].structurally_equal(other)

    def test_value_index_strategy_skips_value_lookups(self, store, indexes):
        _, grouped = plans(QUERY_COUNT)
        store.reset_statistics()
        result = self.executor(
            store, indexes, grouping_strategy="value-index"
        ).execute(grouped)
        # Grouping itself needs no value lookups (keys come off the
        # index); only the output group nodes are materialized.
        assert store.counters.value_lookups == len(result)

    def test_replicate_strategy_materializes_more(self, store, indexes):
        _, grouped = plans(QUERY_COUNT)
        store.reset_statistics()
        self.executor(store, indexes, grouping_strategy="sort").execute(grouped)
        sort_nodes = store.counters.nodes_materialized
        store.reset_statistics()
        self.executor(store, indexes, grouping_strategy="replicate").execute(grouped)
        replicate_nodes = store.counters.nodes_materialized
        assert replicate_nodes > sort_nodes  # the Sec. 5.3 strawman cost

    def test_count_plan_skips_member_materialization(self, store, indexes):
        """Late materialization: COUNT never touches article subtrees —
        only the (leaf) group nodes are materialized for output."""
        _, grouped = plans(QUERY_COUNT)
        store.reset_statistics()
        result = self.executor(store, indexes).execute(grouped)
        assert store.counters.nodes_materialized == len(result)  # 1 per group

    def test_scan_only_plans_rejected_at_root(self, store, indexes):
        with pytest.raises(TranslationError):
            self.executor(store, indexes).execute(scan("bib.xml"))

    def test_bad_strategy_rejected(self, store, indexes):
        with pytest.raises(TranslationError):
            self.executor(store, indexes, grouping_strategy="magic")
        with pytest.raises(TranslationError):
            self.executor(store, indexes, join_strategy="magic")

    def test_full_scan_matching_equivalent(self, store, indexes):
        _, grouped = plans(QUERY_1)
        indexed = self.executor(store, indexes, use_indexes=True).execute(grouped)
        scanned = self.executor(store, indexes, use_indexes=False).execute(grouped)
        assert indexed.structurally_equal(scanned)
