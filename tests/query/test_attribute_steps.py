"""Attribute path steps (``/@name``)."""

import pytest

from repro.errors import XQuerySyntaxError
from repro.query.ast import Step, render
from repro.query.database import Database
from repro.query.parser import parse_query


@pytest.fixture
def attr_db():
    db = Database()
    db.load(text=
        """
        <doc_root>
          <article id="a1" lang="en"><title>T1</title></article>
          <article id="a2"><title>T2</title></article>
        </doc_root>
        """, name="bib.xml",
    )
    return db


class TestParsing:
    def test_attribute_step(self):
        expr = parse_query('document("b")//article/@id')
        assert expr.steps[-1] == Step("@", "id")

    def test_render_roundtrip(self):
        expr = parse_query('document("b")//article/@id')
        assert parse_query(render(expr)) == expr

    def test_descendant_attribute_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query('document("b")//@id')


class TestEvaluation:
    def run_values(self, db, text):
        result = db.query(text, plan="direct")
        return [tree.root.content for tree in result.collection]

    def test_attribute_values(self, attr_db):
        query = (
            'FOR $a IN document("bib.xml")//article RETURN <id>{$a/@id}</id>'
        )
        assert self.run_values(attr_db, query) == ["a1", "a2"]

    def test_missing_attribute_skipped(self, attr_db):
        query = (
            'FOR $a IN document("bib.xml")//article RETURN <l>{$a/@lang}</l>'
        )
        assert self.run_values(attr_db, query) == ["en", None]

    def test_attribute_in_where(self, attr_db):
        query = (
            'FOR $a IN document("bib.xml")//article '
            'WHERE $a/@id = "a2" RETURN $a/title'
        )
        result = attr_db.query(query, plan="direct").collection
        assert [t.root.content for t in result] == ["T2"]

    def test_count_of_attributes(self, attr_db):
        query = '<n>{count(document("bib.xml")//article/@lang)}</n>'
        assert self.run_values(attr_db, query) == ["1"]
