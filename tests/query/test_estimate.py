"""Cardinality estimator and plan-costing tests (the optimizer box)."""

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp_with_profile
from repro.datagen.sample import QUERY_1
from repro.pattern.matcher import StoreMatcher
from repro.pattern.pattern import Axis, PatternNode, PatternTree
from repro.pattern.predicates import tag
from repro.query.database import Database
from repro.query.estimate import CardinalityEstimator
from repro.query.parser import parse_query
from repro.query.rewrite import rewrite
from repro.query.translate import naive_plan, recognize


@pytest.fixture(scope="module")
def loaded():
    tree, profile = generate_dblp_with_profile(
        DBLPConfig(n_articles=300, n_authors=90, seed=7)
    )
    db = Database()
    db.load(tree=tree, name="bib.xml")
    return db, profile


@pytest.fixture
def estimator(loaded):
    db, _ = loaded
    return CardinalityEstimator(db.store, db.indexes)


def pattern_of(*chain):
    root = PatternNode("$1", tag(chain[0]))
    current = root
    for index, name in enumerate(chain[1:], start=2):
        current = current.add(f"${index}", tag(name), Axis.PC)
    return PatternTree(root)


class TestBaseStatistics:
    def test_tag_count_exact(self, loaded, estimator):
        _, profile = loaded
        assert estimator.tag_count("article") == profile.n_articles
        assert estimator.tag_count("author") == profile.n_author_occurrences

    def test_unknown_tag_zero(self, estimator):
        assert estimator.tag_count("ghost") == 0

    def test_unconstrained_counts_all_nodes(self, loaded, estimator):
        db, profile = loaded
        assert estimator.tag_count(None) == profile.n_nodes

    def test_distinct_count(self, loaded, estimator):
        _, profile = loaded
        assert estimator.distinct_count("author") == profile.n_distinct_authors

    def test_distinct_count_cached(self, estimator):
        first = estimator.distinct_count("author")
        assert estimator.distinct_count("author") == first


class TestPatternCardinality:
    def test_exact_on_single_chain(self, loaded, estimator):
        db, profile = loaded
        pattern = pattern_of("article", "author")
        estimated = estimator.pattern_cardinality(pattern)
        actual = len(StoreMatcher(db.store, db.indexes).match(pattern))
        assert actual == profile.n_author_occurrences
        assert abs(estimated - actual) < 1e-6  # exact for DBLP shape

    def test_root_anchored_chain(self, loaded, estimator):
        db, _ = loaded
        pattern = pattern_of("doc_root", "article")
        # article is a pc child of doc_root in the generator.
        actual = len(StoreMatcher(db.store, db.indexes).match(pattern))
        assert abs(estimator.pattern_cardinality(pattern) - actual) < 1e-6

    def test_empty_tag_gives_zero(self, estimator):
        assert estimator.pattern_cardinality(pattern_of("ghost", "author")) == 0.0

    def test_match_cost_is_candidate_total(self, loaded, estimator):
        _, profile = loaded
        pattern = pattern_of("article", "author")
        assert estimator.pattern_match_cost(pattern) == (
            profile.n_articles + profile.n_author_occurrences
        )


class TestValueSelectivity:
    def test_equality_uses_distinct_count(self, loaded, estimator):
        db, profile = loaded
        from repro.pattern.predicates import ContentEquals, conjoin
        from repro.pattern.pattern import PatternNode, PatternTree

        # Pick an actual author so the exact count is known.
        name, postings = db.indexes.distinct_values("author")[0]
        root = PatternNode("$1", conjoin(tag("author"), ContentEquals(name)))
        estimated = estimator.pattern_cardinality(PatternTree(root))
        average = profile.n_author_occurrences / profile.n_distinct_authors
        assert abs(estimated - average) < 1e-6  # uniformity assumption

    def test_comparison_selectivity_heuristic(self, estimator):
        from repro.pattern.predicates import ContentCompare, conjoin
        from repro.pattern.pattern import PatternNode, PatternTree

        unfiltered = PatternTree(PatternNode("$1", tag("year")))
        filtered = PatternTree(
            PatternNode("$1", conjoin(tag("year"), ContentCompare(">", "1995")))
        )
        ratio = estimator.pattern_cardinality(filtered) / estimator.pattern_cardinality(
            unfiltered
        )
        assert abs(ratio - estimator.COMPARE_SELECTIVITY) < 1e-9

    def test_conjunction_multiplies(self, estimator):
        from repro.pattern.predicates import (
            AttributeEquals,
            Conjunction,
            ContentCompare,
        )

        predicate = Conjunction(
            [ContentCompare(">", "1"), AttributeEquals("k", "v")]
        )
        expected = estimator.COMPARE_SELECTIVITY * estimator.ATTRIBUTE_SELECTIVITY
        assert abs(estimator.value_selectivity(predicate, "year") - expected) < 1e-9

    def test_plain_tag_selectivity_is_one(self, estimator):
        assert estimator.value_selectivity(tag("author"), "author") == 1.0


class TestPlanCosting:
    def plans(self, db):
        expr = parse_query(QUERY_1)
        naive = naive_plan(recognize(expr), db.root_tag("bib.xml"))
        return naive, rewrite(naive)

    def test_groupby_always_cheaper(self, loaded, estimator):
        db, _ = loaded
        naive, grouped = self.plans(db)
        choice = estimator.compare_plans(naive, grouped)
        assert choice.winner == "groupby"
        assert choice.advantage > 1

    def test_hash_join_narrows_but_keeps_winner(self, loaded, estimator):
        db, _ = loaded
        naive, grouped = self.plans(db)
        nested = estimator.compare_plans(naive, grouped, "nested-loop")
        hashed = estimator.compare_plans(naive, grouped, "value-hash")
        assert hashed.naive_cost < nested.naive_cost
        assert hashed.winner == "groupby"

    def test_estimates_track_measurement(self, loaded, estimator):
        """The estimated naive/groupby cost ratio is within 5x of the
        measured value-lookup+record-lookup ratio (order of magnitude)."""
        db, _ = loaded
        naive, grouped = self.plans(db)
        choice = estimator.compare_plans(naive, grouped)
        db.store.reset_statistics()
        db.query(QUERY_1, plan="naive", reset_statistics=False)
        measured_naive = db.store.statistics()["record_lookups"]
        db.store.reset_statistics()
        db.query(QUERY_1, plan="groupby", reset_statistics=False)
        measured_grouped = db.store.statistics()["record_lookups"]
        measured_ratio = measured_naive / measured_grouped
        assert choice.advantage / measured_ratio < 5
        assert measured_ratio / choice.advantage < 5

    def test_annotate_renders_rows_and_cost(self, loaded, estimator):
        db, _ = loaded
        naive, _ = self.plans(db)
        text = estimator.annotate(naive)
        assert "rows" in text and "lookups" in text
        assert "left_outer_join" in text

    def test_database_verbose_explain(self, loaded):
        db, _ = loaded
        text = db.explain(QUERY_1, verbose=True)
        assert "optimizer" in text
        assert "advantage" in text
