"""Two-level grouping (the third query of Sec. 1): institution on the
outside, author within, titles innermost."""

import pytest

from repro.core import GroupBy, grouping_value_of, members_of
from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.pattern import Axis, PatternNode, PatternTree, tag
from repro.query.database import Database
from repro.xmlmodel import Collection, DataTree, element

NESTED_QUERY = """
FOR $i IN distinct-values(document("bib.xml")//institution)
RETURN
<instpubs>
{$i}
{
FOR $a IN distinct-values(document("bib.xml")//author)
WHERE $i = $a/institution
RETURN
<authorpubs>
{$a}
{
FOR $b IN document("bib.xml")//article
WHERE $a = $b/author
RETURN $b/title
}
</authorpubs>
}
</instpubs>
"""


@pytest.fixture
def inst_db():
    db = Database()
    db.load(text=
        """
        <doc_root>
          <article><title>T1</title>
            <author>Jack<institution>UM</institution></author>
            <author>Jill<institution>UBC</institution></author></article>
          <article><title>T2</title>
            <author>Jack<institution>UM</institution></author></article>
          <article><title>T3</title>
            <author>Ann<institution>UM</institution></author></article>
        </doc_root>
        """, name="bib.xml",
    )
    return db


class TestEngineRoute:
    def test_structure(self, inst_db):
        result = inst_db.query(NESTED_QUERY, plan="auto")
        # Join-graph isolation collapses the 3-level nesting into one
        # single-block grouping plan (PR 8); direct is the fallback only
        # when the optimizer is off and the collapse cannot apply.
        assert result.plan_mode == "groupby"
        got = {}
        for tree in result.collection:
            inst = tree.root.children[0].content
            got[inst] = {
                pubs.children[0].content: [
                    c.content for c in pubs.children[1:] if c.tag == "title"
                ]
                for pubs in tree.root.children[1:]
            }
        assert got == {
            "UM": {"Jack": ["T1", "T2"], "Ann": ["T3"]},
            "UBC": {"Jill": ["T1"]},
        }

    def test_outer_order_is_document_order(self, inst_db):
        result = inst_db.query(NESTED_QUERY, plan="direct")
        institutions = [t.root.children[0].content for t in result.collection]
        assert institutions == ["UM", "UBC"]


class TestAlgebraicRoute:
    """GROUPBY composed with itself through group-tree members."""

    def article_collection(self, inst_db) -> Collection:
        info = inst_db.store.document("bib.xml")
        root = inst_db.store.materialize(info.root_nid)
        return Collection([DataTree(c) for c in root.children])

    def institution_pattern(self) -> PatternTree:
        root = PatternNode("$1", tag("article"))
        author = root.add("$2", tag("author"), Axis.PC)
        author.add("$3", tag("institution"), Axis.PC)
        return PatternTree(root)

    def author_pattern(self) -> PatternTree:
        root = PatternNode("$1", tag("article"))
        root.add("$2", tag("author"), Axis.PC)
        return PatternTree(root)

    def test_two_level_composition(self, inst_db):
        articles = self.article_collection(inst_db)
        by_institution = GroupBy(self.institution_pattern(), ["$3"]).apply(articles)
        assert [grouping_value_of(g) for g in by_institution] == ["UM", "UBC"]

        um_members = members_of(by_institution[0])
        assert len(um_members) == 3  # T1, T2, T3 (deduped)

        by_author = GroupBy(self.author_pattern(), ["$2"]).apply(um_members)
        values = [grouping_value_of(g) for g in by_author]
        assert values == ["Jack", "Jill", "Ann"]  # Jill via T1's membership

    def test_members_of_dedup(self, inst_db):
        """An article with two same-institution authors is one member."""
        db = Database()
        db.load(text=
            """
            <doc_root>
              <article><title>T1</title>
                <author>A<institution>X</institution></author>
                <author>B<institution>X</institution></author></article>
            </doc_root>
            """, name="bib.xml",
        )
        articles = Collection(
            [DataTree(db.store.materialize(db.store.document("bib.xml").root_nid).children[0])]
        )
        groups = GroupBy(self.institution_pattern(), ["$3"]).apply(articles)
        assert len(members_of(groups[0], dedup=True)) == 1
        assert len(members_of(groups[0], dedup=False)) == 2


class TestHelpers:
    def test_members_of_rejects_non_group(self):
        with pytest.raises(ValueError):
            members_of(DataTree(element("x", None)))

    def test_grouping_value_of_rejects_non_group(self):
        with pytest.raises(ValueError):
            grouping_value_of(DataTree(element("x", None)))


class TestRandomizedConsistency:
    def test_example_routes_agree(self):
        """The runnable example's cross-check at a different seed."""
        import examples.nested_grouping as example

        config = DBLPConfig(n_articles=30, n_authors=8, seed=13, with_institutions=True)
        db = Database()
        db.load(tree=generate_dblp(config), name="bib.xml")
        engine = db.query(example.NESTED_QUERY, plan="direct").collection
        composed = example.algebraic_nested_grouping(db)
        assert example._summarize(t.root for t in engine) == example._summarize(composed)
