"""Database facade tests."""

import os

import pytest

from repro.datagen.sample import QUERY_1, QUERY_COUNT, figure6_database
from repro.errors import DatabaseError
from repro.query.database import PLAN_MODES, Database


class TestLoading:
    def test_documents_listed(self, db):
        assert db.documents() == ["bib.xml"]

    def test_root_tag(self, db):
        assert db.root_tag("bib.xml") == "doc_root"

    def test_load_text(self):
        db = Database()
        db.load(text="<r><x>1</x></r>", name="t.xml")
        assert db.documents() == ["t.xml"]

    def test_load_file(self, tmp_path):
        path = os.path.join(tmp_path, "t.xml")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("<r><x>1</x></r>")
        db = Database()
        db.load(path=path, name="t.xml")
        assert db.documents() == ["t.xml"]


class TestQueryModes:
    def test_all_modes_agree_on_query1(self, db):
        reference = db.query(QUERY_1, plan="direct").collection
        for mode in ("naive", "naive-hash", "groupby", "logical-naive", "logical-groupby", "auto"):
            got = db.query(QUERY_1, plan=mode).collection
            assert got.structurally_equal(reference), mode

    def test_all_modes_agree_on_count(self, db):
        reference = db.query(QUERY_COUNT, plan="direct").collection
        for mode in ("naive", "naive-hash", "groupby", "logical-naive", "logical-groupby"):
            got = db.query(QUERY_COUNT, plan=mode).collection
            assert got.structurally_equal(reference), mode

    def test_auto_uses_groupby_for_grouping_queries(self, db):
        result = db.query(QUERY_1, plan="auto")
        assert result.plan_mode == "groupby"

    def test_auto_falls_back_to_direct(self, db):
        result = db.query(
            'FOR $t IN document("bib.xml")//title RETURN <t>{$t}</t>', plan="auto"
        )
        assert result.plan_mode == "direct"
        assert len(result.collection) == 3

    def test_unknown_mode_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.query(QUERY_1, plan="warp-speed")

    def test_plan_modes_constant_consistent(self, db):
        for mode in PLAN_MODES:
            assert db.query(QUERY_1, plan=mode).collection is not None

    def test_result_metadata(self, db):
        result = db.query(QUERY_1, plan="groupby")
        assert result.elapsed_seconds >= 0
        assert result.plan is not None
        assert "value_lookups" in result.statistics
        assert len(result) == 3


class TestExplain:
    def test_explain_shows_both_plans(self, db):
        text = db.explain(QUERY_1)
        assert "naive (join) plan" in text
        assert "GROUPBY" in text
        assert "left_outer_join" in text
        assert "groupby basis=['$2*']" in text

    def test_plans_for(self, db):
        naive, grouped = db.plans_for(QUERY_1)
        assert naive.op == "stitch"
        assert grouped.op == "project_groups"


class TestPersistence:
    def test_reopen_and_query(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        with Database(directory=directory) as db:
            db.load(tree=figure6_database(), name="bib.xml")
            expected = db.query(QUERY_1).collection
        with Database(directory=directory) as db:
            assert db.documents() == ["bib.xml"]
            assert db.query(QUERY_1).collection.structurally_equal(expected)

    def test_cold_run_counts_physical_reads(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        with Database(directory=directory) as db:
            db.load(tree=figure6_database(), name="bib.xml")
        with Database(directory=directory, pool_frames=4) as db:
            result = db.query(QUERY_1, plan="groupby")
            assert result.statistics["physical_reads"] >= 0


class TestMultiDocumentSafety:
    def test_physical_plans_scoped_to_named_document(self, db):
        """Regression: with several documents loaded, plans over
        document("bib.xml") must not see the other documents' nodes."""
        db.load(text=
            "<doc_root><article><title>Alien</title><author>Zed</author>"
            "</article></doc_root>", name="other.xml",
        )
        reference = db.query(QUERY_1, plan="direct").collection
        assert len(reference) == 3  # Jack, John, Jill — not Zed
        for mode in ("naive", "naive-hash", "groupby", "logical-naive", "logical-groupby"):
            got = db.query(QUERY_1, plan=mode).collection
            assert got.structurally_equal(reference), mode
        # And the other document is queryable on its own.
        other_query = QUERY_1.replace("bib.xml", "other.xml")
        other = db.query(other_query, plan="groupby").collection
        assert [t.root.children[0].content for t in other] == ["Zed"]

    def test_query_must_target_one_document(self, db):
        db.load(text="<doc_root><author>Solo</author></doc_root>", name="other.xml")
        query = (
            'FOR $a IN distinct-values(document("bib.xml")//author) RETURN '
            '<o>{$a}{FOR $b IN document("other.xml")//article '
            "WHERE $a = $b/author RETURN $b/title}</o>"
        )
        from repro.errors import TranslationError

        with pytest.raises(TranslationError):
            db.plans_for(query)
