"""The cost-based optimizer: plan choice, EXPLAIN's cost model section,
estimate-vs-actual accuracy on E1–E4, and the feedback loop's re-cost.

The accuracy contract: per-operator cardinality estimates stay within
``DIVERGENCE_RATIO`` (4x) of the observed cardinalities on the paper's
workload queries — the same bound the feedback loop uses to flag a plan,
so a regression here is exactly what would start flapping plans in
production.
"""

from __future__ import annotations

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1, QUERY_COUNT, figure6_database
from repro.query.database import Database, PlanMode
from repro.query.optimizer import (
    DIVERGENCE_RATIO,
    OperatorForecast,
    optimizer_statistics,
)
from repro.xmlmodel.serialize import serialize

E4_NESTED = """
FOR $i IN distinct-values(document("bib.xml")//institution)
RETURN
<instpubs>
{$i}
{
FOR $a IN distinct-values(document("bib.xml")//author)
WHERE $i = $a/institution
RETURN
<authorpubs>
{$a}
{
FOR $b IN document("bib.xml")//article
WHERE $a = $b/author
RETURN $b/title
}
</authorpubs>
}
</instpubs>
"""


def _fig6_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.load(tree=figure6_database(), name="bib.xml")
    return db


def _dblp_db(**kwargs) -> Database:
    db = Database(**kwargs)
    config = DBLPConfig(n_articles=80, n_authors=12, seed=7, with_institutions=True)
    db.load(tree=generate_dblp(config), name="bib.xml")
    return db


def _inst_db(**kwargs) -> Database:
    """A small document carrying institutions, so E4's outer distinct is
    non-degenerate at fixture scale (fig6 has no institution elements)."""
    db = Database(**kwargs)
    db.load(
        text="""
        <doc_root>
          <article><title>T1</title>
            <author>Jack<institution>UM</institution></author>
            <author>Jill<institution>UBC</institution></author></article>
          <article><title>T2</title>
            <author>Jack<institution>UM</institution></author></article>
          <article><title>T3</title>
            <author>Ann<institution>UM</institution></author></article>
        </doc_root>
        """,
        name="bib.xml",
    )
    return db


def _rendered(result) -> list[str]:
    return [serialize(t.root) for t in result.collection]


class TestCostModelExplain:
    def test_e1_explain_shows_cost_model(self):
        db = _fig6_db()
        explanation = db.explain(QUERY_1)
        assert "=== cost model ===" in explanation
        cost = explanation.to_dict()["cost_model"]
        assert cost["enabled"] and cost["costed"]
        assert cost["chosen"]["name"] == "groupby"
        assert cost["stats_version"] == db.statistics_version
        # At least one rejected alternative with its cost.
        rejected = [
            c for c in cost["candidates"] if c["name"] != cost["chosen"]["name"]
        ]
        assert rejected and all(c["cost"] > 0 for c in rejected)
        assert "rejected:" in explanation

    def test_e4_explain_shows_collapse_choice(self):
        db = _fig6_db()
        explanation = db.explain(E4_NESTED)
        cost = explanation.to_dict()["cost_model"]
        assert cost["kind"] == "nested-grouping"
        assert cost["chosen"]["name"] == "isolated-groupby"
        names = {c["name"] for c in cost["candidates"]}
        assert "direct-nested-loop" in names  # the rejected alternative

    def test_operator_forecasts_present(self):
        db = _fig6_db()
        cost = db.explain(QUERY_1).to_dict()["cost_model"]
        assert cost["forecasts"]
        assert all(f["est_rows"] >= 0 for f in cost["forecasts"])

    def test_match_and_grouping_alternatives_costed(self):
        db = _fig6_db()
        cost = db.explain(QUERY_1).to_dict()["cost_model"]
        assert dict(cost["match_candidates"]).keys() == {"columnar", "object-walk"}
        grouping = dict(cost["grouping_candidates"])
        assert {"sort", "hash"} <= grouping.keys()

    def test_optimizer_off_reports_heuristic(self):
        db = _fig6_db(optimizer=False)
        explanation = db.explain(QUERY_1)
        cost = explanation.to_dict()["cost_model"]
        assert cost["enabled"] is False
        assert "optimizer off" in explanation

    def test_uncosted_outside_grouping_family(self):
        # EXPLAIN's contract covers the grouping family only (as before
        # the cost model); a path query still raises, and AUTO execution
        # falls back to the direct interpreter uncosted.
        from repro.errors import TranslationError

        db = _fig6_db()
        with pytest.raises(TranslationError):
            db.explain('FOR $t IN document("bib.xml")//title RETURN $t')
        prepared = db.prepare('FOR $t IN document("bib.xml")//title RETURN $t')
        assert prepared.resolved is PlanMode.DIRECT
        assert prepared.decision is None


class TestPlanChoice:
    def test_e1_auto_resolves_to_groupby(self):
        prepared = _fig6_db().prepare(QUERY_1)
        assert prepared.resolved is PlanMode.GROUPBY
        assert prepared.decision is not None
        assert prepared.decision.chosen.cost <= min(
            c.cost for c in prepared.decision.candidates
        )

    def test_e4_collapses_to_single_block_grouping(self):
        db = _fig6_db()
        prepared = db.prepare(E4_NESTED)
        assert prepared.resolved is PlanMode.GROUPBY
        assert prepared.plan is not None and prepared.plan.find("nested_groups")
        auto = db.query(E4_NESTED)
        direct = db.query(E4_NESTED, plan="direct")
        assert auto.plan_mode == "groupby"
        assert _rendered(auto) == _rendered(direct)

    def test_optimizer_matches_heuristic_results(self):
        for query in (QUERY_1, QUERY_COUNT, E4_NESTED):
            on = _fig6_db().query(query)
            off = _fig6_db(optimizer=False).query(query)
            assert _rendered(on) == _rendered(off), query

    def test_forced_grouping_strategy_never_overridden(self):
        db = _fig6_db(grouping_strategy="hash")
        prepared = db.prepare(QUERY_1)
        assert prepared.decision.grouping_strategy == "hash"
        # The candidates are still costed and surfaced for EXPLAIN.
        assert prepared.decision.grouping_candidates
        result = db.query(QUERY_1)
        assert _rendered(result) == _rendered(_fig6_db().query(QUERY_1))


class TestEstimateAccuracy:
    """E1–E4 estimates stay within the documented 4x divergence bound."""

    @pytest.mark.parametrize(
        "query", [QUERY_1, QUERY_COUNT, E4_NESTED], ids=["e1", "e2", "e4"]
    )
    @pytest.mark.parametrize("scale", ["small", "dblp"], ids=["small", "e3-scale"])
    def test_estimates_within_ratio(self, query, scale):
        if scale == "dblp":
            db = _dblp_db()
        elif query == E4_NESTED:
            db = _inst_db()  # fig6 has no institutions — E4 degenerates
        else:
            db = _fig6_db()
        prepared = db.prepare(query)
        db.execute(prepared)
        actuals = db.feedback_actuals(query)
        assert actuals, "execution recorded no per-operator cardinalities"
        checked = 0
        for forecast in prepared.decision.forecasts:
            actual = actuals.get((forecast.op, forecast.detail))
            if actual is None:
                continue
            checked += 1
            estimated = max(forecast.est_rows, 1.0)
            observed = max(float(actual), 1.0)
            ratio = max(estimated, observed) / min(estimated, observed)
            assert ratio <= DIVERGENCE_RATIO, (
                f"{forecast.op} {forecast.detail}: est {forecast.est_rows} "
                f"vs actual {actual} ({ratio:.1f}x)"
            )
        assert checked > 0
        # Within the bound, the feedback loop never flags the plan.
        assert db.consume_feedback_flag(query) is False


class TestFeedbackLoop:
    def test_misestimate_flags_and_recosts(self):
        db = _fig6_db()
        prepared = db.prepare(QUERY_1)
        assert prepared.decision.recosted is False
        db.execute(prepared)
        actuals = db.feedback_actuals(QUERY_1)

        # Deliberately mis-estimate: inflate every forecast 100x beyond
        # the observed cardinalities and feed it back through the loop.
        inflated = [
            OperatorForecast(
                op=f.op,
                detail=f.detail,
                est_rows=max(f.est_rows, 1.0) * 100.0,
                est_cost=f.est_cost,
            )
            for f in prepared.decision.forecasts
        ]
        flags = optimizer_statistics().feedback_flags
        assert db._feedback.observe(QUERY_1, inflated, actuals) is True
        assert optimizer_statistics().feedback_flags == flags + 1

        # The flag is consumable exactly once (the plan cache drops its
        # entry on it), and the corrections drive a re-cost.
        assert db.consume_feedback_flag(QUERY_1) is True
        assert db.consume_feedback_flag(QUERY_1) is False
        assert db.feedback_corrections(QUERY_1)
        recosts = optimizer_statistics().recosts
        recosted = db.prepare(QUERY_1)
        assert recosted.decision.recosted is True
        assert optimizer_statistics().recosts == recosts + 1
        # The re-costed plan still answers correctly.
        assert _rendered(db.execute(recosted)) == _rendered(
            db.query(QUERY_1, plan="direct")
        )

    def test_accurate_estimates_never_flag(self):
        db = _fig6_db()
        for _ in range(3):
            db.query(QUERY_1)
        assert db.consume_feedback_flag(QUERY_1) is False
        assert db.feedback_corrections(QUERY_1) is None


class TestCounters:
    def test_plans_costed_counter_increments(self):
        db = _fig6_db()
        before = optimizer_statistics().plans_costed
        db.prepare(QUERY_1)
        assert optimizer_statistics().plans_costed == before + 1

    def test_counters_surface_in_observability_snapshot(self):
        from repro.observability.counters import snapshot_counters

        db = _fig6_db()
        snapshot = snapshot_counters(db.store, db.indexes)
        assert {
            "optimizer_plans_costed",
            "optimizer_feedback_flags",
            "optimizer_recosts",
        } <= snapshot.keys()


class TestEnvToggle:
    def test_env_flag_disables_optimizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_OPTIMIZER", "off")
        assert Database().optimizer_enabled is False
        monkeypatch.setenv("REPRO_OPTIMIZER", "on")
        assert Database().optimizer_enabled is True

    def test_stats_version_zero_without_indexes(self):
        db = Database(use_indexes=False)
        db.load(tree=figure6_database(), name="bib.xml")
        assert db.statistics_version == 0
        prepared = db.prepare(QUERY_1)
        assert prepared.decision is None  # heuristic path, uncosted
