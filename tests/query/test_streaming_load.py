"""``Database.load`` streaming paths: ``path=``/``stream=`` always
stream; ``text=`` streams when ``batch_size`` is given.  Query answers
must be structurally identical to a whole-document load, reports must
carry per-batch progress, failures must keep the old atomic semantics
for ``path=``/``text=``, and directory-backed stores must persist
fresh index snapshots across reopen."""

from __future__ import annotations

import os

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.errors import DatabaseError, XMLParseError
from repro.observability import snapshot_counters
from repro.query.database import Database
from repro.xmlmodel.diff import diff_collections
from repro.xmlmodel.serialize import serialize

CORPUS = generate_dblp(DBLPConfig(n_articles=60, n_authors=24, seed=11))
TEXT = serialize(CORPUS, indent="  ")
QUERY = (
    'FOR $a IN document("bib.xml")//article, $y IN $a/year '
    'WHERE $y = "2000" RETURN $a'
)


@pytest.fixture(scope="module")
def reference():
    db = Database()
    db.load(text=TEXT, name="bib.xml")
    return db, db.query(QUERY)


def _assert_same_answers(db, reference):
    _, ref_result = reference
    result = db.query(QUERY)
    report = diff_collections(ref_result.collection, result.collection)
    assert report is None, report


def test_text_with_batch_size_streams(reference):
    db = Database()
    events = []
    report = db.load(
        text=TEXT, name="bib.xml", batch_size=97, on_batch=events.append
    )
    assert report.batches > 1
    assert report.nodes == report.nodes_streamed == CORPUS.subtree_size()
    assert len(events) == report.batches == len(report.progress)
    assert events[-1].nodes_total == report.nodes
    _assert_same_answers(db, reference)
    assert db.verify().ok


def test_text_without_batch_size_keeps_legacy_whole_doc_path(reference):
    db = Database()
    report = db.load(text=TEXT, name="bib.xml")
    assert report.batches == 1
    assert report.progress == ()
    _assert_same_answers(db, reference)


def test_stream_iterable(reference):
    db = Database()
    chunks = [TEXT[i : i + 1000] for i in range(0, len(TEXT), 1000)]
    report = db.load(stream=iter(chunks), name="bib.xml", batch_size=150)
    assert report.batches > 1
    _assert_same_answers(db, reference)


def test_path_streams_even_without_batch_size(tmp_path, reference):
    """Satellite of the subsystem: ``path=`` no longer reads the whole
    file into one string — default batching bounds memory."""
    xml_path = os.path.join(tmp_path, "bib.xml")
    with open(xml_path, "w", encoding="utf-8") as handle:
        handle.write(TEXT)
    db = Database()
    report = db.load(path=xml_path)
    assert report.document == "bib.xml"  # name defaults to the basename
    assert report.nodes_streamed == report.nodes
    assert report.progress  # streaming path reports progress
    _assert_same_answers(db, reference)


def test_path_streaming_persists_fresh_indexes(tmp_path, reference):
    xml_path = os.path.join(tmp_path, "bib.xml")
    with open(xml_path, "w", encoding="utf-8") as handle:
        handle.write(TEXT)
    directory = os.path.join(tmp_path, "db")
    db = Database(directory)
    report = db.load(path=xml_path, batch_size=200)
    assert report.batches > 1
    verdict = db.verify()
    assert verdict.ok and verdict.index_fresh
    _assert_same_answers(db, reference)
    db.close()
    reopened = Database(directory)
    _assert_same_answers(reopened, reference)
    reopened.close()


def test_counters_flow_through_snapshot():
    db = Database()
    report = db.load(text=TEXT, name="bib.xml", batch_size=97)
    counters = snapshot_counters(db.store, db.indexes)
    assert counters["ingest_batches_committed"] == report.batches
    assert counters["ingest_nodes_streamed"] == report.nodes
    assert counters["index_incremental_updates"] > 0
    assert counters["index_rebuild_avoided"] > 0


def test_generation_bumps_per_batch():
    db = Database()
    before = db.store.generation
    report = db.load(text=TEXT, name="bib.xml", batch_size=97)
    assert db.store.generation - before == report.batches


def test_malformed_text_drops_partial_document():
    db = Database()
    truncated = TEXT[: len(TEXT) // 2]
    with pytest.raises(XMLParseError):
        db.load(text=truncated, name="bad.xml", batch_size=50)
    assert "bad.xml" not in db.documents()
    assert db.verify().ok


def test_malformed_path_drops_partial_document(tmp_path):
    xml_path = os.path.join(tmp_path, "bad.xml")
    with open(xml_path, "w", encoding="utf-8") as handle:
        handle.write(TEXT[: len(TEXT) // 2])
    db = Database()
    with pytest.raises(XMLParseError):
        db.load(path=xml_path, batch_size=50)
    assert "bad.xml" not in db.documents()


def test_failed_stream_keeps_committed_batches():
    """``stream=`` is the wire contract: the caller owns retry, so a
    failure keeps the committed prefix readable."""

    def exploding():
        yield TEXT[: len(TEXT) // 2]
        raise OSError("connection reset")

    db = Database()
    with pytest.raises(OSError):
        db.load(stream=exploding(), name="partial.xml", batch_size=60)
    assert "partial.xml" in db.documents()
    assert db.verify().ok


def test_missing_path_is_a_database_error():
    db = Database()
    with pytest.raises(DatabaseError, match="no-such-file"):
        db.load(path="/nonexistent/no-such-file.xml")


def test_name_required_for_text_and_stream():
    db = Database()
    with pytest.raises(DatabaseError):
        db.load(text=TEXT, batch_size=50)
    with pytest.raises(DatabaseError):
        db.load(stream=iter([TEXT]), batch_size=50)
