"""The unified Database.load() API and its deprecated wrappers."""

from __future__ import annotations

import pytest

from repro.datagen.sample import QUERY_1, figure6_database
from repro.errors import DatabaseError
from repro.query.database import Database, LoadReport
from repro.xmlmodel.serialize import serialize


@pytest.fixture
def xml_text(fig6_tree):
    return serialize(fig6_tree, indent=None)


class TestLoadSources:
    def test_load_tree(self, fig6_tree):
        db = Database()
        report = db.load(tree=fig6_tree, name="bib.xml")
        assert isinstance(report, LoadReport)
        assert report.document == "bib.xml"
        assert report.nodes == db.store.n_nodes()
        assert db.documents() == ["bib.xml"]

    def test_load_text(self, xml_text):
        db = Database()
        report = db.load(text=xml_text, name="bib.xml")
        assert report.document == "bib.xml"
        assert len(db.query(QUERY_1)) == 3

    def test_load_path_defaults_name_from_filename(self, xml_text, tmp_path):
        path = tmp_path / "books.xml"
        path.write_text(xml_text, encoding="utf-8")
        db = Database()
        report = db.load(path=str(path))
        assert report.document == "books.xml"

    def test_load_path_with_explicit_name(self, xml_text, tmp_path):
        path = tmp_path / "books.xml"
        path.write_text(xml_text, encoding="utf-8")
        db = Database()
        assert db.load(path=str(path), name="bib.xml").document == "bib.xml"

    def test_generation_advances_per_load(self, fig6_tree):
        db = Database()
        first = db.load(tree=fig6_tree, name="a.xml")
        second = db.load(tree=figure6_database(), name="b.xml")
        assert second.generation == first.generation + 1
        assert second.generation == db.data_generation


class TestLoadValidation:
    def test_no_source_rejected(self):
        with pytest.raises(DatabaseError, match="exactly one source"):
            Database().load(name="bib.xml")

    def test_two_sources_rejected(self, fig6_tree, xml_text):
        with pytest.raises(DatabaseError, match="exactly one source"):
            Database().load(tree=fig6_tree, text=xml_text, name="bib.xml")

    def test_text_requires_name(self, xml_text):
        with pytest.raises(DatabaseError, match="name="):
            Database().load(text=xml_text)

    def test_tree_requires_name(self, fig6_tree):
        with pytest.raises(DatabaseError, match="name="):
            Database().load(tree=fig6_tree)

    def test_positional_source_rejected(self, fig6_tree):
        with pytest.raises(TypeError):
            Database().load(fig6_tree, "bib.xml")


class TestColumnarField:
    def test_pending_then_ready(self, fig6_tree):
        db = Database(columnar=True)  # pinned: env may force columnar off
        assert db.load(tree=fig6_tree, name="bib.xml").columnar == "pending"
        db.query(QUERY_1)
        assert db.load(tree=figure6_database(), name="b.xml").columnar == "pending"

    def test_disabled_without_indexes(self, fig6_tree):
        db = Database(use_indexes=False)
        assert db.load(tree=fig6_tree, name="bib.xml").columnar == "disabled"


class TestDeprecatedWrappers:
    def test_load_tree_warns_and_delegates(self, fig6_tree):
        db = Database()
        with pytest.warns(DeprecationWarning, match="load\\(tree="):
            db.load_tree(fig6_tree, "bib.xml")
        assert db.documents() == ["bib.xml"]

    def test_load_text_warns_and_delegates(self, xml_text):
        db = Database()
        with pytest.warns(DeprecationWarning, match="load\\(text="):
            db.load_text(xml_text, "bib.xml")
        assert len(db.query(QUERY_1)) == 3

    def test_load_file_warns_and_delegates(self, xml_text, tmp_path):
        path = tmp_path / "books.xml"
        path.write_text(xml_text, encoding="utf-8")
        db = Database()
        with pytest.warns(DeprecationWarning, match="load\\(path="):
            db.load_file(str(path))
        assert db.documents() == ["books.xml"]

    def test_load_itself_does_not_warn(self, fig6_tree, recwarn):
        Database().load(tree=fig6_tree, name="bib.xml")
        assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]
