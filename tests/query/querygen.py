"""Seeded random generator of documents + queries in the TAX grouping
family — the differential harness's input (``test_differential.py``).

Every generated query is in one of the shapes the translator
recognizes, so the harness can demand agreement across *all* execution
engines (not just direct vs auto):

* ``grouping`` — the paper's 2-level family: values / aggregates,
  optional SORTBY, optional inner-WHERE value filters, 1- or 2-step
  join condition paths;
* ``nested`` — the 3-level E4 family (institution/author/article) that
  join-graph isolation collapses; the naive join engines legitimately
  reject it (no single join block), which the harness asserts.

Determinism: everything derives from one ``random.Random(seed)``; the
same seed always yields the same document and query sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

INSTITUTIONS = ("UM", "UBC", "MIT", "CMU")
AUTHORS = ("Jack", "Jill", "Ann", "Bob", "Eve", "Tom", "Ada", "Max")
YEARS = tuple(str(year) for year in range(1994, 2003))


@dataclass(frozen=True)
class GeneratedQuery:
    """One generated query and the family it belongs to."""

    text: str
    family: str  # "grouping" | "nested"
    mode: str  # values | count | sum | min | max | avg
    group_tag: str


class QueryGenerator:
    """Document + query stream for one seed."""

    def __init__(self, seed: int):
        self.seed = seed
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    def document(self) -> str:
        """A randomized bibliography: articles with optional titles,
        years, and authors (each author carrying an institution) —
        missing fields, duplicate values, and shared members included."""
        rng = self.rng
        parts = ["<doc_root>"]
        for index in range(rng.randint(6, 14)):
            parts.append("<article>")
            if rng.random() < 0.9:
                parts.append(f"<title>T{index}</title>")
            if rng.random() < 0.85:
                parts.append(f"<year>{rng.choice(YEARS)}</year>")
            for author in rng.sample(AUTHORS, rng.randint(0, 3)):
                institution = rng.choice(INSTITUTIONS)
                parts.append(
                    f"<author>{author}<institution>{institution}</institution></author>"
                )
            parts.append("</article>")
        parts.append("</doc_root>")
        return "".join(parts)

    # ------------------------------------------------------------------
    def queries(self, count: int):
        """Yield ``count`` generated queries (deterministic per seed)."""
        for _ in range(count):
            if self.rng.random() < 0.2:
                yield self._nested_query()
            else:
                yield self._grouping_query()

    def _grouping_query(self) -> GeneratedQuery:
        rng = self.rng
        group_tag, condition = rng.choice(
            [
                ("author", "$b/author"),
                ("year", "$b/year"),
                ("title", "$b/title"),
                ("institution", "$b/author/institution"),
            ]
        )
        mode = rng.choice(["values", "values", "count", "sum", "min", "max", "avg"])
        output = "year" if mode in ("sum", "min", "max", "avg") else rng.choice(
            ["title", "year"]
        )
        where = f"WHERE $g = {condition}"
        if rng.random() < 0.35:
            op = rng.choice(["=", "<", ">", "<=", ">="])
            literal = rng.choice(YEARS)
            where += f' AND $b/year {op} "{literal}"'
        inner = (
            f'FOR $b IN document("bib.xml")//article\n'
            f"{where}\n"
            f"RETURN $b/{output}"
        )
        if mode == "values" and rng.random() < 0.3:
            direction = rng.choice(["ASCENDING", "DESCENDING"])
            inner += f" SORTBY(. {direction})"
        body = f"{{{mode}({inner})}}" if mode != "values" else f"{{{inner}}}"
        text = (
            f'FOR $g IN distinct-values(document("bib.xml")//{group_tag})\n'
            f"RETURN <grp>{{$g}}{body}</grp>"
        )
        return GeneratedQuery(text=text, family="grouping", mode=mode, group_tag=group_tag)

    def _nested_query(self) -> GeneratedQuery:
        rng = self.rng
        mode = rng.choice(["values", "values", "count"])
        output = rng.choice(["title", "year"])
        inner = (
            f'FOR $b IN document("bib.xml")//article\n'
            f"WHERE $a = $b/author\n"
            f"RETURN $b/{output}"
        )
        body = f"{{count({inner})}}" if mode == "count" else f"{{{inner}}}"
        text = (
            f'FOR $i IN distinct-values(document("bib.xml")//institution)\n'
            f"RETURN <instpubs>{{$i}}{{\n"
            f'FOR $a IN distinct-values(document("bib.xml")//author)\n'
            f"WHERE $i = $a/institution\n"
            f"RETURN <authorpubs>{{$a}}{body}</authorpubs>\n"
            f"}}</instpubs>"
        )
        return GeneratedQuery(
            text=text, family="nested", mode=mode, group_tag="institution"
        )
