"""F6-F10 golden tests: the worked example of Sec. 4.1 on the Fig. 6
database, step by step through both pipelines."""

from repro.core.base import TAX_GROUP_ROOT, TAX_PROD_ROOT
from repro.core.duplicates import DuplicateElimination
from repro.core.groupby import GroupBy
from repro.core.join import Join, JoinKind
from repro.core.projection import Projection
from repro.core.selection import Selection
from repro.datagen.sample import QUERY_1
from repro.query.parser import parse_query
from repro.query.rewrite import groupby_pattern, initial_pattern
from repro.query.translate import (
    OUTER_GROUP_LABEL,
    join_right_pattern,
    outer_pattern,
    recognize,
)
from repro.xmlmodel.tree import Collection, DataTree


def database(fig6_tree) -> Collection:
    return Collection([DataTree(fig6_tree)])


class TestFigure7:
    """Outer selection + projection + duplicate elimination: one tree per
    distinct author under the document root."""

    def step(self, fig6_tree) -> Collection:
        pattern = outer_pattern("doc_root", "author")
        selected = Selection(pattern, {OUTER_GROUP_LABEL}).apply(database(fig6_tree))
        projected = Projection(pattern, ["$1", "$2*"]).apply(selected)
        return DuplicateElimination(pattern, "$2").apply(projected)

    def test_three_distinct_authors(self, fig6_tree):
        out = self.step(fig6_tree)
        assert len(out) == 3
        authors = [tree.root.find("author").content for tree in out]
        assert authors == ["Jack", "John", "Jill"]  # Fig. 7 order

    def test_tree_shape(self, fig6_tree):
        out = self.step(fig6_tree)
        for tree in out:
            assert tree.root.tag == "doc_root"
            assert [c.tag for c in tree.root.children] == ["author"]


class TestFigure8:
    """The left outer join: one tax_prod_root tree per (author, article)
    join pair, in author-major order."""

    def step(self, fig6_tree) -> Collection:
        outer = TestFigure7().step(fig6_tree)
        operator = Join(
            outer_pattern("doc_root", "author"),
            join_right_pattern("doc_root", "article", ("author",)),
            conditions=[("$2", "$6")],
            kind=JoinKind.LEFT_OUTER,
            selection_list={"$5"},
        )
        return operator.apply(outer, database(fig6_tree))

    def test_five_join_pairs(self, fig6_tree):
        out = self.step(fig6_tree)
        assert len(out) == 5  # Jack x2, John x2, Jill x1 (Fig. 8)
        assert all(tree.root.tag == TAX_PROD_ROOT for tree in out)

    def test_pairing(self, fig6_tree):
        out = self.step(fig6_tree)
        pairs = []
        for tree in out:
            author = tree.root.children[0].find("author").content
            article = tree.root.children[1].children[0]
            pairs.append((author, article.find("title").content))
        assert pairs == [
            ("Jack", "Querying XML"),
            ("Jack", "XML and the Web"),
            ("John", "Querying XML"),
            ("John", "Hack HTML"),
            ("Jill", "XML and the Web"),
        ]


class TestFigure9:
    """Phase 2 step 1: selection + projection with the Fig. 5.a pattern
    yields the collection of complete article trees."""

    def step(self, fig6_tree) -> Collection:
        pattern = initial_pattern("doc_root", "article")
        selected = Selection(pattern, {"$2"}).apply(database(fig6_tree))
        return Projection(pattern, ["$2*"]).apply(selected)

    def test_three_article_trees(self, fig6_tree):
        out = self.step(fig6_tree)
        assert len(out) == 3
        assert all(tree.root.tag == "article" for tree in out)

    def test_entire_subtrees_kept(self, fig6_tree):
        out = self.step(fig6_tree)
        for got, expected in zip(out, fig6_tree.children):
            assert got.root.structurally_equal(expected)


class TestFigure10:
    """The GROUPBY operator produces the intermediate group trees:
    Jack's, John's, and Jill's groups with their complete articles."""

    def step(self, fig6_tree) -> Collection:
        articles = TestFigure9().step(fig6_tree)
        pattern = groupby_pattern("article", ("author",))
        return GroupBy(pattern, ["$2"]).apply(articles)

    def test_three_groups_in_fig10_order(self, fig6_tree):
        groups = self.step(fig6_tree)
        values = [t.root.children[0].children[0].content for t in groups]
        assert values == ["Jack", "John", "Jill"]
        assert all(t.root.tag == TAX_GROUP_ROOT for t in groups)

    def test_group_members_match_figure(self, fig6_tree):
        groups = self.step(fig6_tree)
        members = {
            t.root.children[0].children[0].content: [
                m.find("title").content for m in t.root.children[1].children
            ]
            for t in groups
        }
        assert members == {
            "Jack": ["Querying XML", "XML and the Web"],
            "John": ["Querying XML", "Hack HTML"],
            "Jill": ["XML and the Web"],
        }

    def test_members_are_complete_source_trees(self, fig6_tree):
        groups = self.step(fig6_tree)
        jack_first = groups[0].root.children[1].children[0]
        assert jack_first.structurally_equal(fig6_tree.children[0])


class TestEndToEnd:
    """The full pipelines produce the paper's final answer."""

    EXPECTED = {
        "Jack": ["Querying XML", "XML and the Web"],
        "John": ["Querying XML", "Hack HTML"],
        "Jill": ["XML and the Web"],
    }

    def test_all_engines(self, db):
        for mode in ("direct", "naive", "groupby", "logical-naive", "logical-groupby"):
            result = db.query(QUERY_1, plan=mode)
            got = {
                tree.root.children[0].content: [
                    c.content for c in tree.root.children[1:]
                ]
                for tree in result.collection
            }
            assert got == self.EXPECTED, mode

    def test_query_recognized_as_grouping(self):
        query = recognize(parse_query(QUERY_1))
        assert query.group_tag == "author"
