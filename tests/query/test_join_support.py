"""Label-only path navigation (descend_path) tests."""

from hypothesis import given, settings, strategies as st

from repro.indexing.manager import IndexManager
from repro.query.physical_join_support import descend_path
from repro.storage.store import NodeStore
from repro.xmlmodel.node import XMLNode, element


def setup(tree):
    store = NodeStore()
    store.load_tree(tree, "t.xml")
    indexes = IndexManager(store)
    indexes.build()
    return store, indexes


def labels_of(indexes, tag):
    return indexes.labels_for_tag(tag)


class TestDescendPath:
    def sample(self):
        return element(
            "doc_root",
            None,
            element(
                "article",
                None,
                element("title", "T1"),
                element("author", "A", element("institution", "UM")),
            ),
            element("article", None, element("author", "B")),
            element("article", None, element("title", "T3"), element("title", "T3b")),
        )

    def test_single_step_counts(self):
        store, indexes = setup(self.sample())
        articles = labels_of(indexes, "article")
        reached = descend_path(indexes, articles, ("title",))
        counts = [len(reached[label.nid]) for label in articles]
        assert counts == [1, 0, 2]

    def test_two_step_path(self):
        store, indexes = setup(self.sample())
        articles = labels_of(indexes, "article")
        reached = descend_path(indexes, articles, ("author", "institution"))
        counts = [len(reached[label.nid]) for label in articles]
        assert counts == [1, 0, 0]

    def test_missing_tag_gives_empty(self):
        store, indexes = setup(self.sample())
        articles = labels_of(indexes, "article")
        reached = descend_path(indexes, articles, ("ghost",))
        assert all(len(v) == 0 for v in reached.values())

    def test_empty_path_returns_starts(self):
        store, indexes = setup(self.sample())
        articles = labels_of(indexes, "article")
        reached = descend_path(indexes, articles, ())
        assert all(
            len(v) == 1 and v[0].nid == nid for nid, v in reached.items()
        )

    def test_no_data_access(self):
        store, indexes = setup(self.sample())
        articles = labels_of(indexes, "article")
        store.reset_statistics()
        descend_path(indexes, articles, ("author", "institution"))
        assert store.counters.record_lookups == 0
        assert store.counters.value_lookups == 0


tags = st.sampled_from(["a", "b", "c"])


@st.composite
def shaped_trees(draw, depth=3):
    node = XMLNode(draw(tags))
    if depth > 0:
        for child in draw(st.lists(shaped_trees(depth=depth - 1), max_size=3)):
            node.append_child(child)
    return node


@settings(max_examples=40, deadline=None)
@given(tree=shaped_trees(), path=st.lists(tags, min_size=1, max_size=2).map(tuple))
def test_matches_tree_navigation(tree, path):
    """descend_path over sibling subtrees agrees with in-memory child
    navigation."""
    root = element("doc_root", None)
    for child in list(tree.children):
        tree.remove_child(child)
        root.append_child(child)
    store, indexes = setup(root)
    starts = [
        label
        for label in indexes.labels_for_tag(root.children[0].tag)
        if store.parent(label.nid) == 0  # top-level siblings only (non-nesting)
    ] if root.children else []
    if not starts:
        return
    reached = descend_path(indexes, starts, path)

    def navigate(node):
        frontier = [node]
        for name in path:
            frontier = [c for n in frontier for c in n.children if c.tag == name]
        return len(frontier)

    by_nid = {node.nid: node for node in root.iter()}
    for label in starts:
        assert len(reached[label.nid]) == navigate(by_nid[label.nid])
