"""Grouping-rewrite tests: Phase 1 detection and Phase 2 plan shape."""

import pytest

from repro.datagen.sample import QUERY_1, QUERY_2, QUERY_COUNT
from repro.errors import RewriteError
from repro.pattern.pattern import Axis
from repro.query.parser import parse_query
from repro.query.plan import PlanNode, scan
from repro.query.rewrite import detect, groupby_pattern, initial_pattern, rewrite
from repro.query.translate import recognize, naive_plan


def plan_for(text: str) -> PlanNode:
    return naive_plan(recognize(parse_query(text)), "doc_root")


class TestDetection:
    def test_detect_query1(self):
        detected = detect(plan_for(QUERY_1))
        assert detected.doc == "bib.xml"
        assert detected.root_tag == "doc_root"
        assert detected.inner_tag == "article"
        assert detected.condition_path == ("author",)

    def test_subset_mapping_recorded(self):
        detected = detect(plan_for(QUERY_1))
        assert detected.subset_mapping == {"$1": "$4", "$2": "$6"}

    def test_detect_multi_step_path(self):
        text = """
        FOR $i IN distinct-values(document("bib.xml")//institution)
        RETURN <instpubs>{$i}{
            FOR $b IN document("bib.xml")//article
            WHERE $i = $b/author/institution RETURN $b/title}</instpubs>
        """
        detected = detect(plan_for(text))
        assert detected.condition_path == ("author", "institution")

    def test_non_stitch_root_rejected(self):
        with pytest.raises(RewriteError):
            detect(scan("bib.xml"))

    def test_missing_join_rejected(self):
        plan = plan_for(QUERY_1)
        # Replace the join subtree with a plain scan.
        stripped = PlanNode("stitch", dict(plan.params), [scan("bib.xml")])
        with pytest.raises(RewriteError):
            detect(stripped)

    def test_join_right_input_not_database_rejected(self):
        plan = plan_for(QUERY_1)
        join = plan.find("left_outer_join")[0]
        join.inputs[1] = PlanNode("select", {"pattern": None, "sl": frozenset()}, [scan("bib.xml")])
        with pytest.raises(RewriteError):
            detect(plan)

    def test_non_subset_patterns_rejected(self):
        """If the outer pattern requires something the inner lacks,
        Phase 1 must not fire."""
        plan = plan_for(QUERY_1)
        join = plan.find("left_outer_join")[0]
        from repro.query.translate import outer_pattern

        join.params["left_pattern"] = outer_pattern("doc_root", "editor")
        with pytest.raises(RewriteError):
            detect(plan)


class TestPhase2Patterns:
    def test_initial_pattern_fig5a(self):
        pattern = initial_pattern("doc_root", "article")
        assert pattern.labels() == ["$1", "$2"]
        assert pattern.node("$2").predicate.tag_constraint() == "article"

    def test_groupby_pattern_fig5b(self):
        pattern = groupby_pattern("article", ("author",))
        assert pattern.labels() == ["$1", "$2"]
        [(parent, child, axis)] = pattern.edges()
        assert axis is Axis.PC
        assert parent.predicate.tag_constraint() == "article"

    def test_groupby_pattern_chain(self):
        pattern = groupby_pattern("article", ("author", "institution"))
        assert pattern.labels() == ["$1", "$1a", "$2"]


class TestRewrittenPlan:
    def test_query1_rewrite_shape(self):
        rewritten = rewrite(plan_for(QUERY_1))
        ops = [node.op for node in rewritten.walk()]
        assert ops == ["project_groups", "groupby", "project", "select", "scan"]

    def test_no_join_in_rewritten_plan(self):
        rewritten = rewrite(plan_for(QUERY_1))
        assert rewritten.find("left_outer_join") == []

    def test_output_spec_values_mode(self):
        spec = rewrite(plan_for(QUERY_1)).params["spec"]
        assert spec.return_tag == "authorpubs"
        assert spec.mode == "values"
        assert spec.member_path == ("title",)

    def test_output_spec_count_mode(self):
        spec = rewrite(plan_for(QUERY_COUNT)).params["spec"]
        assert spec.mode == "count"

    def test_groupby_params(self):
        rewritten = rewrite(plan_for(QUERY_1))
        groupby = rewritten.find("groupby")[0]
        # Starred basis: the grouping element's subtree appears in the
        # output (Fig. 5.d's $4*).
        assert groupby.params["basis"] == ["$2*"]
        assert groupby.params["ordering"] == []

    def test_nested_and_unnested_rewrite_identically(self):
        """Sec. 4.2: "After the rewrite optimization, the GROUPBY
        obtained is identical in both cases."""
        a = rewrite(plan_for(QUERY_1))
        b = rewrite(plan_for(QUERY_2))
        assert a.explain() == b.explain()

    def test_rewrite_of_non_grouping_plan_rejected(self):
        with pytest.raises(RewriteError):
            rewrite(scan("bib.xml"))
