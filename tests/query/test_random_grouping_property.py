"""Property test: on random documents and random grouping-query
parameters, every engine returns the same collection.

This complements the seeded DBLP agreement tests with
hypothesis-generated shapes: varying key tags, missing keys, repeated
keys, values/count modes, and optional SORTBY.
"""

from hypothesis import given, settings, strategies as st

from repro.query.database import Database
from repro.xmlmodel.diff import diff_collections
from repro.xmlmodel.node import element
from repro.xmlmodel.serialize import serialize

KEY_TAGS = ("kind", "owner")
VALUES = ("a", "b", "c")


@st.composite
def documents(draw):
    root = element("doc_root", None)
    for index in range(draw(st.integers(1, 8))):
        record = root.add("rec")
        record.add("val", f"v{index}")
        for tag in KEY_TAGS:
            for value in draw(st.lists(st.sampled_from(VALUES), max_size=2)):
                record.add(tag, value)
    return root


@st.composite
def query_params(draw):
    group_tag = draw(st.sampled_from(KEY_TAGS))
    mode = draw(st.sampled_from(["values", "count"]))
    sort = draw(st.booleans()) and mode == "values"
    return group_tag, mode, sort


def build_query(group_tag: str, mode: str, sort: bool) -> str:
    inner = (
        f'FOR $b IN document("bib.xml")//rec\n'
        f"WHERE $g = $b/{group_tag}\n"
        f"RETURN $b/val"
    )
    if sort:
        inner += " SORTBY(. DESCENDING)"
    body = f"{{count({inner})}}" if mode == "count" else f"{{{inner}}}"
    return (
        f'FOR $g IN distinct-values(document("bib.xml")//{group_tag})\n'
        f"RETURN <grp>{{$g}}{body}</grp>"
    )


@settings(max_examples=40, deadline=None)
@given(doc=documents(), params=query_params())
def test_engines_agree_on_random_grouping(doc, params):
    group_tag, mode, sort = params
    db = Database()
    db.load(text=serialize(doc, indent=None), name="bib.xml")
    query = build_query(group_tag, mode, sort)
    reference = db.query(query, plan="direct").collection
    for engine in ("naive", "naive-hash", "groupby", "logical-naive", "logical-groupby"):
        got = db.query(query, plan=engine).collection
        report = diff_collections(got, reference)
        assert report is None, f"{engine}: {report}\nquery:\n{query}"


@settings(max_examples=25, deadline=None)
@given(doc=documents())
def test_groupby_covers_every_key_value(doc):
    """Completeness: the groupby plan emits one group per distinct value
    present in the data, no more, no less."""
    db = Database()
    db.load(text=serialize(doc, indent=None), name="bib.xml")
    query = build_query("kind", "count", sort=False)
    result = db.query(query, plan="groupby").collection
    got = {tree.root.children[0].content for tree in result}
    expected = {node.content for node in doc.find_descendants("kind")}
    assert got == expected
