"""XQuery-subset parser tests."""

import pytest

from repro.errors import XQuerySyntaxError
from repro.query.ast import (
    Comparison,
    CountCall,
    DistinctValues,
    DocumentCall,
    ElementConstructor,
    EmbeddedExpr,
    FLWR,
    ForClause,
    LetClause,
    NumberLiteral,
    PathExpr,
    StringLiteral,
    TextItem,
    VarRef,
    render,
)
from repro.query.parser import parse_query


class TestPrimaries:
    def test_string_literal(self):
        assert parse_query('"hello"') == StringLiteral("hello")

    def test_single_quoted_string(self):
        assert parse_query("'hi'") == StringLiteral("hi")

    def test_number(self):
        assert parse_query("42") == NumberLiteral("42")

    def test_variable(self):
        assert parse_query("$a") == VarRef("a")

    def test_document_call(self):
        assert parse_query('document("bib.xml")') == DocumentCall("bib.xml")

    def test_parenthesized(self):
        assert parse_query('("x")') == StringLiteral("x")

    def test_comment_skipped(self):
        assert parse_query('(: a comment :) "x"') == StringLiteral("x")


class TestPaths:
    def test_descendant_step(self):
        expr = parse_query('document("b")//author')
        assert isinstance(expr, PathExpr)
        assert expr.steps[0].axis == "//"
        assert expr.steps[0].name == "author"

    def test_child_chain(self):
        expr = parse_query("$b/author/institution")
        assert [s.name for s in expr.steps] == ["author", "institution"]
        assert all(s.axis == "/" for s in expr.steps)

    def test_wildcard_step(self):
        expr = parse_query("$b/*")
        assert expr.steps[0].name == "*"

    def test_predicate_with_variable(self):
        expr = parse_query('document("b")//article[author = $a]/title')
        step = expr.steps[0]
        assert step.predicate.path == ("author",)
        assert step.predicate.op == "="
        assert step.predicate.right == VarRef("a")
        assert expr.steps[1].name == "title"

    def test_predicate_with_literal(self):
        expr = parse_query('document("b")//article[year > "1995"]')
        predicate = expr.steps[0].predicate
        assert predicate.op == ">"
        assert predicate.right == StringLiteral("1995")

    def test_predicate_multi_step_path(self):
        expr = parse_query("$d//article[author/institution = $i]")
        assert expr.steps[0].predicate.path == ("author", "institution")


class TestFunctions:
    def test_distinct_values(self):
        expr = parse_query('distinct-values(document("b")//author)')
        assert isinstance(expr, DistinctValues)

    def test_count(self):
        expr = parse_query("count($t)")
        assert expr == CountCall(VarRef("t"))

    def test_unknown_function_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("mystery($x)")

    def test_document_requires_string(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("document($x)")


class TestFLWR:
    def test_simple_for_return(self):
        expr = parse_query('FOR $a IN document("b")//author RETURN $a')
        assert isinstance(expr, FLWR)
        assert expr.clauses == (ForClause("a", PathExpr(DocumentCall("b"), expr.clauses[0].source.steps)),)
        assert expr.ret == VarRef("a")

    def test_lowercase_keywords(self):
        expr = parse_query('for $a in document("b")//author return $a')
        assert isinstance(expr, FLWR)

    def test_let_clause(self):
        expr = parse_query('LET $t := document("b")//title RETURN $t')
        assert isinstance(expr.clauses[0], LetClause)

    def test_where_comparison(self):
        expr = parse_query(
            'FOR $b IN document("b")//article WHERE $a = $b/author RETURN $b'
        )
        assert isinstance(expr.where, Comparison)
        assert expr.where.left == VarRef("a")

    def test_where_and(self):
        expr = parse_query(
            'FOR $b IN document("b")//article '
            'WHERE $a = $b/author AND $b/year = "1999" RETURN $b'
        )
        from repro.query.ast import AndExpr

        assert isinstance(expr.where, AndExpr)
        assert len(expr.where.parts) == 2

    def test_multiple_for_vars(self):
        expr = parse_query(
            'FOR $a IN document("b")//x, $b IN document("b")//y RETURN $a'
        )
        assert len(expr.clauses) == 2

    def test_nested_flwr_in_return(self):
        expr = parse_query(
            'FOR $a IN document("b")//author RETURN '
            '<out>{FOR $b IN document("b")//article RETURN $b/title}</out>'
        )
        inner = expr.ret.items[0].expr
        assert isinstance(inner, FLWR)

    def test_missing_return_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query('FOR $a IN document("b")//x')

    def test_missing_in_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query('FOR $a document("b")//x RETURN $a')


class TestConstructors:
    def test_empty_element(self):
        expr = parse_query("<a/>")
        assert expr == ElementConstructor("a", (), ())

    def test_attributes(self):
        expr = parse_query('<a k="v" l="w"/>')
        assert expr.attributes == (("k", "v"), ("l", "w"))

    def test_text_content(self):
        expr = parse_query("<a>hello world</a>")
        assert expr.items == (TextItem("hello world"),)

    def test_embedded_expression(self):
        expr = parse_query("<a>{$x}</a>")
        assert expr.items == (EmbeddedExpr(VarRef("x")),)

    def test_nested_constructor(self):
        expr = parse_query("<a><b>{$x}</b></a>")
        assert isinstance(expr.items[0], ElementConstructor)

    def test_mismatched_closing_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("<a></b>")

    def test_unterminated_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("<a>{$x}")


class TestPaperQueries:
    def test_query1_parses(self):
        from repro.datagen.sample import QUERY_1

        expr = parse_query(QUERY_1)
        assert isinstance(expr, FLWR)
        constructor = expr.ret
        assert constructor.tag == "authorpubs"
        assert len([i for i in constructor.items if isinstance(i, EmbeddedExpr)]) == 2

    def test_query2_parses(self):
        from repro.datagen.sample import QUERY_2

        expr = parse_query(QUERY_2)
        assert isinstance(expr.clauses[1], LetClause)

    def test_count_query_parses(self):
        from repro.datagen.sample import QUERY_COUNT

        expr = parse_query(QUERY_COUNT)
        embedded = [i for i in expr.ret.items if isinstance(i, EmbeddedExpr)]
        assert isinstance(embedded[1].expr, CountCall)

    def test_render_roundtrip(self):
        from repro.datagen.sample import QUERY_1

        expr = parse_query(QUERY_1)
        again = parse_query(render(expr))
        assert again == expr


class TestErrors:
    def test_trailing_input_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("$a $b")

    def test_error_position(self):
        try:
            parse_query("FOR $a IN\n  mystery($x) RETURN $a")
        except XQuerySyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected syntax error")

    def test_empty_input_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("")
