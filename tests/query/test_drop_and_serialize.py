"""Document removal and result serialization."""

import os

import pytest

from repro.datagen.sample import QUERY_1, figure6_database
from repro.errors import DatabaseError
from repro.query.database import Database
from repro.xmlmodel.parse import parse_document


class TestDropDocument:
    def test_drop_removes_from_catalog(self, db):
        db.drop_document("bib.xml")
        assert db.documents() == []
        with pytest.raises(DatabaseError):
            db.store.document("bib.xml")

    def test_drop_unknown_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.drop_document("ghost.xml")

    def test_queries_stop_seeing_dropped_document(self, db):
        db.load(text=
            "<doc_root><article><title>X</title><author>Z</author></article></doc_root>", name="other.xml",
        )
        db.drop_document("bib.xml")
        query = QUERY_1.replace("bib.xml", "other.xml")
        result = db.query(query, plan="groupby")
        assert len(result.collection) == 1
        assert result.collection[0].root.children[0].content == "Z"

    def test_indexes_rebuilt_without_dropped_postings(self, db):
        before = db.indexes.tag_cardinality("author")
        assert before == 5
        db.load(text=
            "<doc_root><article><author>Z</author></article></doc_root>", name="o.xml"
        )
        db.drop_document("bib.xml")
        assert db.indexes.tag_cardinality("author") == 1

    def test_drop_persists(self, tmp_path):
        directory = os.path.join(tmp_path, "db")
        with Database(directory=directory) as database:
            database.load(tree=figure6_database(), name="bib.xml")
            database.load(text="<doc_root><x>1</x></doc_root>", name="b.xml")
            database.drop_document("bib.xml")
        with Database(directory=directory) as database:
            assert database.documents() == ["b.xml"]

    def test_remaining_document_still_queryable_after_drop(self, db):
        db.load(tree=figure6_database().deep_copy(), name="second.xml")
        db.drop_document("bib.xml")
        query = QUERY_1.replace("bib.xml", "second.xml")
        result = db.query(query, plan="groupby")
        assert len(result.collection) == 3


class TestResultSerialization:
    def test_to_xml_parses_back(self, db):
        result = db.query(QUERY_1, plan="groupby")
        text = result.to_xml(indent=None)
        fragments = text.splitlines()
        assert len(fragments) == 3
        for fragment, tree in zip(fragments, result.collection):
            assert parse_document(fragment).structurally_equal(tree.root)

    def test_to_xml_indented(self, db):
        text = db.query(QUERY_1).to_xml()
        assert "<authorpubs>" in text
        assert text.count("</authorpubs>") == 3
