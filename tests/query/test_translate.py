"""Naive-parse translation tests (Sec. 4.1/4.2)."""

import pytest

from repro.datagen.sample import QUERY_1, QUERY_2, QUERY_COUNT
from repro.errors import TranslationError
from repro.pattern.pattern import Axis
from repro.query.parser import parse_query
from repro.query.translate import (
    GroupingQuery,
    join_right_pattern,
    naive_plan,
    outer_pattern,
    recognize,
    translate,
)


class TestRecognition:
    def test_query1_nested_form(self):
        query = recognize(parse_query(QUERY_1))
        assert query == GroupingQuery(
            doc="bib.xml",
            group_tag="author",
            inner_tag="article",
            condition_path=("author",),
            output_path=("title",),
            return_tag="authorpubs",
            mode="values",
            nested_form=True,
        )

    def test_query2_unnested_form(self):
        query = recognize(parse_query(QUERY_2))
        assert not query.nested_form
        assert query.mode == "values"
        assert query.condition_path == ("author",)
        assert query.output_path == ("title",)

    def test_count_query(self):
        query = recognize(parse_query(QUERY_COUNT))
        assert query.mode == "count"

    def test_nested_count_form(self):
        text = """
        FOR $a IN distinct-values(document("bib.xml")//author)
        RETURN <authorpubs>{$a}{count(
            FOR $b IN document("bib.xml")//article
            WHERE $a = $b/author RETURN $b/title)}</authorpubs>
        """
        query = recognize(parse_query(text))
        assert query.mode == "count"
        assert query.nested_form

    def test_institution_variant_multi_step_path(self):
        text = """
        FOR $i IN distinct-values(document("bib.xml")//institution)
        RETURN <instpubs>{$i}{
            FOR $b IN document("bib.xml")//article
            WHERE $i = $b/author/institution RETURN $b/title}</instpubs>
        """
        query = recognize(parse_query(text))
        assert query.group_tag == "institution"
        assert query.condition_path == ("author", "institution")

    def test_reversed_equality_recognized(self):
        text = """
        FOR $a IN distinct-values(document("bib.xml")//author)
        RETURN <o>{$a}{
            FOR $b IN document("bib.xml")//article
            WHERE $b/author = $a RETURN $b/title}</o>
        """
        assert recognize(parse_query(text)).condition_path == ("author",)

    def test_outer_where_rejected_not_dropped(self):
        """Regression: an outer WHERE must reject translation (and fall
        back to direct execution), never be silently discarded."""
        text = """
        FOR $a IN distinct-values(document("bib.xml")//author)
        WHERE $a = "Jack"
        RETURN <o>{$a}{FOR $b IN document("bib.xml")//article
        WHERE $a = $b/author RETURN $b/title}</o>
        """
        with pytest.raises(TranslationError):
            recognize(parse_query(text))

    def test_outer_where_auto_falls_back(self, db):
        text = """
        FOR $a IN distinct-values(document("bib.xml")//author)
        WHERE $a = "Jack"
        RETURN <o>{$a}{FOR $b IN document("bib.xml")//article
        WHERE $a = $b/author RETURN $b/title}</o>
        """
        result = db.query(text, plan="auto")
        assert result.plan_mode == "direct"
        assert len(result.collection) == 1

    @pytest.mark.parametrize(
        "text",
        [
            '"just a literal"',
            'FOR $a IN document("b")//author RETURN $a',  # no distinct-values
            # RETURN is not a constructor:
            'FOR $a IN distinct-values(document("b")//author) RETURN $a',
            # inner FOR over a different document:
            """FOR $a IN distinct-values(document("b")//author)
               RETURN <o>{$a}{FOR $x IN document("c")//article
               WHERE $a = $x/author RETURN $x/title}</o>""",
            # WHERE compares two paths, not the outer variable:
            """FOR $a IN distinct-values(document("b")//author)
               RETURN <o>{$a}{FOR $x IN document("b")//article
               WHERE $x/author = $x/editor RETURN $x/title}</o>""",
            # first argument is not the outer variable:
            """FOR $a IN distinct-values(document("b")//author)
               RETURN <o>{count($a)}{FOR $x IN document("b")//article
               WHERE $a = $x/author RETURN $x/title}</o>""",
        ],
    )
    def test_unsupported_shapes_rejected(self, text):
        with pytest.raises(TranslationError):
            recognize(parse_query(text))


class TestPatterns:
    def test_outer_pattern_fig4a(self):
        pattern = outer_pattern("doc_root", "author")
        assert pattern.labels() == ["$1", "$2"]
        [(_, child, axis)] = pattern.edges()
        assert axis is Axis.AD
        assert child.predicate.tag_constraint() == "author"

    def test_join_right_pattern_fig4b(self):
        pattern = join_right_pattern("doc_root", "article", ("author",))
        assert pattern.labels() == ["$4", "$5", "$6"]
        edges = pattern.edges()
        assert [axis for _, _, axis in edges] == [Axis.AD, Axis.PC]

    def test_join_right_pattern_multi_step(self):
        pattern = join_right_pattern("doc_root", "article", ("author", "institution"))
        assert pattern.labels() == ["$4", "$5", "$5a", "$6"]
        assert pattern.node("$6").predicate.tag_constraint() == "institution"


class TestNaivePlanShape:
    def plan(self, text=QUERY_1):
        query = recognize(parse_query(text))
        return naive_plan(query, "doc_root")

    def test_root_is_stitch(self):
        assert self.plan().op == "stitch"

    def test_pipeline_ops_in_order(self):
        ops = [node.op for node in self.plan().walk()]
        assert ops == [
            "stitch",
            "dupelim",
            "left_outer_join",
            "dupelim",
            "project",
            "select",
            "scan",
            "scan",
        ]

    def test_join_inputs(self):
        plan = self.plan()
        join = plan.find("left_outer_join")[0]
        assert join.inputs[1].op == "scan"
        assert join.params["conditions"] == [("$2", "$6")]
        assert join.params["sl"] == frozenset({"$5", "$2"})

    def test_outer_dupelim_on_group_label(self):
        plan = self.plan()
        outer_dup = plan.find("dupelim")[1]
        assert outer_dup.params["label"] == "$2"

    def test_count_mode_stitch_args(self):
        plan = self.plan(QUERY_COUNT)
        spec = plan.params["spec"]
        kinds = [arg.kind for arg in spec.args]
        assert kinds == ["outer", "count"]

    def test_values_mode_stitch_args(self):
        spec = self.plan().params["spec"]
        kinds = [arg.kind for arg in spec.args]
        assert kinds == ["outer", "members"]
        assert spec.args[1].member_path == ("title",)

    def test_query1_and_query2_same_plan_shape(self):
        """Sec. 4.2: nested and unnested forms translate equivalently."""
        ops1 = [node.op for node in self.plan(QUERY_1).walk()]
        ops2 = [node.op for node in self.plan(QUERY_2).walk()]
        assert ops1 == ops2

    def test_translate_entry_point(self):
        query, plan = translate(parse_query(QUERY_1), "doc_root")
        assert query.group_tag == "author"
        assert plan.op == "stitch"

    def test_explain_renders(self):
        text = self.plan().explain()
        assert "left_outer_join" in text
        assert "scan bib.xml" in text
