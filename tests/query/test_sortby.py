"""SORTBY support: the user-requested ordering list of Sec. 4.1 step 2
("only if sorting was requested by the user") and Fig. 3's ordering."""

import pytest

from repro.errors import TranslationError, XQuerySyntaxError
from repro.query.ast import SortKey
from repro.query.parser import parse_query
from repro.query.rewrite import rewrite
from repro.query.translate import naive_plan, recognize

SORTED_QUERY = """
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
{$a}
{
FOR $b IN document("bib.xml")//article
WHERE $a = $b/author
RETURN $b/title SORTBY(. DESCENDING)
}
</authorpubs>
"""


class TestParsing:
    def test_dot_key(self):
        expr = parse_query('FOR $x IN document("d")//a RETURN $x SORTBY(.)')
        assert expr.sortby == (SortKey((".",), "ASCENDING"),)

    def test_named_key_with_direction(self):
        expr = parse_query(
            'FOR $x IN document("d")//a RETURN $x SORTBY(title DESCENDING)'
        )
        assert expr.sortby == (SortKey(("title",), "DESCENDING"),)

    def test_path_key(self):
        expr = parse_query(
            'FOR $x IN document("d")//a RETURN $x SORTBY(author/institution)'
        )
        assert expr.sortby[0].path == ("author", "institution")

    def test_multiple_keys(self):
        expr = parse_query(
            'FOR $x IN document("d")//a RETURN $x SORTBY(year DESCENDING, title)'
        )
        assert len(expr.sortby) == 2
        assert expr.sortby[1].direction == "ASCENDING"

    def test_lowercase(self):
        expr = parse_query('for $x in document("d")//a return $x sortby(title)')
        assert expr.sortby

    def test_bad_direction_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query('FOR $x IN document("d")//a RETURN $x SORTBY(title sideways)')


class TestInterpreter:
    def test_sorts_returned_titles(self, db):
        result = db.query(SORTED_QUERY, plan="direct").collection
        jack = result[0].root
        titles = [c.content for c in jack.children if c.tag == "title"]
        assert titles == ["XML and the Web", "Querying XML"]

    def test_ascending_default(self, db):
        query = SORTED_QUERY.replace("SORTBY(. DESCENDING)", "SORTBY(.)")
        result = db.query(query, plan="direct").collection
        jack = result[0].root
        titles = [c.content for c in jack.children if c.tag == "title"]
        assert titles == ["Querying XML", "XML and the Web"]

    def test_numeric_sort(self, db):
        query = (
            'FOR $y IN document("bib.xml")//year RETURN <y>{$y}</y> SORTBY(.)'
        )
        result = db.query(query, plan="direct").collection
        assert len(result) == 1  # only one year element in Fig. 6


class TestTranslation:
    def test_ordering_recorded(self):
        query = recognize(parse_query(SORTED_QUERY))
        assert query.ordering == ((("title",), "DESCENDING"),)

    def test_ordering_reaches_groupby_plan(self):
        plan = rewrite(naive_plan(recognize(parse_query(SORTED_QUERY)), "doc_root"))
        groupby = plan.find("groupby")[0]
        # Ordering travels as (path, direction) pairs navigated per
        # member — NOT as required pattern chains, which would exclude
        # members lacking the sort path and drop whole groups.
        assert groupby.params["ordering"] == [(("title",), "DESCENDING")]
        pattern = groupby.params["pattern"]
        assert not pattern.has_node("$s0")

    def test_sortby_under_count_rejected(self):
        text = """
        FOR $a IN distinct-values(document("bib.xml")//author)
        RETURN <o>{$a}{count(
            FOR $b IN document("bib.xml")//article
            WHERE $a = $b/author RETURN $b/title SORTBY(.))}</o>
        """
        with pytest.raises(TranslationError):
            recognize(parse_query(text))

    def test_outer_sortby_rejected(self):
        text = """
        FOR $a IN distinct-values(document("bib.xml")//author)
        RETURN <o>{$a}{
            FOR $b IN document("bib.xml")//article
            WHERE $a = $b/author RETURN $b/title}</o>
        SORTBY(.)
        """
        with pytest.raises(TranslationError):
            recognize(parse_query(text))


class TestEngineAgreement:
    @pytest.mark.parametrize(
        "mode", ["naive", "naive-hash", "groupby", "logical-naive", "logical-groupby"]
    )
    def test_all_engines_match_direct(self, db, mode):
        reference = db.query(SORTED_QUERY, plan="direct").collection
        got = db.query(SORTED_QUERY, plan=mode).collection
        assert got.structurally_equal(reference)

    def test_randomized_workload(self):
        from repro.datagen.dblp import DBLPConfig, generate_dblp
        from repro.query.database import Database

        db = Database()
        db.load(tree=generate_dblp(DBLPConfig(n_articles=50, n_authors=12, seed=21)), name="bib.xml")
        reference = db.query(SORTED_QUERY, plan="direct").collection
        for mode in ("naive", "groupby", "logical-groupby"):
            assert db.query(SORTED_QUERY, plan=mode).collection.structurally_equal(
                reference
            ), mode
