"""Extended interpreter coverage: multi-variable FOR, nested LET, deep
paths, wildcards, and error behaviour."""

import pytest

from repro.errors import TranslationError
from repro.query.database import Database
from repro.query.interpreter import Interpreter
from repro.query.parser import parse_query


@pytest.fixture
def deep_db():
    db = Database()
    db.load(text=
        """
        <doc_root>
          <conf>
            <session>
              <article><title>T1</title><author>A</author></article>
              <article><title>T2</title><author>B</author></article>
            </session>
            <session>
              <article><title>T3</title><author>A</author></article>
            </session>
          </conf>
          <journal>
            <article><title>T4</title><author>C</author></article>
          </journal>
        </doc_root>
        """, name="lib.xml",
    )
    return db


def values(db, text):
    interp = Interpreter(db.store, db.indexes)
    return [interp._atomize(item) for item in interp.evaluate(parse_query(text))]


class TestDeepPaths:
    def test_descendant_anywhere(self, deep_db):
        assert values(deep_db, 'document("lib.xml")//title') == ["T1", "T2", "T3", "T4"]

    def test_descendant_within_child(self, deep_db):
        out = values(deep_db, 'document("lib.xml")/conf//title')
        assert out == ["T1", "T2", "T3"]

    def test_descendant_of_descendant(self, deep_db):
        out = values(deep_db, 'document("lib.xml")//session//author')
        assert out == ["A", "B", "A"]

    def test_wildcard_then_named(self, deep_db):
        out = values(deep_db, 'document("lib.xml")/*/*/article/title')
        assert out == ["T1", "T2", "T3"]

    def test_mixed_axes_dedup(self, deep_db):
        # //article from overlapping contexts must not duplicate.
        out = values(deep_db, 'document("lib.xml")//conf//article/title')
        assert out == ["T1", "T2", "T3"]


class TestMultiVariableFor:
    def test_cartesian_iteration(self, deep_db):
        text = (
            'FOR $s IN document("lib.xml")//session, '
            '$j IN document("lib.xml")//journal '
            "RETURN count($s)"
        )
        # 2 sessions x 1 journal = 2 bindings.
        assert values(deep_db, text) == ["1", "1"]

    def test_dependent_inner_source(self, deep_db):
        text = (
            'FOR $s IN document("lib.xml")//session, $a IN $s/article '
            "RETURN $a/title"
        )
        assert values(deep_db, text) == ["T1", "T2", "T3"]

    def test_nested_let_rebinding(self, deep_db):
        text = (
            'FOR $s IN document("lib.xml")//session '
            "LET $t := $s/article/title "
            "LET $n := count($t) "
            "RETURN $n"
        )
        assert values(deep_db, text) == ["2", "1"]


class TestWhereShapes:
    def test_where_on_counted_path(self, deep_db):
        text = (
            'FOR $s IN document("lib.xml")//session '
            'WHERE $s/article/author = "B" RETURN count($s/article)'
        )
        assert values(deep_db, text) == ["2"]

    def test_conjunction(self, deep_db):
        text = (
            'FOR $a IN document("lib.xml")//article '
            'WHERE $a/author = "A" AND $a/title = "T3" RETURN $a/title'
        )
        assert values(deep_db, text) == ["T3"]

    def test_inequality(self, deep_db):
        text = (
            'FOR $a IN document("lib.xml")//article '
            'WHERE $a/author != "A" RETURN $a/title'
        )
        assert values(deep_db, text) == ["T2", "T4"]


class TestErrors:
    def test_step_on_string_rejected(self, deep_db):
        with pytest.raises(TranslationError):
            values(deep_db, 'FOR $x IN "literal" RETURN $x/step')

    def test_attribute_on_string_rejected(self, deep_db):
        with pytest.raises(TranslationError):
            values(deep_db, 'FOR $x IN "literal" RETURN $x/@id')


class TestConstructorComposition:
    def test_nested_constructors_with_bindings(self, deep_db):
        result = deep_db.query(
            'FOR $s IN document("lib.xml")//session '
            "RETURN <wrap><n>{count($s/article)}</n></wrap>",
            plan="direct",
        ).collection
        assert [t.root.children[0].content for t in result] == ["2", "1"]

    def test_constructor_inside_flwr_inside_constructor(self, deep_db):
        result = deep_db.query(
            '<all>{FOR $t IN document("lib.xml")//journal//title RETURN <t>{$t}</t>}</all>',
            plan="direct",
        ).collection
        [tree] = list(result)
        assert tree.root.children[0].children[0].content == "T4"
