"""Cross-engine equivalence on randomized workloads.

The decisive integration property: on arbitrary DBLP-shaped databases,
all five engines (direct interpreter, physical naive with both join
strategies, physical groupby, and the two logical executions) return
structurally identical collections for the paper's query family.
"""

import pytest

from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1, QUERY_2, QUERY_COUNT
from repro.query.database import Database

MODES = ("naive", "naive-hash", "groupby", "logical-naive", "logical-groupby")

INSTITUTION_QUERY = """
FOR $i IN distinct-values(document("bib.xml")//institution)
RETURN
<instpubs>
{$i}
{
FOR $b IN document("bib.xml")//article
WHERE $i = $b/author/institution
RETURN $b/title
}
</instpubs>
"""


def database_for(seed: int, with_institutions: bool = False) -> Database:
    config = DBLPConfig(
        n_articles=40,
        n_authors=12,
        seed=seed,
        with_institutions=with_institutions,
    )
    db = Database()
    db.load(tree=generate_dblp(config), name="bib.xml")
    return db


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
@pytest.mark.parametrize("query", [QUERY_1, QUERY_2, QUERY_COUNT])
def test_engines_agree_on_author_grouping(seed, query):
    db = database_for(seed)
    reference = db.query(query, plan="direct").collection
    assert len(reference) > 0
    for mode in MODES:
        got = db.query(query, plan=mode).collection
        assert got.structurally_equal(reference), f"{mode} diverged (seed={seed})"


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_engines_agree_on_institution_grouping(seed):
    db = database_for(seed, with_institutions=True)
    reference = db.query(INSTITUTION_QUERY, plan="direct").collection
    assert len(reference) > 0
    for mode in MODES:
        got = db.query(INSTITUTION_QUERY, plan=mode).collection
        assert got.structurally_equal(reference), f"{mode} diverged (seed={seed})"


def test_results_complete_against_model():
    """Independent model check: per author, the titles returned equal the
    titles computed by a plain Python dictionary pass over the data."""
    config = DBLPConfig(n_articles=60, n_authors=15, seed=9)
    tree = generate_dblp(config)
    model: dict[str, list[str]] = {}
    for article in tree.children:
        title = article.find("title").content
        for author in article.findall("author"):
            model.setdefault(author.content, []).append(title)

    db = Database()
    db.load(tree=tree, name="bib.xml")
    result = db.query(QUERY_1, plan="groupby").collection
    got = {
        t.root.children[0].content: [c.content for c in t.root.children[1:]]
        for t in result
    }
    assert got == model


def test_counts_complete_against_model():
    config = DBLPConfig(n_articles=60, n_authors=15, seed=10)
    tree = generate_dblp(config)
    model: dict[str, int] = {}
    for article in tree.children:
        for author in article.findall("author"):
            model[author.content] = model.get(author.content, 0) + 1

    db = Database()
    db.load(tree=tree, name="bib.xml")
    result = db.query(QUERY_COUNT, plan="groupby").collection
    got = {t.root.children[0].content: int(t.root.content) for t in result}
    assert got == model
