"""Inner-WHERE value filters composing with grouping (extension).

``WHERE $a = $b/author AND $b/year > "1995"`` — the filter becomes a
value predicate on the selection pattern trees; a grouping value whose
members are all filtered away still appears with an empty group (the
naive plan's left-outer-join padding, kept in the rewritten plan via
the outer-distinct input).
"""

import pytest

from repro.errors import TranslationError
from repro.query.database import Database
from repro.query.parser import parse_query
from repro.query.rewrite import rewrite
from repro.query.translate import naive_plan, recognize
from repro.xmlmodel.diff import assert_collections_equal

ENGINES = ("naive", "naive-hash", "groupby", "logical-naive", "logical-groupby")

FILTERED_QUERY = """
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN <o>{$a}{
FOR $b IN document("bib.xml")//article
WHERE $a = $b/author AND $b/year > "1995"
RETURN $b/title}</o>
"""


@pytest.fixture
def filtered_db():
    db = Database()
    db.load(text=
        """
        <doc_root>
          <article><title>T1</title><year>1999</year><author>A</author></article>
          <article><title>T2</title><year>1990</year><author>A</author></article>
          <article><title>T3</title><year>1990</year><author>C</author></article>
          <article><title>T4</title><year>2001</year><author>B</author></article>
        </doc_root>
        """, name="bib.xml",
    )
    return db


class TestRecognition:
    def test_filters_extracted(self):
        query = recognize(parse_query(FILTERED_QUERY))
        assert query.condition_path == ("author",)
        assert query.filters == ((("year",), ">", "1995"),)

    def test_literal_on_left_flips_operator(self):
        text = FILTERED_QUERY.replace('$b/year > "1995"', '"1995" < $b/year')
        query = recognize(parse_query(text))
        assert query.filters == ((("year",), ">", "1995"),)

    def test_equality_filter(self):
        text = FILTERED_QUERY.replace('$b/year > "1995"', '$b/year = "1999"')
        query = recognize(parse_query(text))
        assert query.filters == ((("year",), "=", "1999"),)

    def test_multiple_filters(self):
        text = FILTERED_QUERY.replace(
            '$b/year > "1995"', '$b/year > "1995" AND $b/year < "2000"'
        )
        query = recognize(parse_query(text))
        assert len(query.filters) == 2

    def test_two_outer_references_rejected(self):
        text = FILTERED_QUERY.replace('$b/year > "1995"', "$a = $b/author")
        with pytest.raises(TranslationError):
            recognize(parse_query(text))

    def test_path_to_path_filter_rejected(self):
        text = FILTERED_QUERY.replace('$b/year > "1995"', "$b/year = $b/volume")
        with pytest.raises(TranslationError):
            recognize(parse_query(text))


class TestPlanShape:
    def test_filter_chain_in_join_pattern(self):
        plan = naive_plan(recognize(parse_query(FILTERED_QUERY)), "doc_root")
        join = plan.find("left_outer_join")[0]
        right = join.params["right_pattern"]
        assert right.has_node("$f0")
        predicate = right.node("$f0").predicate
        assert predicate.matches("year", "1999", {})
        assert not predicate.matches("year", "1990", {})

    def test_rewrite_moves_filter_to_selection(self):
        plan = rewrite(naive_plan(recognize(parse_query(FILTERED_QUERY)), "doc_root"))
        select = plan.find("select")
        # Two selects: the Phase-2 article selection and the padded
        # outer-distinct selection.
        patterns = [node.params["pattern"] for node in select]
        assert any(p.has_node("$f0") for p in patterns)

    def test_rewrite_keeps_outer_padding_input(self):
        plan = rewrite(naive_plan(recognize(parse_query(FILTERED_QUERY)), "doc_root"))
        assert plan.op == "project_groups"
        assert len(plan.inputs) == 2

    def test_unfiltered_plan_has_no_padding_input(self):
        from repro.datagen.sample import QUERY_1

        plan = rewrite(naive_plan(recognize(parse_query(QUERY_1)), "doc_root"))
        assert len(plan.inputs) == 1


class TestSemantics:
    def test_filter_excludes_members(self, filtered_db):
        result = filtered_db.query(FILTERED_QUERY, plan="groupby").collection
        got = {
            t.root.children[0].content: [c.content for c in t.root.children[1:]]
            for t in result
        }
        assert got == {"A": ["T1"], "C": [], "B": ["T4"]}

    def test_orphaned_value_kept_empty(self, filtered_db):
        """Author C's only article fails the filter: C still appears."""
        result = filtered_db.query(FILTERED_QUERY, plan="groupby").collection
        values = [t.root.children[0].content for t in result]
        assert values == ["A", "C", "B"]  # document order of first occurrence

    def test_engines_agree(self, filtered_db):
        reference = filtered_db.query(FILTERED_QUERY, plan="direct").collection
        for engine in ENGINES:
            assert_collections_equal(
                filtered_db.query(FILTERED_QUERY, plan=engine).collection, reference
            )

    def test_filtered_count(self, filtered_db):
        text = FILTERED_QUERY.replace(
            "{\nFOR", "{count(\nFOR"
        ).replace("RETURN $b/title}", "RETURN $b/title)}")
        reference = filtered_db.query(text, plan="direct").collection
        got = {t.root.children[0].content: t.root.content for t in reference}
        assert got == {"A": "1", "C": "0", "B": "1"}
        for engine in ENGINES:
            assert_collections_equal(
                filtered_db.query(text, plan=engine).collection, reference
            )

    def test_equality_filter_end_to_end(self, filtered_db):
        text = FILTERED_QUERY.replace('$b/year > "1995"', '$b/year = "1990"')
        reference = filtered_db.query(text, plan="direct").collection
        got = {
            t.root.children[0].content: [c.content for c in t.root.children[1:]]
            for t in reference
        }
        assert got == {"A": ["T2"], "C": ["T3"], "B": []}
        for engine in ENGINES:
            assert_collections_equal(
                filtered_db.query(text, plan=engine).collection, reference
            )
