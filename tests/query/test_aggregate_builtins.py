"""Numeric aggregate builtins (sum/min/max/avg) in the query language."""

import pytest

from repro.errors import TranslationError
from repro.query.database import Database


@pytest.fixture
def numbers_db():
    db = Database()
    db.load(text=
        """
        <doc_root>
          <sale><region>east</region><amount>10</amount></sale>
          <sale><region>east</region><amount>5</amount></sale>
          <sale><region>west</region><amount>2.5</amount></sale>
        </doc_root>
        """, name="sales.xml",
    )
    return db


def one_value(db, text):
    result = db.query(text, plan="direct")
    [tree] = list(result.collection)
    return tree.root.content


class TestAggregates:
    def test_sum(self, numbers_db):
        assert one_value(numbers_db, '<r>{sum(document("sales.xml")//amount)}</r>') == "17.5"

    def test_min(self, numbers_db):
        assert one_value(numbers_db, '<r>{min(document("sales.xml")//amount)}</r>') == "2.5"

    def test_max(self, numbers_db):
        assert one_value(numbers_db, '<r>{max(document("sales.xml")//amount)}</r>') == "10"

    def test_avg(self, numbers_db):
        # (10 + 5 + 2.5) / 3
        value = one_value(numbers_db, '<r>{avg(document("sales.xml")//amount)}</r>')
        assert abs(float(value) - 17.5 / 3) < 1e-9

    def test_sum_of_empty_is_zero(self, numbers_db):
        assert one_value(numbers_db, '<r>{sum(document("sales.xml")//nothing)}</r>') == "0"

    def test_min_of_empty_is_empty(self, numbers_db):
        assert one_value(numbers_db, '<r>{min(document("sales.xml")//nothing)}</r>') is None

    def test_non_numeric_rejected(self, numbers_db):
        with pytest.raises(TranslationError):
            numbers_db.query('<r>{sum(document("sales.xml")//region)}</r>', plan="direct")

    def test_grouped_aggregate(self, numbers_db):
        query = """
        FOR $r IN distinct-values(document("sales.xml")//region)
        RETURN <regiontotal>{$r}{sum(
            FOR $s IN document("sales.xml")//sale
            WHERE $r = $s/region RETURN $s/amount)}</regiontotal>
        """
        result = numbers_db.query(query, plan="direct").collection
        got = {t.root.children[0].content: t.root.content for t in result}
        assert got == {"east": "15", "west": "2.5"}

    def test_auto_mode_rewrites_grouped_sum(self, numbers_db):
        """sum-grouping is inside the extended rewrite family: auto runs
        the GROUPBY plan and matches direct execution."""
        query = """
        FOR $r IN distinct-values(document("sales.xml")//region)
        RETURN <t>{$r}{sum(
            FOR $s IN document("sales.xml")//sale
            WHERE $r = $s/region RETURN $s/amount)}</t>
        """
        result = numbers_db.query(query, plan="auto")
        assert result.plan_mode == "groupby"
        reference = numbers_db.query(query, plan="direct").collection
        assert result.collection.structurally_equal(reference)
        got = {t.root.children[0].content: t.root.content for t in result.collection}
        assert got == {"east": "15", "west": "2.5"}
