"""Property test: document scoping of the physical matcher.

Regression class for the cross-document leak: with several documents in
one store, a plan over one document must bind only that document's
nodes, for arbitrary document contents.
"""

from hypothesis import given, settings, strategies as st

from repro.datagen.sample import QUERY_1, QUERY_COUNT
from repro.query.database import Database
from repro.xmlmodel.diff import diff_collections
from repro.xmlmodel.node import element
from repro.xmlmodel.serialize import serialize

author_names = st.sampled_from(["A", "B", "C"])
titles = st.sampled_from(["T1", "T2"])


@st.composite
def bibliographies(draw):
    root = element("doc_root", None)
    for _ in range(draw(st.integers(0, 4))):
        article = root.add("article")
        article.add("title", draw(titles))
        for name in draw(st.lists(author_names, max_size=2)):
            article.add("author", name)
    return root


@settings(max_examples=30, deadline=None)
@given(first=bibliographies(), second=bibliographies())
def test_scoping_on_two_documents(first, second):
    db = Database()
    db.load(text=serialize(first, indent=None), name="bib.xml")
    db.load(text=serialize(second, indent=None), name="other.xml")
    for query in (QUERY_1, QUERY_COUNT):
        reference = db.query(query, plan="direct").collection
        for mode in ("naive", "naive-hash", "groupby", "logical-naive", "logical-groupby"):
            got = db.query(query, plan=mode).collection
            report = diff_collections(got, reference)
            assert report is None, f"{mode}: {report}"


@settings(max_examples=20, deadline=None)
@given(first=bibliographies(), second=bibliographies())
def test_each_document_independent(first, second):
    """Querying doc A then doc B gives the same answers as if each were
    loaded alone."""
    both = Database()
    both.load(text=serialize(first, indent=None), name="bib.xml")
    both.load(text=serialize(second, indent=None), name="other.xml")

    alone = Database()
    alone.load(text=serialize(second, indent=None), name="bib.xml")

    from_both = both.query(QUERY_1.replace("bib.xml", "other.xml"), plan="groupby")
    from_alone = alone.query(QUERY_1, plan="groupby")
    report = diff_collections(from_both.collection, from_alone.collection)
    assert report is None, report
