"""Grouped numeric aggregates through the rewrite (extension of the
Sec. 4.3 story: "grouping ... followed by aggregation, as is frequently
the case")."""

import pytest

from repro.query.database import Database
from repro.xmlmodel.diff import assert_collections_equal

ENGINES = ("naive", "naive-hash", "groupby", "logical-naive", "logical-groupby")


@pytest.fixture
def years_db():
    db = Database()
    db.load(text=
        """
        <doc_root>
          <article><title>T1</title><year>1999</year><author>A</author></article>
          <article><title>T2</title><year>2001</year><author>A</author><author>B</author></article>
          <article><year>1995</year><author>B</author></article>
        </doc_root>
        """, name="bib.xml",
    )
    return db


def grouped_query(agg: str) -> str:
    return f"""
    FOR $a IN distinct-values(document("bib.xml")//author)
    RETURN <o>{{$a}}{{{agg}(
        FOR $b IN document("bib.xml")//article
        WHERE $a = $b/author
        RETURN $b/year)}}</o>
    """


def results_of(db, query, plan):
    collection = db.query(query, plan=plan).collection
    return {t.root.children[0].content: t.root.content for t in collection}


class TestAggregateModes:
    @pytest.mark.parametrize(
        "agg,expected",
        [
            ("count", {"A": "2", "B": "2"}),
            ("sum", {"A": "4000", "B": "3996"}),
            ("min", {"A": "1999", "B": "1995"}),
            ("max", {"A": "2001", "B": "2001"}),
            ("avg", {"A": "2000", "B": "1998"}),
        ],
    )
    def test_values_per_engine(self, years_db, agg, expected):
        query = grouped_query(agg)
        reference = years_db.query(query, plan="direct").collection
        assert results_of(years_db, query, "direct") == expected
        for engine in ENGINES:
            assert_collections_equal(
                years_db.query(query, plan=engine).collection, reference
            )

    def test_auto_mode_uses_groupby(self, years_db):
        result = years_db.query(grouped_query("max"), plan="auto")
        assert result.plan_mode == "groupby"

    def test_rewritten_plan_mode(self, years_db):
        _, grouped = years_db.plans_for(grouped_query("sum"))
        assert grouped.params["spec"].mode == "sum"
        assert grouped.params["spec"].member_path == ("year",)


class TestCountSemantics:
    def test_count_counts_path_targets_not_members(self, years_db):
        """Author B wrote two articles, but one lacks a title: count($t)
        over titles must be 1 (regression for the member-count bug)."""
        query = """
        FOR $a IN distinct-values(document("bib.xml")//author)
        LET $t := document("bib.xml")//article[author = $a]/title
        RETURN <o>{$a} {count($t)}</o>
        """
        expected = {"A": "2", "B": "1"}
        assert results_of(years_db, query, "direct") == expected
        for engine in ENGINES:
            assert results_of(years_db, query, engine) == expected

    def test_count_stays_identifier_only(self, years_db):
        """The path-target count uses structural joins over labels: no
        member subtree is ever materialized; only the two (leaf) group
        nodes are built for output."""
        query = grouped_query("count")
        years_db.store.reset_statistics()
        result = years_db.query(query, plan="groupby", reset_statistics=False)
        stats = years_db.store.statistics()
        assert stats["nodes_materialized"] == len(result.collection)
        # Basis (3 author occurrences) + group-node contents only.
        assert stats["value_lookups"] <= 6

    def test_aggregate_fetches_only_reached_values(self, years_db):
        query = grouped_query("sum")
        years_db.store.reset_statistics()
        result = years_db.query(query, plan="groupby", reset_statistics=False)
        stats = years_db.store.statistics()
        # No member subtrees: just one leaf group node per group.
        assert stats["nodes_materialized"] == len(result.collection)


class TestEmptyAggregates:
    @pytest.fixture
    def sparse_db(self):
        db = Database()
        db.load(text=
            """
            <doc_root>
              <article><title>T1</title><author>A</author></article>
            </doc_root>
            """, name="bib.xml",
        )
        return db

    def test_sum_of_nothing_is_zero(self, sparse_db):
        query = grouped_query("sum")
        assert results_of(sparse_db, query, "direct") == {"A": "0"}
        for engine in ENGINES:
            assert results_of(sparse_db, query, engine) == {"A": "0"}

    def test_min_of_nothing_is_empty(self, sparse_db):
        query = grouped_query("min")
        assert results_of(sparse_db, query, "direct") == {"A": None}
        for engine in ENGINES:
            assert results_of(sparse_db, query, engine) == {"A": None}
