"""Low-level physical-executor behaviour: witness sets, deferral,
dedup keying."""

import pytest

from repro.datagen.sample import QUERY_1
from repro.errors import TranslationError
from repro.query.parser import parse_query
from repro.query.physical import (
    DatabaseRef,
    GroupedSet,
    JoinedSet,
    PhysicalExecutor,
    WitnessSet,
)
from repro.query.plan import PlanNode, dupelim, project, scan, select
from repro.query.rewrite import initial_pattern
from repro.query.translate import naive_plan, outer_pattern, recognize


@pytest.fixture
def executor(store, indexes):
    return PhysicalExecutor(store, indexes)


class TestScanAndSelect:
    def test_scan_returns_database_ref(self, executor):
        result = executor._run(scan("bib.xml"))
        assert isinstance(result, DatabaseRef)
        assert result.doc == "bib.xml"

    def test_select_produces_witness_set(self, executor):
        pattern = initial_pattern("doc_root", "article")
        result = executor._run(select(scan("bib.xml"), pattern, {"$2"}))
        assert isinstance(result, WitnessSet)
        assert len(result.matches) == 3
        assert result.selection_list == frozenset({"$2"})

    def test_select_needs_database_input(self, executor):
        pattern = initial_pattern("doc_root", "article")
        inner = select(scan("bib.xml"), pattern, {"$2"})
        with pytest.raises(TranslationError):
            executor._run(select(inner, pattern, {"$2"}))

    def test_select_is_identifier_only(self, store, indexes):
        executor = PhysicalExecutor(store, indexes)
        pattern = initial_pattern("doc_root", "article")
        store.reset_statistics()
        executor._run(select(scan("bib.xml"), pattern, {"$2"}))
        assert store.counters.value_lookups == 0
        assert store.counters.nodes_materialized == 0


class TestProjectionDeferral:
    def test_project_records_list_without_work(self, store, indexes):
        executor = PhysicalExecutor(store, indexes)
        pattern = initial_pattern("doc_root", "article")
        plan = project(select(scan("bib.xml"), pattern, {"$2"}), pattern, ["$2*"])
        store.reset_statistics()
        result = executor._run(plan)
        assert isinstance(result, WitnessSet)
        assert result.projection_list == ("$2*",)
        # Deferred: projection touched no data.
        assert store.counters.value_lookups == 0
        assert store.counters.nodes_materialized == 0


class TestDupelimKeys:
    def test_witness_dedup_populates_only_key(self, store, indexes):
        executor = PhysicalExecutor(store, indexes)
        pattern = outer_pattern("doc_root", "author")
        plan = dupelim(
            project(select(scan("bib.xml"), pattern, {"$2"}), pattern, ["$1", "$2*"]),
            pattern,
            "$2",
        )
        store.reset_statistics()
        result = executor._run(plan)
        assert isinstance(result, WitnessSet)
        assert len(result.matches) == 3  # Jack, John, Jill
        assert store.counters.value_lookups == 5  # one per author occurrence
        assert all("$2" in match.values for match in result.matches)

    def test_dupelim_without_label_rejected_on_witnesses(self, executor):
        pattern = outer_pattern("doc_root", "author")
        plan = dupelim(select(scan("bib.xml"), pattern, {"$2"}))
        with pytest.raises(TranslationError):
            executor._run(plan)


class TestJoinedSets:
    def joined(self, executor):
        plan = naive_plan(recognize(parse_query(QUERY_1)), "doc_root")
        join_node = plan.find("left_outer_join")[0]
        return executor._run(join_node)

    def test_pairs_left_major(self, executor):
        result = self.joined(executor)
        assert isinstance(result, JoinedSet)
        lead = [left.values[result.left_label] for left, _ in result.pairs]
        assert lead == sorted(lead, key=["Jack", "John", "Jill"].index)

    def test_no_padding_in_dblp_shape(self, executor):
        result = self.joined(executor)
        assert all(right is not None for _, right in result.pairs)

    def test_grouped_set_from_full_plan(self, executor, store):
        plan = naive_plan(recognize(parse_query(QUERY_1)), "doc_root")
        from repro.query.rewrite import rewrite

        grouped_plan = rewrite(plan)
        grouped = executor._run(grouped_plan.inputs[0])
        assert isinstance(grouped, GroupedSet)
        values = [value for value, _, _ in grouped.groups]
        assert values == ["Jack", "John", "Jill"]
        member_counts = [len(members) for _, _, members in grouped.groups]
        assert member_counts == [2, 2, 1]


class TestUnsupportedShapes:
    def test_unknown_op_rejected(self, executor):
        with pytest.raises(TranslationError):
            executor._run(PlanNode("teleport"))

    def test_root_must_produce_collection(self, executor):
        with pytest.raises(TranslationError):
            executor.execute(scan("bib.xml"))
