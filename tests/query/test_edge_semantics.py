"""Edge-case semantics, checked across every engine.

XML's permissiveness is the paper's motivation — missing sub-elements,
repeated sub-elements, empty values.  Each case here runs the grouping
query on a hand-built document and asserts all engines agree (and what
they agree on).
"""

import pytest

from repro.datagen.sample import QUERY_1, QUERY_COUNT
from repro.query.database import Database
from repro.xmlmodel.diff import assert_collections_equal

ENGINES = ("naive", "naive-hash", "groupby", "logical-naive", "logical-groupby")


def database(text: str) -> Database:
    db = Database()
    db.load(text=text, name="bib.xml")
    return db


def run_all(db: Database, query: str):
    reference = db.query(query, plan="direct").collection
    for mode in ENGINES:
        assert_collections_equal(db.query(query, plan=mode).collection, reference)
    return reference


class TestEmptyShapes:
    def test_no_articles_at_all(self):
        db = database("<doc_root><note>empty</note></doc_root>")
        result = run_all(db, QUERY_1)
        assert len(result) == 0

    def test_articles_without_authors(self):
        db = database(
            "<doc_root><article><title>T1</title></article>"
            "<article><title>T2</title></article></doc_root>"
        )
        result = run_all(db, QUERY_1)
        assert len(result) == 0  # no authors -> no groups

    def test_mixed_authored_and_authorless(self):
        db = database(
            "<doc_root>"
            "<article><title>T1</title><author>A</author></article>"
            "<article><title>T2</title></article>"
            "</doc_root>"
        )
        result = run_all(db, QUERY_1)
        assert len(result) == 1
        titles = [c.content for c in result[0].root.children[1:]]
        assert titles == ["T1"]


class TestRepetition:
    def test_duplicate_author_elements_on_one_article(self):
        """Two <author>A</author> on one article: the title appears once
        (the 'duplicate elimination based on articles')."""
        db = database(
            "<doc_root><article><title>T1</title>"
            "<author>A</author><author>A</author></article></doc_root>"
        )
        result = run_all(db, QUERY_1)
        assert len(result) == 1
        titles = [c.content for c in result[0].root.children[1:]]
        assert titles == ["T1"]

    def test_duplicate_authors_count_once(self):
        db = database(
            "<doc_root><article><title>T1</title>"
            "<author>A</author><author>A</author></article></doc_root>"
        )
        result = run_all(db, QUERY_COUNT)
        assert result[0].root.content == "1"

    def test_one_author_many_articles(self):
        articles = "".join(
            f"<article><title>T{i}</title><author>A</author></article>"
            for i in range(10)
        )
        db = database(f"<doc_root>{articles}</doc_root>")
        result = run_all(db, QUERY_COUNT)
        assert len(result) == 1
        assert result[0].root.content == "10"

    def test_article_missing_title(self):
        """Grouping still works; the member just contributes no title."""
        db = database(
            "<doc_root>"
            "<article><author>A</author></article>"
            "<article><title>T2</title><author>A</author></article>"
            "</doc_root>"
        )
        result = run_all(db, QUERY_1)
        titles = [c.content for c in result[0].root.children[1:]]
        assert titles == ["T2"]


class TestValues:
    def test_whitespace_sensitive_values(self):
        db = database(
            "<doc_root>"
            "<article><title>T1</title><author>A B</author></article>"
            "<article><title>T2</title><author>A  B</author></article>"
            "</doc_root>"
        )
        result = run_all(db, QUERY_1)
        assert len(result) == 2  # 'A B' != 'A  B'

    def test_unicode_values(self):
        db = database(
            "<doc_root><article><title>Grüße 東京</title>"
            "<author>Ünal Köhler</author></article></doc_root>"
        )
        result = run_all(db, QUERY_1)
        assert result[0].root.children[0].content == "Ünal Köhler"
        assert result[0].root.children[1].content == "Grüße 東京"

    def test_numeric_looking_values_stay_text(self):
        db = database(
            "<doc_root>"
            "<article><title>T1</title><author>10</author></article>"
            "<article><title>T2</title><author>10.0</author></article>"
            "</doc_root>"
        )
        result = run_all(db, QUERY_1)
        assert len(result) == 2  # string grouping: '10' != '10.0'

    def test_case_sensitive_grouping(self):
        db = database(
            "<doc_root>"
            "<article><title>T1</title><author>jack</author></article>"
            "<article><title>T2</title><author>Jack</author></article>"
            "</doc_root>"
        )
        result = run_all(db, QUERY_1)
        assert len(result) == 2


class TestScaleExtremes:
    def test_single_node_groups(self):
        """Every author distinct: as many groups as articles."""
        articles = "".join(
            f"<article><title>T{i}</title><author>A{i}</author></article>"
            for i in range(20)
        )
        db = database(f"<doc_root>{articles}</doc_root>")
        result = run_all(db, QUERY_COUNT)
        assert len(result) == 20
        assert all(t.root.content == "1" for t in result)

    def test_everything_in_one_group(self):
        articles = "".join(
            f"<article><title>T{i}</title><author>A</author></article>"
            for i in range(20)
        )
        db = database(f"<doc_root>{articles}</doc_root>")
        result = run_all(db, QUERY_1)
        assert len(result) == 1
        assert len(result[0].root.children) == 21  # author + 20 titles
