"""Plan-node utility tests: navigation, transformation, explain."""

import pytest

from repro.errors import TranslationError
from repro.query.plan import (
    ArgSpec,
    GroupOutputSpec,
    PlanNode,
    StitchSpec,
    dupelim,
    groupby,
    project,
    project_groups,
    rename_root,
    scan,
    select,
    stitch,
)
from repro.query.rewrite import groupby_pattern, initial_pattern


def sample_plan() -> PlanNode:
    pattern = initial_pattern("doc_root", "article")
    gp = groupby_pattern("article", ("author",))
    base = project(select(scan("bib.xml"), pattern, {"$2"}), pattern, ["$2*"])
    grouped = groupby(base, gp, ["$2"], [])
    return project_groups(
        grouped,
        GroupOutputSpec(return_tag="out", member_path=("title",)),
    )


class TestNavigation:
    def test_walk_preorder(self):
        ops = [node.op for node in sample_plan().walk()]
        assert ops == ["project_groups", "groupby", "project", "select", "scan"]

    def test_find(self):
        plan = sample_plan()
        assert len(plan.find("scan")) == 1
        assert plan.find("left_outer_join") == []

    def test_child_accessor(self):
        plan = sample_plan()
        assert plan.child.op == "groupby"

    def test_child_on_leaf_rejected(self):
        with pytest.raises(TranslationError):
            scan("bib.xml").child

    def test_child_on_binary_rejected(self):
        node = PlanNode("pair", {}, [scan("a"), scan("b")])
        with pytest.raises(TranslationError):
            node.child


class TestTransform:
    def test_identity_transform_copies(self):
        plan = sample_plan()
        copy = plan.transform(lambda node: None)
        assert copy is not plan
        assert copy.explain() == plan.explain()

    def test_replace_scan(self):
        plan = sample_plan()

        def swap(node):
            if node.op == "scan":
                return scan("other.xml")
            return None

        swapped = plan.transform(swap)
        assert swapped.find("scan")[0].params["doc"] == "other.xml"
        assert plan.find("scan")[0].params["doc"] == "bib.xml"  # original intact


class TestExplain:
    def test_indentation_levels(self):
        lines = sample_plan().explain().splitlines()
        assert lines[0].startswith("project_groups")
        assert lines[-1].strip().startswith("scan")
        assert lines[-1].startswith("        ")  # depth 4

    def test_all_summarizers_render(self):
        pattern = initial_pattern("doc_root", "article")
        nodes = [
            scan("d"),
            select(scan("d"), pattern, {"$2"}),
            project(scan("d"), pattern, ["$2*"]),
            dupelim(scan("d"), pattern, "$2"),
            dupelim(scan("d")),
            groupby(scan("d"), groupby_pattern("article", ("author",)), ["$2"], []),
            project_groups(scan("d"), GroupOutputSpec("t", ("title",))),
            stitch(
                scan("d"),
                StitchSpec("t", "$2", "$5", (ArgSpec("outer"),)),
            ),
            rename_root(scan("d"), "t"),
        ]
        for node in nodes:
            text = node.describe()
            assert node.op.split("_")[0] in text or node.op in text

    def test_describe_unknown_op_safe(self):
        assert PlanNode("exotic").describe() == "exotic"
