"""The seeded differential harness (PR 8's verification satellite).

For every generated query (see ``querygen.py``) the direct interpreter
is the oracle; the harness demands identical result collections from
every plan mode, with the columnar hot path on and off, and with the
cost-based optimizer on and off.  A disagreement anywhere — a wrong
cost-model choice, a collapse bug, a strategy-specific grouping defect —
fails with the offending query attached, and (under
``REPRO_DIFF_ARTIFACT_DIR``) written to an artifact file for CI upload.

Environment knobs (the CI ``optimizer-differential`` job sets these):

* ``REPRO_DIFF_SEED`` — generator seed (default 11; CI runs 11/23/47);
* ``REPRO_DIFF_QUERIES`` — queries per seed (default 25 locally to keep
  tier-1 fast; CI runs 200);
* ``REPRO_DIFF_ARTIFACT_DIR`` — where to write failing queries.
"""

import os
from pathlib import Path

import pytest

from repro.errors import TranslationError
from repro.query.database import Database
from repro.xmlmodel.diff import diff_collections

from .querygen import QueryGenerator

SEED = int(os.environ.get("REPRO_DIFF_SEED", "11"))
N_QUERIES = int(os.environ.get("REPRO_DIFF_QUERIES", "25"))
ARTIFACT_DIR = os.environ.get("REPRO_DIFF_ARTIFACT_DIR", "")

#: All plan modes the harness checks against the direct oracle.
MODES = (
    "auto",
    "naive",
    "naive-hash",
    "groupby",
    "logical-naive",
    "logical-groupby",
)

#: Modes that legitimately reject the 3-level nested family (there is
#: no single naive join block to execute).
NAIVE_MODES = frozenset({"naive", "naive-hash", "logical-naive"})


def _variants(document: str) -> dict[tuple[bool, bool], Database]:
    """(columnar, optimizer) -> a database loaded with ``document``."""
    variants: dict[tuple[bool, bool], Database] = {}
    for columnar in (True, False):
        for optimizer in (True, False):
            db = Database(columnar=columnar, optimizer=optimizer)
            db.load(text=document, name="bib.xml")
            variants[(columnar, optimizer)] = db
    return variants


def _record_failure(query, label: str, report: str, failures: list[str]) -> None:
    failures.append(f"[{label}] {report}\nquery:\n{query.text}")
    if ARTIFACT_DIR:
        directory = Path(ARTIFACT_DIR)
        directory.mkdir(parents=True, exist_ok=True)
        name = f"seed{SEED}_fail{len(failures):03d}.xq"
        (directory / name).write_text(
            f"-- seed: {SEED}\n-- variant: {label}\n-- diff: {report}\n{query.text}\n"
        )


def test_differential_identity_across_engines_and_toggles():
    generator = QueryGenerator(SEED)
    document = generator.document()
    variants = _variants(document)
    oracle_db = variants[(True, True)]
    failures: list[str] = []
    checked = 0
    for query in generator.queries(N_QUERIES):
        reference = oracle_db.query(query.text, plan="direct").collection
        for (columnar, optimizer), db in variants.items():
            for mode in MODES:
                label = (
                    f"mode={mode} columnar={'on' if columnar else 'off'} "
                    f"optimizer={'on' if optimizer else 'off'}"
                )
                try:
                    got = db.query(query.text, plan=mode).collection
                except TranslationError:
                    # Only the naive join engines on the 3-level family
                    # may refuse; anything else is a planning bug.
                    if query.family == "nested" and mode in NAIVE_MODES:
                        continue
                    _record_failure(
                        query, label, "unexpected TranslationError", failures
                    )
                    continue
                report = diff_collections(got, reference)
                if report is not None:
                    _record_failure(query, label, str(report), failures)
                checked += 1
    assert not failures, (
        f"{len(failures)} identity failure(s) across {checked} checked "
        f"executions (seed {SEED}):\n\n" + "\n\n".join(failures[:10])
    )
    assert checked > 0


def test_nested_family_routes_through_collapse():
    """AUTO on a generated 3-level query must use the collapsed
    grouping plan (join-graph isolation), not fall back to direct —
    and still match the direct oracle."""
    generator = QueryGenerator(SEED)
    document = generator.document()
    nested = [q for q in generator.queries(60) if q.family == "nested"]
    if not nested:  # pragma: no cover - seed-dependent guard
        pytest.skip("seed produced no nested queries in 60 draws")
    db = Database()
    db.load(text=document, name="bib.xml")
    for query in nested[:3]:
        result = db.query(query.text, plan="auto")
        assert result.plan_mode == "groupby", query.text
        reference = db.query(query.text, plan="direct").collection
        assert diff_collections(result.collection, reference) is None
