"""AST rendering coverage: every node type prints, and parses back."""

import pytest

from repro.query.ast import (
    AggregateCall,
    AndExpr,
    Comparison,
    CountCall,
    DistinctValues,
    DocumentCall,
    ElementConstructor,
    EmbeddedExpr,
    FLWR,
    ForClause,
    LetClause,
    NumberLiteral,
    PathExpr,
    SortKey,
    Step,
    StepPredicate,
    StringLiteral,
    TextItem,
    VarRef,
    render,
)
from repro.query.parser import parse_query


class TestAtomRendering:
    @pytest.mark.parametrize(
        "node,expected",
        [
            (StringLiteral("x"), '"x"'),
            (NumberLiteral("42"), "42"),
            (VarRef("a"), "$a"),
            (DocumentCall("bib.xml"), 'document("bib.xml")'),
            (CountCall(VarRef("t")), "count($t)"),
            (AggregateCall("sum", VarRef("t")), "sum($t)"),
            (DistinctValues(VarRef("a")), "distinct-values($a)"),
        ],
    )
    def test_atoms(self, node, expected):
        assert render(node) == expected

    def test_comparison_and_conjunction(self):
        comparison = Comparison(VarRef("a"), "=", StringLiteral("x"))
        assert render(comparison) == '$a = "x"'
        both = AndExpr((comparison, Comparison(VarRef("b"), "<", NumberLiteral("3"))))
        assert render(both) == '$a = "x" AND $b < 3'

    def test_paths_with_predicates(self):
        path = PathExpr(
            DocumentCall("b"),
            (
                Step("//", "article", StepPredicate(("author",), "=", VarRef("a"))),
                Step("/", "title"),
                Step("@", "id"),
            ),
        )
        assert render(path) == 'document("b")//article[author = $a]/title/@id'

    def test_constructor(self):
        constructor = ElementConstructor(
            "out",
            (("k", "v"),),
            (TextItem("hello"), EmbeddedExpr(VarRef("x"))),
        )
        assert render(constructor) == '<out k="v">hello {$x}</out>'

    def test_flwr_with_everything(self):
        flwr = FLWR(
            (
                ForClause("a", DistinctValues(PathExpr(DocumentCall("b"), (Step("//", "author"),)))),
                LetClause("t", VarRef("a")),
            ),
            Comparison(VarRef("a"), "!=", StringLiteral("")),
            VarRef("t"),
            (SortKey((".",), "DESCENDING"),),
        )
        text = render(flwr)
        assert "FOR $a IN" in text
        assert "LET $t :=" in text
        assert "WHERE" in text
        assert "SORTBY (. DESCENDING)" in text

    def test_unrenderable_rejected(self):
        with pytest.raises(TypeError):
            render(object())


class TestRoundTrips:
    @pytest.mark.parametrize(
        "query",
        [
            '"literal"',
            "$v",
            'document("b")//a/b/c',
            'document("b")//a[x = "1"]/b',
            "count($t)",
            "sum($t)",
            'distinct-values(document("b")//a)',
            'FOR $a IN document("b")//x RETURN $a',
            'FOR $a IN document("b")//x WHERE $a = "v" RETURN <o>{$a}</o>',
            'FOR $a IN document("b")//x RETURN $a SORTBY(. DESCENDING)',
            'FOR $a IN document("b")//x LET $y := $a/b RETURN count($y)',
            "<a><b>text</b>{$x}</a>",
            'document("b")//a/@id',
        ],
    )
    def test_parse_render_parse(self, query):
        first = parse_query(query)
        assert parse_query(render(first)) == first
