"""Direct-interpreter tests (the Sec. 6 baseline engine)."""

import pytest

from repro.errors import TranslationError
from repro.query.interpreter import Interpreter
from repro.query.parser import parse_query


@pytest.fixture
def interp(store, indexes):
    return Interpreter(store, indexes)


def values(interp, text):
    return [interp._atomize(item) for item in interp.evaluate(parse_query(text))]


class TestPaths:
    def test_descendant_step(self, interp):
        assert values(interp, 'document("bib.xml")//author') == [
            "Jack", "John", "Jill", "Jack", "John",
        ]

    def test_child_step(self, interp):
        out = values(interp, 'document("bib.xml")//article/title')
        assert out == ["Querying XML", "XML and the Web", "Hack HTML"]

    def test_wildcard_child(self, interp, store):
        items = interp.evaluate(parse_query('document("bib.xml")/*'))
        assert [store.tag(nid) for nid in items] == ["article"] * 3

    def test_predicate_variable_free(self, interp):
        out = values(interp, 'document("bib.xml")//article[author = "Jill"]/title')
        assert out == ["XML and the Web"]

    def test_predicate_no_match(self, interp):
        assert values(interp, 'document("bib.xml")//article[author = "X"]/title') == []

    def test_unknown_document_rejected(self, interp):
        from repro.errors import DatabaseError

        with pytest.raises(DatabaseError):
            interp.evaluate(parse_query('document("nope.xml")//a'))


class TestBuiltins:
    def test_distinct_values(self, interp):
        out = values(interp, 'distinct-values(document("bib.xml")//author)')
        assert out == ["Jack", "John", "Jill"]

    def test_count(self, interp):
        assert values(interp, 'count(document("bib.xml")//article)') == ["3"]

    def test_count_empty(self, interp):
        assert values(interp, 'count(document("bib.xml")//nothing)') == ["0"]


class TestFLWR:
    def test_for_iterates_items(self, interp):
        out = values(
            interp, 'FOR $a IN document("bib.xml")//author RETURN $a'
        )
        assert len(out) == 5

    def test_where_filters(self, interp):
        out = values(
            interp,
            'FOR $b IN document("bib.xml")//article '
            'WHERE $b/author = "Jill" RETURN $b/title',
        )
        assert out == ["XML and the Web"]

    def test_let_binds_sequence(self, interp):
        out = values(
            interp,
            'FOR $a IN document("bib.xml")//article '
            "LET $t := $a/title RETURN count($t)",
        )
        assert out == ["1", "1", "1"]

    def test_nested_flwr(self, interp):
        out = values(
            interp,
            'FOR $a IN distinct-values(document("bib.xml")//author) RETURN '
            'count(FOR $b IN document("bib.xml")//article '
            "WHERE $a = $b/author RETURN $b)",
        )
        assert out == ["2", "2", "1"]

    def test_unbound_variable_rejected(self, interp):
        with pytest.raises(TranslationError):
            interp.evaluate(parse_query("$ghost"))

    def test_comparison_operators(self, interp):
        out = values(
            interp,
            'FOR $y IN document("bib.xml")//year WHERE $y >= "1999" RETURN $y',
        )
        assert out == ["1999"]


class TestConstruction:
    def test_run_wraps_collection(self, interp):
        result = interp.run(
            parse_query(
                'FOR $a IN distinct-values(document("bib.xml")//author) '
                "RETURN <who>{$a}</who>"
            )
        )
        assert len(result) == 3
        assert result[0].root.tag == "who"
        assert result[0].root.children[0].content == "Jack"

    def test_materialized_nodes_keep_subtrees(self, interp):
        result = interp.run(
            parse_query(
                'FOR $b IN document("bib.xml")//article '
                'WHERE $b/author = "Jill" RETURN <hit>{$b}</hit>'
            )
        )
        article = result[0].root.children[0]
        assert article.find("title").content == "XML and the Web"

    def test_text_and_values_joined(self, interp):
        result = interp.run(
            parse_query('FOR $a IN document("bib.xml")//title RETURN <t>title: {count($a)}</t>')
        )
        assert result[0].root.content == "title: 1"

    def test_constructor_attributes(self, interp):
        result = interp.run(parse_query('<x kind="probe"/>'))
        assert result[0].root.attributes == {"kind": "probe"}
