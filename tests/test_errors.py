"""Exception-hierarchy tests."""

import pytest

from repro.errors import (
    AlgebraError,
    BufferPoolError,
    DatabaseError,
    PageCorruptionError,
    PatternError,
    ReproError,
    RewriteError,
    StorageError,
    TranslationError,
    XMLParseError,
    XQuerySyntaxError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            XMLParseError("x"),
            StorageError("x"),
            PageCorruptionError("x"),
            BufferPoolError("x"),
            PatternError("x"),
            AlgebraError("x"),
            XQuerySyntaxError("x"),
            TranslationError("x"),
            RewriteError("x"),
            DatabaseError("x"),
        ],
    )
    def test_everything_is_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_page_corruption_is_storage_error(self):
        assert isinstance(PageCorruptionError("x"), StorageError)

    def test_buffer_pool_is_storage_error(self):
        assert isinstance(BufferPoolError("x"), StorageError)


class TestPositionCarrying:
    def test_parse_error_with_full_position(self):
        exc = XMLParseError("bad tag", line=3, column=7)
        assert "line 3" in str(exc)
        assert "column 7" in str(exc)
        assert (exc.line, exc.column) == (3, 7)

    def test_parse_error_line_only(self):
        exc = XMLParseError("bad tag", line=3)
        assert "line 3" in str(exc)
        assert "column" not in str(exc)

    def test_parse_error_without_position(self):
        exc = XMLParseError("bad tag")
        assert str(exc) == "bad tag"

    def test_syntax_error_position(self):
        exc = XQuerySyntaxError("expected RETURN", line=2, column=5)
        assert "line 2, column 5" in str(exc)
