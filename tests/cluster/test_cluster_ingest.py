"""Batched (streaming) loads through the cluster coordinator: each
document slice ships to its shard as a chunked ``LOAD`` stream, commits
in journaled batches shard-side, and the scattered result answers
queries identically to a single-node whole-document load."""

from __future__ import annotations

import pytest

from repro.cluster import LocalCluster, LocalClusterConfig
from repro.cluster.coordinator import ClusterConfig
from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.query.database import Database
from repro.xmlmodel.diff import assert_collections_equal

CORPUS = generate_dblp(DBLPConfig(n_articles=60, n_authors=24, seed=7))
QUERY = (
    'FOR $a IN document("bib.xml")//article, $y IN $a/year '
    'WHERE $y = "2000" RETURN $a'
)


@pytest.fixture(scope="module")
def single_node():
    db = Database()
    db.load(tree=CORPUS.deep_copy(), name="bib.xml")
    result = db.query(QUERY)
    return result.collection


def test_batched_cluster_load_identity(single_node):
    with LocalCluster(LocalClusterConfig(shards=3)) as cluster:
        report = cluster.load(
            tree=CORPUS.deep_copy(), name="bib.xml", batch_size=40
        )
        assert len(report.slices) == 3
        assert report.batches > 3  # more than one batch per slice
        assert all(piece.batches >= 1 for piece in report.slices)
        # Each slice carries its own synthetic root, so the cluster
        # stores slightly more nodes than the source document holds.
        assert report.nodes >= CORPUS.subtree_size()
        got = cluster.query(QUERY)
        assert not got.partial
        assert_collections_equal(single_node, got.collection)
        assert cluster.health().status == "ok"


def test_batched_load_counters():
    with LocalCluster(LocalClusterConfig(shards=3)) as cluster:
        report = cluster.load(
            tree=CORPUS.deep_copy(), name="bib.xml", batch_size=40
        )
        snap = cluster.coordinator.counter_snapshot()
        assert snap["cluster_load_batches"] == report.batches
        # Shard-side ingest counters roll up through cluster STATS.
        stats = cluster.stats()
        assert stats["ingest_batches_committed"] >= report.batches


def test_unbatched_load_still_single_shot(single_node):
    with LocalCluster(LocalClusterConfig(shards=3)) as cluster:
        report = cluster.load(tree=CORPUS.deep_copy(), name="bib.xml")
        assert report.batches == len(report.slices)  # one per slice
        got = cluster.query(QUERY)
        assert_collections_equal(single_node, got.collection)


def test_batched_load_reaches_replicas(single_node):
    with LocalCluster(
        LocalClusterConfig(shards=2, cluster=ClusterConfig(replication=2))
    ) as cluster:
        report = cluster.load(
            tree=CORPUS.deep_copy(), name="bib.xml", batch_size=50
        )
        assert report.batches >= 2
        got = cluster.query(QUERY)
        assert_collections_equal(single_node, got.collection)
