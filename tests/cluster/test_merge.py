"""The distributed merge: classification, rewrite round-tripping,
slice-major reconstruction, and typed refusal of unmergeable shapes."""

import pytest

from repro.cluster.merge import (
    apply_sortby,
    compile_merge,
    merge_rows,
    rename_document,
)
from repro.datagen.sample import (
    QUERY_1,
    QUERY_2,
    QUERY_COUNT,
    figure6_database,
)
from repro.errors import ClusterMergeError
from repro.query.database import Database
from repro.query.parser import parse_query
from repro.xmlmodel.diff import assert_collections_equal
from repro.xmlmodel.node import XMLNode
from repro.xmlmodel.tree import Collection, DataTree


def _slices(root: XMLNode, count: int) -> list[XMLNode]:
    kids = root.children
    base, extra = divmod(len(kids), count)
    pieces, cursor = [], 0
    for index in range(count):
        take = base + (1 if index < extra else 0)
        piece = XMLNode(root.tag)
        for kid in kids[cursor : cursor + take]:
            piece.append_child(kid.deep_copy())
        cursor += take
        pieces.append(piece)
    return pieces


def _run_sliced(query: str, count: int) -> Collection:
    """Execute ``query`` the coordinator's way, in-process: rewrite,
    run per slice, merge, re-sort."""
    plan = compile_merge(parse_query(query))
    slice_rows = []
    for piece in _slices(figure6_database(), count):
        db = Database()
        db.load(tree=piece, name="bib.xml")
        slice_rows.append(
            [tree.root for tree in db.query(plan.shard_query).collection]
        )
    merged = apply_sortby(merge_rows(plan, slice_rows), plan.sortby)
    return Collection([DataTree(row) for row in merged])


def _single(query: str) -> Collection:
    db = Database()
    db.load(tree=figure6_database(), name="bib.xml")
    return db.query(query).collection


@pytest.mark.parametrize("query", [QUERY_1, QUERY_2, QUERY_COUNT])
@pytest.mark.parametrize("count", [1, 2, 3])
def test_sliced_grouping_identical_to_single_node(query, count):
    assert_collections_equal(_single(query), _run_sliced(query, count))


def test_group_plan_classification():
    plan = compile_merge(parse_query(QUERY_1))
    assert plan.kind == "group"
    assert [item.kind for item in plan.items] == ["key", "list"]
    assert plan.row_tag == "authorpubs"
    plan2 = compile_merge(parse_query(QUERY_COUNT))
    assert [item.kind for item in plan2.items] == ["key", "count"]


def test_shard_query_reparses():
    # The rewrite is shipped as text: it must survive render -> parse.
    plan = compile_merge(parse_query(QUERY_1))
    reparsed = parse_query(plan.shard_query)
    assert compile_merge(parse_query(QUERY_1)).shard_query == plan.shard_query
    assert reparsed is not None


def test_aggregates_merge_exactly():
    query = """
    FOR $a IN distinct-values(document("bib.xml")//author)
    LET $y := document("bib.xml")//article[author = $a]/year
    RETURN <r>{$a} {count($y)} {sum($y)} {min($y)} {max($y)} {avg($y)}</r>
    """
    for count in (1, 2, 3):
        assert_collections_equal(_single(query), _run_sliced(query, count))


def test_sortby_reapplied_after_merge():
    query = """
    FOR $a IN distinct-values(document("bib.xml")//author)
    LET $t := document("bib.xml")//article[author = $a]/title
    RETURN <r>{$a} {count($t)}</r> SORTBY (.)
    """
    plan = compile_merge(parse_query(query))
    assert plan.sortby  # stripped from the shard query, kept in the plan
    assert "SORTBY" not in plan.shard_query
    for count in (1, 2, 3):
        assert_collections_equal(_single(query), _run_sliced(query, count))


def test_concat_and_scalar_count_shapes():
    concat = 'FOR $b IN document("bib.xml")//article RETURN $b/title'
    assert compile_merge(parse_query(concat)).kind == "concat"
    path = 'document("bib.xml")//article/title'
    assert compile_merge(parse_query(path)).kind == "concat"
    scalar = 'count(document("bib.xml")//author)'
    assert compile_merge(parse_query(scalar)).kind == "scalar-count"
    for query in (concat, path, scalar):
        for count in (1, 2, 3):
            assert_collections_equal(_single(query), _run_sliced(query, count))


@pytest.mark.parametrize(
    "query",
    [
        # distinct-values inside a RETURN item: cross-slice dedup.
        """FOR $a IN distinct-values(document("b")//author)
           RETURN <r>{distinct-values(document("b")//year)}</r>""",
        # count over distinct-values at top level.
        'count(distinct-values(document("b")//author))',
        # LET the WHERE filters on (HAVING-shaped).
        """FOR $a IN distinct-values(document("b")//author)
           LET $t := document("b")//article[author = $a]/title
           WHERE $t = "x"
           RETURN <r>{$a}</r>""",
        # Uncorrelated document re-read inside a LET.
        """FOR $a IN distinct-values(document("b")//author)
           LET $all := document("b")//article/title
           RETURN <r>{$a} {$all}</r>""",
        # Second FOR over the document: cross product across slices.
        """FOR $a IN document("b")//article
           FOR $c IN document("b")//article
           RETURN <r>{$a/title}</r>""",
    ],
)
def test_unmergeable_shapes_raise_typed(query):
    with pytest.raises(ClusterMergeError):
        compile_merge(parse_query(query))


def test_multi_document_queries_refused():
    query = """FOR $a IN distinct-values(document("b")//author)
               LET $t := document("c")//article[author = $a]/title
               RETURN <r>{$a}</r>"""
    with pytest.raises(ClusterMergeError):
        compile_merge(parse_query(query))


def test_rename_document_rewrites_every_call():
    renamed = rename_document(QUERY_1, {"bib.xml": "bib.xml~replica0"})
    assert 'document("bib.xml~replica0")' in renamed
    assert 'document("bib.xml")' not in renamed
    # Rename is also a no-op for unrelated names.
    assert 'document("bib.xml")' in rename_document(QUERY_1, {"other": "x"})


def test_partial_merge_drops_missing_slices_only():
    # Merging a subset of slices yields exactly the groups visible in
    # the surviving slices — the degraded-mode contract.
    plan = compile_merge(parse_query(QUERY_1))
    slice_rows = []
    for piece in _slices(figure6_database(), 3):
        db = Database()
        db.load(tree=piece, name="bib.xml")
        slice_rows.append(
            [tree.root for tree in db.query(plan.shard_query).collection]
        )
    full = merge_rows(plan, slice_rows)
    degraded = merge_rows(plan, slice_rows[:2])
    assert len(degraded) <= len(full)
    assert all(row.tag == "authorpubs" for row in degraded)
    full_keys = [row.content for row in full]
    degraded_keys = [row.content for row in degraded]
    # Surviving groups keep their global first-appearance order.
    assert degraded_keys == [key for key in full_keys if key in degraded_keys]
