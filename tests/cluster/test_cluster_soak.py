"""The cluster soak: a concurrent scatter-gather workload with one
shard killed mid-storm, then healed.

Seed-driven (``REPRO_CLUSTER_SEED``, default 11) so CI can run a seed
matrix.  Acceptance, per the robustness issue: the storm may only
surface *typed* errors (:class:`~repro.errors.ClusterError` family or
:class:`~repro.errors.ClientError`), HEALTH must report ``degraded``
while the shard is dark and return to ``ok`` after heal +
re-admission, no shard's handler thread may crash, and no shard may
leak sessions or buffer pins.
"""

from __future__ import annotations

import os
import threading
import time

from repro.cluster import ClusterConfig, LocalCluster, LocalClusterConfig
from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1, QUERY_2
from repro.errors import ClientError, ClusterError
from repro.query.database import Database
from repro.service.chaos import NetFaultPlan
from repro.service.client import RetryPolicy
from repro.xmlmodel.diff import assert_collections_equal

SOAK_SEED = int(os.environ.get("REPRO_CLUSTER_SEED", "11"))
THREADS = 3
REQUESTS_PER_THREAD = 30
VICTIM = 1  # the shard the storm kills

#: Light ambient chaos on the victim before the kill: the storm is the
#: seeded part; the kill itself is deterministic (latched mid-run).
PRELUDE = NetFaultPlan(seed=SOAK_SEED, delay_rate=0.2, delay_seconds=0.002)


def _wait_until(predicate, timeout: float = 15.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached before timeout")


def _workload(cluster, index: int, outcomes: list, untyped: list, stop_kill):
    for step in range(REQUESTS_PER_THREAD):
        query = QUERY_1 if (index + step) % 2 == 0 else QUERY_2
        try:
            result = cluster.query(query, allow_partial=True)
        except (ClusterError, ClientError) as error:
            outcomes.append(error)  # typed: acceptable mid-storm
        except Exception as error:  # noqa: BLE001 - the soak's whole point
            untyped.append((index, step, error))
            return
        else:
            outcomes.append(result)
        if index == 0 and step == REQUESTS_PER_THREAD // 3:
            stop_kill()  # kill the victim a third of the way in


def test_cluster_soak_kill_one_shard_mid_storm():
    corpus = generate_dblp(DBLPConfig(n_articles=36, n_authors=12, seed=5))
    single = Database()
    single.load(tree=corpus.deep_copy(), name="bib.xml")
    want = single.query(QUERY_1).collection

    config = LocalClusterConfig(
        shards=3,
        cluster=ClusterConfig(
            query_timeout=10.0,
            quarantine_threshold=2,
            probe_interval=0.05,
            retry=RetryPolicy(
                max_attempts=2, base_delay=0.01, max_delay=0.05,
                jitter_seed=SOAK_SEED,
            ),
            connect_timeout=1.0,
        ),
        chaos={VICTIM: PRELUDE},
        proxy_all=True,
    )
    with LocalCluster(config) as cluster:
        cluster.load(tree=corpus.deep_copy(), name="bib.xml")
        assert_collections_equal(want, cluster.query(QUERY_1).collection)

        victim = cluster.shards[VICTIM]
        killed = threading.Event()

        def kill_victim():
            if not killed.is_set():
                killed.set()
                victim.proxy.set_plan(NetFaultPlan(kill_after=0, seed=SOAK_SEED))

        outcomes: list = []
        untyped: list = []
        threads = [
            threading.Thread(
                target=_workload,
                args=(cluster, i, outcomes, untyped, kill_victim),
            )
            for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120.0)
        assert not any(t.is_alive() for t in threads), "workload thread hung"
        assert killed.is_set()

        # Typed errors only; the cluster kept answering around the hole.
        assert not untyped, f"untyped exceptions escaped: {untyped!r}"
        assert len(outcomes) == THREADS * REQUESTS_PER_THREAD
        results = [o for o in outcomes if not isinstance(o, Exception)]
        assert results, "the storm drowned every request"
        degraded = [r for r in results if r.partial]
        assert degraded, "the kill never degraded a single query"
        assert all(
            r.missing_shards == frozenset({VICTIM}) for r in degraded
        )

        _wait_until(lambda: cluster.health().status == "degraded")

        # Heal: the latch releases, the next probe re-admits, and the
        # merged answer is whole (and still identical) again.
        victim.proxy.heal()

        def recovered():
            try:
                return not cluster.query(QUERY_1).partial
            except (ClusterError, ClientError):
                return False

        _wait_until(recovered)
        assert_collections_equal(want, cluster.query(QUERY_1).collection)
        _wait_until(lambda: cluster.health().status == "ok")
        counters = cluster.coordinator.counter_snapshot()
        assert counters["cluster_quarantines"] >= 1
        assert counters["cluster_readmissions"] >= 1

        # ---- per-shard post-storm invariants --------------------------
        cluster.coordinator.close()
        for stack in cluster.shards:
            assert stack.server.stats()["server_handler_crashes"] == 0, (
                f"shard {stack.index}: a handler thread died"
            )
            _wait_until(lambda s=stack: len(s.service.sessions) == 0)
            assert stack.db.store.pool.pinned_count() == 0
            assert stack.db.store.verify().ok
