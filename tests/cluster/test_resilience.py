"""The robustness core: typed degradation, quarantine + re-admission,
hedged retries, and fan-out abandonment cleaning up server-side
sessions."""

from __future__ import annotations

import time

import pytest

from repro.cluster import ClusterConfig, LocalCluster, LocalClusterConfig
from repro.datagen.sample import QUERY_1, figure6_database
from repro.errors import (
    ClusterError,
    PartialResultError,
    RemoteError,
    ShardUnavailableError,
)
from repro.service.chaos import NetFaultPlan
from repro.service.client import RetryPolicy

FAST = ClusterConfig(
    query_timeout=5.0,
    hedge_delay=0.1,
    quarantine_threshold=2,
    probe_interval=0.05,
    probe_timeout=1.0,
    retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
    connect_timeout=0.5,
)


def _wait_until(predicate, timeout: float = 10.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached before timeout")


@pytest.fixture()
def cluster():
    config = LocalClusterConfig(shards=3, cluster=FAST, proxy_all=True)
    with LocalCluster(config) as instance:
        instance.load(tree=figure6_database(), name="bib.xml")
        yield instance


def test_dead_shard_strict_raises_partial_result_error(cluster):
    cluster.shards[1].proxy.close()
    with pytest.raises(PartialResultError) as excinfo:
        cluster.query(QUERY_1)
    assert excinfo.value.missing_shards == frozenset({1})


def test_dead_shard_allow_partial_tags_missing_set(cluster):
    baseline = cluster.query(QUERY_1)
    cluster.shards[1].proxy.close()
    result = cluster.query(QUERY_1, allow_partial=True)
    assert result.partial
    assert result.missing_shards == frozenset({1})
    assert 0 < len(result) <= len(baseline)
    assert cluster.coordinator.counter_snapshot()["cluster_partial_results"] == 1


def test_all_shards_dead_raises_shard_unavailable(cluster):
    for stack in cluster.shards:
        stack.proxy.close()
    with pytest.raises(ShardUnavailableError):
        cluster.query(QUERY_1, allow_partial=True)


def test_quarantine_then_probe_readmission(cluster):
    # kill_after=0 latches the proxy dark WITHOUT closing its listener,
    # so heal() can bring the same endpoint back.
    victim = cluster.shards[2]
    victim.proxy.set_plan(NetFaultPlan(kill_after=0, seed=1))
    threshold = cluster.coordinator.config.quarantine_threshold
    for _ in range(threshold + 1):
        try:
            cluster.query(QUERY_1, allow_partial=True)
        except ClusterError:
            pass
    assert cluster.coordinator.quarantined_shards() == frozenset({2})
    assert cluster.health().status == "degraded"

    victim.proxy.heal()
    time.sleep(FAST.probe_interval * 2)

    def recovered():
        try:
            return not cluster.query(QUERY_1).partial
        except ClusterError:
            return False

    _wait_until(recovered)
    assert cluster.coordinator.quarantined_shards() == frozenset()
    counters = cluster.coordinator.counter_snapshot()
    assert counters["cluster_quarantines"] >= 1
    assert counters["cluster_readmissions"] >= 1
    assert counters["cluster_probes"] >= 1
    _wait_until(lambda: cluster.health().status == "ok")


def test_hedged_retry_beats_stalled_primary(figure=figure6_database):
    config = LocalClusterConfig(
        shards=3,
        cluster=ClusterConfig(
            replication=2,
            query_timeout=10.0,
            hedge_delay=0.15,
            quarantine_threshold=5,
            retry=RetryPolicy(max_attempts=1),
            connect_timeout=0.5,
        ),
        proxy_all=True,
    )
    with LocalCluster(config) as cluster:
        cluster.load(tree=figure(), name="bib.xml")
        baseline = cluster.query(QUERY_1)
        # Stall every chunk through shard 0 far longer than the hedge
        # delay: its slice must be served by a replica instead.
        cluster.shards[0].proxy.set_plan(
            NetFaultPlan(stall_rate=1.0, stall_seconds=3.0, seed=7)
        )
        started = time.monotonic()
        result = cluster.query(QUERY_1)
        elapsed = time.monotonic() - started
        assert not result.partial
        assert len(result) == len(baseline)
        assert elapsed < 3.0, "hedge did not race the stalled primary"
        counters = cluster.coordinator.counter_snapshot()
        assert counters["cluster_hedges"] >= 1
        assert counters["cluster_hedge_wins"] >= 1


def test_remote_query_errors_do_not_quarantine(cluster):
    # A plan mode the shard rejects on a whole-document route is the
    # *request's* fault: it must propagate typed and leave the shard's
    # health untouched.
    cluster.load(tree=figure6_database(), name="whole.xml", slices=1)
    bad = 'FOR $b IN document("whole.xml")//article RETURN $b/title'
    with pytest.raises(RemoteError) as excinfo:
        cluster.query(bad, plan="groupby")
    assert excinfo.value.kind == "TranslationError"
    assert cluster.coordinator.quarantined_shards() == frozenset()
    assert cluster.health().status == "ok"


def test_abandoned_fanout_cleans_up_shard_sessions(cluster):
    # Stall one shard so the coordinator's deadline abandons the call
    # mid-fan-out; the surviving shards finish, and once the abandoned
    # connection drops, every shard's session registry must empty with
    # no leaked pins and no handler crashes.
    victim = cluster.shards[0]
    victim.proxy.set_plan(NetFaultPlan(stall_rate=1.0, stall_seconds=2.0, seed=3))
    with pytest.raises(PartialResultError):
        cluster.query(QUERY_1, timeout=0.5)
    cluster.coordinator.close()  # drop pooled connections (incl. stalled)
    for stack in cluster.shards:
        _wait_until(lambda stack=stack: len(stack.service.sessions) == 0)
        assert stack.db.store.pool.pinned_count() == 0
        assert stack.server.stats()["server_handler_crashes"] == 0
