"""Placement: deterministic hashing, replication rings, explicit
reassignment, replica aliasing."""

import pytest

from repro.cluster.shardmap import (
    DocumentPlacement,
    ShardMap,
    replica_alias,
    stable_hash,
)
from repro.errors import ClusterError


def test_stable_hash_is_process_independent():
    # SHA-1-derived, so these values can never drift between runs.
    assert stable_hash("bib.xml") == stable_hash("bib.xml")
    assert stable_hash("bib.xml") != stable_hash("other.xml")


def test_place_is_deterministic_and_contiguous():
    a = ShardMap(4).place("bib.xml")
    b = ShardMap(4).place("bib.xml")
    assert a == b
    assert len(a.slices) == 4
    primaries = [piece.primary for piece in a.slices]
    assert sorted(primaries) == [0, 1, 2, 3]
    # Consecutive slices sit on consecutive ring positions.
    start = primaries[0]
    assert primaries == [(start + k) % 4 for k in range(4)]


def test_whole_document_placement_routes_to_one_shard():
    placement = ShardMap(4).place("bib.xml", slices=1)
    assert not placement.partitioned
    assert len(placement.shards()) == 1


def test_replication_uses_next_ring_positions():
    placement = ShardMap(4, replication=2).place("bib.xml")
    for piece in placement.slices:
        assert piece.replicas == ((piece.primary + 1) % 4,)
        assert piece.primary not in piece.replicas
    assert placement.shards() == frozenset(range(4))


def test_replication_clamps_to_shard_count():
    shard_map = ShardMap(2, replication=5)
    assert shard_map.replication == 2
    placement = shard_map.place("bib.xml")
    for piece in placement.slices:
        assert len(piece.holders) == 2


def test_assign_reassigns_one_slice_explicitly():
    shard_map = ShardMap(4, replication=2)
    placement = shard_map.place("bib.xml")
    target = (placement.slices[0].primary + 2) % 4
    updated = shard_map.assign("bib.xml", 0, target)
    assert updated.slices[0].primary == target
    # Other slices untouched; the registry returns the new placement.
    assert updated.slices[1:] == placement.slices[1:]
    assert shard_map.placement("bib.xml") == updated


def test_assign_drops_new_primary_from_replicas():
    shard_map = ShardMap(4, replication=2)
    placement = shard_map.place("bib.xml")
    replica = placement.slices[0].replicas[0]
    updated = shard_map.assign("bib.xml", 0, replica)
    assert updated.slices[0].primary == replica
    assert replica not in updated.slices[0].replicas


def test_unknown_document_and_bad_arguments_raise_typed():
    shard_map = ShardMap(2)
    with pytest.raises(ClusterError):
        shard_map.placement("nope.xml")
    with pytest.raises(ClusterError):
        shard_map.assign("nope.xml", 0, 1)
    shard_map.place("bib.xml")
    with pytest.raises(ClusterError):
        shard_map.assign("bib.xml", 9, 1)
    with pytest.raises(ClusterError):
        shard_map.assign("bib.xml", 0, 7)
    with pytest.raises(ClusterError):
        ShardMap(0)


def test_replica_alias_is_distinct_per_slice():
    assert replica_alias("bib.xml", 0) != "bib.xml"
    assert replica_alias("bib.xml", 0) != replica_alias("bib.xml", 1)


def test_knows_and_documents():
    shard_map = ShardMap(2)
    assert not shard_map.knows("bib.xml")
    shard_map.place("bib.xml")
    shard_map.place("aux.xml")
    assert shard_map.knows("bib.xml")
    assert shard_map.documents() == ["aux.xml", "bib.xml"]
