"""Coordinator correctness on healthy clusters: structural identity
with the single-node answer across topologies and plan modes, typed
catalog errors, EXPLAIN/HEALTH/STATS fan-out."""

from __future__ import annotations

import pytest

from repro.cluster import LocalCluster, LocalClusterConfig
from repro.datagen.dblp import DBLPConfig, generate_dblp
from repro.datagen.sample import QUERY_1, QUERY_2, QUERY_COUNT
from repro.errors import ClusterError, ClusterMergeError
from repro.query.database import PLAN_MODES, Database
from repro.xmlmodel.diff import assert_collections_equal

CORPUS_CONFIG = DBLPConfig(n_articles=48, n_authors=16, seed=5)
TOPOLOGIES = (1, 2, 4)


@pytest.fixture(scope="module")
def corpus():
    return generate_dblp(CORPUS_CONFIG)


@pytest.fixture(scope="module")
def single_node(corpus):
    db = Database()
    db.load(tree=corpus.deep_copy(), name="bib.xml")
    return db


@pytest.fixture(scope="module", params=TOPOLOGIES)
def topology(request, corpus):
    with LocalCluster(LocalClusterConfig(shards=request.param)) as cluster:
        cluster.load(tree=corpus.deep_copy(), name="bib.xml")
        yield request.param, cluster


@pytest.mark.parametrize("query", [QUERY_1, QUERY_2, QUERY_COUNT])
def test_identity_across_topologies(topology, single_node, query):
    shards, cluster = topology
    want = single_node.query(query).collection
    got = cluster.query(query)
    assert not got.partial
    assert_collections_equal(want, got.collection)


@pytest.mark.parametrize("mode", PLAN_MODES)
def test_identity_across_plan_modes(topology, single_node, mode):
    shards, cluster = topology
    want = single_node.query(QUERY_1, plan=mode).collection
    got = cluster.query(QUERY_1, plan=mode)
    assert_collections_equal(want, got.collection)


def test_concat_scalar_and_sortby_through_coordinator(topology, single_node):
    shards, cluster = topology
    queries = (
        'FOR $b IN document("bib.xml")//article RETURN $b/title',
        'count(document("bib.xml")//author)',
        """FOR $a IN distinct-values(document("bib.xml")//author)
           LET $t := document("bib.xml")//article[author = $a]/title
           RETURN <r>{$a} {count($t)}</r> SORTBY (.)""",
    )
    for query in queries:
        want = single_node.query(query).collection
        assert_collections_equal(want, cluster.query(query).collection)


def test_load_report_covers_every_slice(topology, corpus):
    shards, cluster = topology
    report = cluster.load(tree=corpus.deep_copy(), name="second.xml")
    assert report.document == "second.xml"
    assert len(report.slices) == shards
    assert report.partitioned == (shards > 1)
    # Every root child landed somewhere: node totals cover the corpus.
    assert report.nodes == corpus.subtree_size() + (shards - 1)


def test_unknown_document_is_a_typed_catalog_error(topology):
    shards, cluster = topology
    with pytest.raises(ClusterError):
        cluster.query(
            'FOR $a IN distinct-values(document("ghost.xml")//author) '
            "RETURN <r>{$a}</r>"
        )


def test_unmergeable_query_runs_on_whole_document_placement(corpus, single_node):
    # HAVING-shaped WHERE cannot merge across slices -> typed error on
    # a partitioned document, but a whole (slices=1) placement routes
    # to one shard and needs no merge at all.
    having = """
    FOR $a IN distinct-values(document("whole.xml")//author)
    LET $t := document("whole.xml")//article[author = $a]/title
    WHERE count($t) > 1
    RETURN <r>{$a}</r>
    """
    with LocalCluster(LocalClusterConfig(shards=2)) as cluster:
        cluster.load(tree=corpus.deep_copy(), name="bib.xml")
        with pytest.raises(ClusterMergeError):
            cluster.query(having.replace("whole.xml", "bib.xml"))
        cluster.load(tree=corpus.deep_copy(), name="whole.xml", slices=1)
        got = cluster.query(having)
        reference = Database()
        reference.load(tree=corpus.deep_copy(), name="whole.xml")
        assert_collections_equal(reference.query(having).collection, got.collection)


def test_explain_has_cluster_section_and_local_plan(topology):
    shards, cluster = topology
    explanation = cluster.explain(QUERY_1)
    text = explanation.render()
    assert "=== cluster plan ===" in text
    assert f"{shards} slice(s)" in text
    assert "merge:" in text
    payload = explanation.to_dict()
    assert payload["cluster"]["document"] == "bib.xml"
    assert len(payload["cluster"]["slices"]) == shards
    if shards > 1:
        assert "group" in payload["cluster"]["merge"]
        assert "SORTBY" not in payload["cluster"]["shard_query"]


def test_health_rollup_ok_and_stats_merge(topology):
    shards, cluster = topology
    health = cluster.health()
    assert health.ok
    assert set(health.shards) == set(range(shards))
    assert all(report is not None for report in health.shards.values())
    snapshot = cluster.stats()
    assert snapshot["cluster_fanouts"] >= 1
    assert snapshot["cluster_loads"] >= 1
    # Shard-side counters fold in under their own prefixes.
    assert any(key.startswith("server_") for key in snapshot)
