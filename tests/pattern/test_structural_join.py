"""Structural-join tests: correctness vs brute force, ordering, stats."""

from hypothesis import given, settings, strategies as st

from repro.indexing.labels import NodeLabel
from repro.pattern.pattern import Axis
from repro.pattern.structural_join import (
    brute_force_join,
    join_statistics,
    structural_join,
    structural_join_pairs_by_ancestor,
)
from repro.storage.store import NodeStore
from repro.xmlmodel.node import XMLNode


def labels_for(store: NodeStore, tag: str) -> list[NodeLabel]:
    out = []
    for record in store.scan():
        if store.meta.symbols.name(record.tag_sym) == tag:
            out.append(NodeLabel(record.nid, record.start, record.end, record.level))
    return out


class TestOnSampleDatabase:
    def test_article_author_ad(self, store):
        articles = labels_for(store, "article")
        authors = labels_for(store, "author")
        pairs = structural_join(articles, authors, Axis.AD)
        assert len(pairs) == 5  # one per (article, author) occurrence

    def test_article_author_pc_same_here(self, store):
        articles = labels_for(store, "article")
        authors = labels_for(store, "author")
        assert len(structural_join(articles, authors, Axis.PC)) == 5

    def test_root_to_authors(self, store):
        roots = labels_for(store, "doc_root")
        authors = labels_for(store, "author")
        assert len(structural_join(roots, authors, Axis.AD)) == 5
        assert len(structural_join(roots, authors, Axis.PC)) == 0  # not children

    def test_output_in_descendant_document_order(self, store):
        roots = labels_for(store, "doc_root")
        authors = labels_for(store, "author")
        pairs = structural_join(roots, authors, Axis.AD)
        starts = [descendant.start for _, descendant in pairs]
        assert starts == sorted(starts)

    def test_grouped_by_ancestor(self, store):
        articles = labels_for(store, "article")
        authors = labels_for(store, "author")
        grouped = structural_join_pairs_by_ancestor(articles, authors, Axis.AD)
        assert sorted(len(v) for v in grouped.values()) == [1, 2, 2]

    def test_statistics_advance(self, store):
        stats = join_statistics()
        stats.reset()
        structural_join(labels_for(store, "article"), labels_for(store, "author"), Axis.AD)
        assert stats.joins == 1
        assert stats.pairs_emitted == 5
        assert stats.candidates_consumed == 8

    def test_empty_inputs(self):
        assert structural_join([], [], Axis.AD) == []
        assert structural_join([NodeLabel(0, 0, 9, 0)], [], Axis.AD) == []
        assert structural_join([], [NodeLabel(0, 0, 9, 0)], Axis.AD) == []


def random_tree_labels(shape: list[int], fanout_seed: int) -> list[NodeLabel]:
    """Build a random tree from a shape list and return all its labels."""
    root = XMLNode("n0")
    nodes = [root]
    for i, parent_pick in enumerate(shape, start=1):
        parent = nodes[parent_pick % len(nodes)]
        nodes.append(parent.add(f"n{i}"))
    store = NodeStore()
    store.load_tree(root, "t.xml")
    return [
        NodeLabel(record.nid, record.start, record.end, record.level)
        for record in store.scan()
    ]


@settings(max_examples=60, deadline=None)
@given(
    shape=st.lists(st.integers(0, 1000), min_size=0, max_size=40),
    a_mask=st.integers(0, 2**41 - 1),
    d_mask=st.integers(0, 2**41 - 1),
    axis=st.sampled_from([Axis.AD, Axis.PC]),
)
def test_matches_brute_force(shape, a_mask, d_mask, axis):
    """On random trees and random candidate subsets, the stack join
    returns exactly the brute-force pair set."""
    labels = random_tree_labels(shape, 0)
    ancestors = [label for i, label in enumerate(labels) if a_mask & (1 << i)]
    descendants = [label for i, label in enumerate(labels) if d_mask & (1 << i)]
    fast = set(structural_join(ancestors, descendants, axis))
    slow = set(brute_force_join(ancestors, descendants, axis))
    assert fast == slow


@settings(max_examples=30, deadline=None)
@given(shape=st.lists(st.integers(0, 1000), min_size=1, max_size=40))
def test_self_join_excludes_identity(shape):
    """Joining a stream with itself never pairs a node with itself."""
    labels = random_tree_labels(shape, 0)
    pairs = structural_join(labels, labels, Axis.AD)
    assert all(a.nid != d.nid for a, d in pairs)
