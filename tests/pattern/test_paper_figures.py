"""F1/F2 golden tests: the pattern tree of Fig. 1 and the witness trees
of Fig. 2 on the Transaction sample database."""

from repro.core.selection import Selection
from repro.datagen.sample import transaction_database
from repro.pattern.matcher import TreeMatcher
from repro.pattern.pattern import Axis, PatternNode, PatternTree
from repro.pattern.predicates import ContentWildcard, conjoin, tag
from repro.xmlmodel.tree import Collection, DataTree


def fig1_pattern() -> PatternTree:
    """$1.tag = article & $2.tag = title & $2.content = "*Transaction*"
    & $3.tag = author, with pc edges (Fig. 1)."""
    root = PatternNode("$1", tag("article"))
    root.add("$2", conjoin(tag("title"), ContentWildcard("*Transaction*")), Axis.PC)
    root.add("$3", tag("author"), Axis.PC)
    return PatternTree(root)


class TestFigure1And2:
    def test_four_witnesses(self):
        """Fig. 2 shows four witness trees: the two-author Transaction
        article contributes two."""
        matches = TreeMatcher().match_tree(fig1_pattern(), transaction_database())
        assert len(matches) == 4

    def test_witness_authors(self):
        matches = TreeMatcher().match_tree(fig1_pattern(), transaction_database())
        authors = [match.bindings["$3"].content for match in matches]
        assert authors == ["Silberschatz", "Silberschatz", "Garcia-Molina", "Thompson"]

    def test_non_transaction_article_excluded(self):
        matches = TreeMatcher().match_tree(fig1_pattern(), transaction_database())
        titles = {match.bindings["$2"].content for match in matches}
        assert "Query Processing" not in titles

    def test_selection_builds_witness_trees(self):
        """Each selection output is rooted at article with exactly the
        matched title and author (Fig. 2's shape)."""
        collection = Collection([DataTree(transaction_database())])
        witnesses = Selection(fig1_pattern()).apply(collection)
        assert len(witnesses) == 4
        for tree in witnesses:
            assert tree.root.tag == "article"
            assert [child.tag for child in tree.root.children] == ["title", "author"]

    def test_two_author_article_appears_twice(self):
        collection = Collection([DataTree(transaction_database())])
        witnesses = Selection(fig1_pattern()).apply(collection)
        overview = [
            tree
            for tree in witnesses
            if tree.root.find("title").content == "Overview of Transaction Mng"
        ]
        assert len(overview) == 2
        authors = [tree.root.find("author").content for tree in overview]
        assert authors == ["Silberschatz", "Garcia-Molina"]
