"""Witness-binding container tests."""

from repro.indexing.labels import NodeLabel
from repro.pattern.witness import StoreMatch, TreeMatch
from repro.xmlmodel.node import element


class TestTreeMatch:
    def test_accessors(self):
        author = element("author", "Jack")
        match = TreeMatch(bindings={"$1": author}, tree_index=3)
        assert match.node("$1") is author
        assert match.labels() == ["$1"]
        assert match.tree_index == 3


class TestStoreMatch:
    def make(self):
        return StoreMatch(
            bindings={
                "$1": NodeLabel(10, 20, 29, 1),
                "$2": NodeLabel(12, 22, 23, 2),
            }
        )

    def test_nid_and_label(self):
        match = self.make()
        assert match.nid("$1") == 10
        assert match.label_of("$2") == NodeLabel(12, 22, 23, 2)

    def test_sort_key_follows_pattern_order(self):
        match = self.make()
        assert match.sort_key(["$1", "$2"]) == (20, 22)
        assert match.sort_key(["$2", "$1"]) == (22, 20)

    def test_values_cache_starts_empty(self):
        match = self.make()
        assert match.values == {}
        match.values["$1"] = "Jack"
        assert self.make().values == {}  # no shared state between matches
