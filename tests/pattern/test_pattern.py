"""Pattern-tree structure and tree-subset tests (rewrite Phase 1)."""

import pytest

from repro.errors import PatternError
from repro.pattern.pattern import Axis, PatternNode, PatternTree
from repro.pattern.predicates import TagEquals, tag


def chain(*specs) -> PatternTree:
    """Build a path pattern: specs are (label, tag, axis) with axis for
    the incoming edge (ignored on the first)."""
    root_label, root_tag, _ = specs[0]
    root = PatternNode(root_label, TagEquals(root_tag))
    current = root
    for label, tag_name, axis in specs[1:]:
        current = current.add(label, TagEquals(tag_name), axis)
    return PatternTree(root)


class TestStructure:
    def test_nodes_preorder(self):
        root = PatternNode("$1", tag("article"))
        root.add("$2", tag("title"))
        root.add("$3", tag("author"))
        pattern = PatternTree(root)
        assert pattern.labels() == ["$1", "$2", "$3"]

    def test_edges(self):
        root = PatternNode("$1", tag("a"))
        root.add("$2", tag("b"), Axis.AD)
        pattern = PatternTree(root)
        [(parent, child, axis)] = pattern.edges()
        assert (parent.label, child.label, axis) == ("$1", "$2", Axis.AD)

    def test_node_lookup(self):
        pattern = chain(("$1", "a", None), ("$2", "b", Axis.PC))
        assert pattern.node("$2").predicate == TagEquals("b")
        with pytest.raises(PatternError):
            pattern.node("$9")

    def test_has_node(self):
        pattern = chain(("$1", "a", None), ("$2", "b", Axis.PC))
        assert pattern.has_node("$1")
        assert not pattern.has_node("$3")

    def test_duplicate_labels_rejected(self):
        root = PatternNode("$1", tag("a"))
        root.add("$1", tag("b"))
        with pytest.raises(PatternError):
            PatternTree(root)

    def test_strengthen_conjoins(self):
        node = PatternNode("$1", tag("a"))
        node.strengthen(TagEquals("a"))
        assert node.predicate.matches("a", None, {})

    def test_sketch(self):
        pattern = chain(("$1", "doc_root", None), ("$2", "author", Axis.AD))
        text = pattern.sketch()
        assert "doc_root" in text and "-ad-" in text


class TestTreeSubset:
    """The Phase-1 subset test with closure marks (paper footnote 6)."""

    def test_identity_subset(self):
        a = chain(("$1", "doc_root", None), ("$2", "author", Axis.AD))
        b = chain(("$x", "doc_root", None), ("$y", "author", Axis.AD))
        mapping = a.is_tree_subset_of(b)
        assert mapping == {"$1": "$x", "$2": "$y"}

    def test_query1_shape(self):
        """Fig. 4: outer (root-ad-author) is a subset of the inner
        (root-ad-article-pc-author) because the composed root~>author
        edge exists in the closure with an ad mark."""
        outer = chain(("$1", "doc_root", None), ("$2", "author", Axis.AD))
        inner = chain(
            ("$4", "doc_root", None),
            ("$5", "article", Axis.AD),
            ("$6", "author", Axis.PC),
        )
        mapping = outer.is_tree_subset_of(inner)
        assert mapping == {"$1": "$4", "$2": "$6"}

    def test_pc_requirement_not_met_by_composition(self):
        """pc ⊆ ad but NOT ad ⊆ pc: a required pc edge cannot be served
        by a composed (ad-marked) closure edge."""
        outer = chain(("$1", "doc_root", None), ("$2", "author", Axis.PC))
        inner = chain(
            ("$4", "doc_root", None),
            ("$5", "article", Axis.PC),
            ("$6", "author", Axis.PC),
        )
        assert outer.is_tree_subset_of(inner) is None

    def test_pc_requirement_met_by_direct_pc(self):
        outer = chain(("$1", "article", None), ("$2", "author", Axis.PC))
        inner = chain(("$a", "article", None), ("$b", "author", Axis.PC))
        assert outer.is_tree_subset_of(inner) is not None

    def test_ad_requirement_met_by_pc_edge(self):
        outer = chain(("$1", "article", None), ("$2", "author", Axis.AD))
        inner = chain(("$a", "article", None), ("$b", "author", Axis.PC))
        assert outer.is_tree_subset_of(inner) is not None

    def test_missing_node_not_subset(self):
        outer = chain(("$1", "doc_root", None), ("$2", "editor", Axis.AD))
        inner = chain(
            ("$4", "doc_root", None),
            ("$5", "article", Axis.AD),
            ("$6", "author", Axis.PC),
        )
        assert outer.is_tree_subset_of(inner) is None

    def test_branching_pattern_subset(self):
        outer_root = PatternNode("$1", tag("article"))
        outer_root.add("$2", tag("author"), Axis.AD)
        outer = PatternTree(outer_root)

        inner_root = PatternNode("$a", tag("article"))
        inner_root.add("$b", tag("title"), Axis.PC)
        inner_root.add("$c", tag("author"), Axis.PC)
        inner = PatternTree(inner_root)

        mapping = outer.is_tree_subset_of(inner)
        assert mapping == {"$1": "$a", "$2": "$c"}

    def test_edge_direction_matters(self):
        outer = chain(("$1", "author", None), ("$2", "article", Axis.AD))
        inner = chain(("$a", "article", None), ("$b", "author", Axis.PC))
        assert outer.is_tree_subset_of(inner) is None

    def test_backtracking_over_ambiguous_nodes(self):
        """Two candidate targets share a predicate; only one satisfies the
        edge, so the search must backtrack."""
        outer = chain(("$1", "article", None), ("$2", "author", Axis.PC))
        inner_root = PatternNode("$a", tag("article"))
        inner_root.add("$b", tag("author"), Axis.PC)
        sub = inner_root.add("$c", tag("note"), Axis.PC)
        sub.add("$d", tag("author"), Axis.PC)  # author NOT a pc-child of article
        inner = PatternTree(inner_root)
        mapping = outer.is_tree_subset_of(inner)
        assert mapping == {"$1": "$a", "$2": "$b"}
