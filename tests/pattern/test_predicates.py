"""Predicate-language tests."""

import pytest

from repro.errors import PatternError
from repro.pattern.predicates import (
    AnyNode,
    AttributeEquals,
    Conjunction,
    ContentCompare,
    ContentEquals,
    ContentWildcard,
    TagEquals,
    conjoin,
    tag,
    tag_content,
)


def check(pred, tag_name="t", content=None, attributes=None):
    return pred.matches(tag_name, content, attributes or {})


class TestAtoms:
    def test_any_node(self):
        assert check(AnyNode(), "anything", "x", {"a": "b"})

    def test_tag_equals(self):
        assert check(TagEquals("article"), "article")
        assert not check(TagEquals("article"), "book")
        assert TagEquals("article").tag_constraint() == "article"

    def test_content_equals(self):
        pred = ContentEquals("Jack")
        assert check(pred, content="Jack")
        assert not check(pred, content="Jill")
        assert not check(pred, content=None)
        assert pred.content_equality() == "Jack"

    def test_attribute_equals(self):
        pred = AttributeEquals("lang", "en")
        assert check(pred, attributes={"lang": "en"})
        assert not check(pred, attributes={"lang": "fr"})
        assert not check(pred, attributes={})


class TestWildcard:
    @pytest.mark.parametrize(
        "pattern,text,expected",
        [
            ("*Transaction*", "Overview of Transaction Mng", True),
            ("*Transaction*", "Transaction", True),
            ("*Transaction*", "transactions", False),
            ("Transaction*", "Transaction Mng", True),
            ("Transaction*", "A Transaction", False),
            ("*Mng", "Transaction Mng", True),
            ("*Mng", "Mng things", False),
            ("exact", "exact", True),
            ("exact", "not exact", False),
            ("a*b*c", "aXXbYYc", True),
            ("a*b*c", "acb", False),
            ("*", "anything", True),
            ("**", "anything", True),
        ],
    )
    def test_glob_semantics(self, pattern, text, expected):
        assert check(ContentWildcard(pattern), content=text) is expected

    def test_none_content_never_matches(self):
        assert not check(ContentWildcard("*"), content=None)

    def test_literal_pattern_exposes_equality(self):
        assert ContentWildcard("exact").content_equality() == "exact"
        assert ContentWildcard("ex*act").content_equality() is None


class TestCompare:
    def test_numeric_comparison(self):
        assert check(ContentCompare("<", "2000"), content="1999")
        assert not check(ContentCompare("<", "2000"), content="2001")
        assert check(ContentCompare(">=", "10"), content="10")

    def test_lexicographic_fallback(self):
        assert check(ContentCompare("<", "b"), content="a")
        assert check(ContentCompare("!=", "x"), content="y")

    def test_none_content(self):
        assert not check(ContentCompare("<", "5"), content=None)

    def test_bad_operator_rejected(self):
        with pytest.raises(PatternError):
            ContentCompare("~", "x")


class TestConjunction:
    def test_all_parts_required(self):
        pred = conjoin(TagEquals("author"), ContentEquals("Jack"))
        assert check(pred, "author", "Jack")
        assert not check(pred, "author", "Jill")
        assert not check(pred, "title", "Jack")

    def test_flattening(self):
        inner = Conjunction([TagEquals("a"), ContentEquals("x")])
        outer = Conjunction([inner, AttributeEquals("k", "v")])
        assert len(outer.parts) == 3

    def test_any_node_dropped(self):
        pred = conjoin(AnyNode(), TagEquals("a"))
        assert isinstance(pred, TagEquals)

    def test_empty_conjunction_is_any(self):
        assert isinstance(conjoin(), AnyNode)

    def test_constraint_extraction(self):
        pred = conjoin(TagEquals("author"), ContentEquals("Jack"))
        assert pred.tag_constraint() == "author"
        assert pred.content_equality() == "Jack"

    def test_conflicting_tags_no_constraint(self):
        pred = Conjunction([TagEquals("a"), TagEquals("b")])
        assert pred.tag_constraint() is None


class TestEquivalence:
    def test_canonical_equality_order_insensitive(self):
        a = conjoin(TagEquals("author"), ContentEquals("Jack"))
        b = conjoin(ContentEquals("Jack"), TagEquals("author"))
        assert a == b
        assert hash(a) == hash(b)

    def test_different_predicates_unequal(self):
        assert TagEquals("a") != TagEquals("b")
        assert TagEquals("a") != ContentEquals("a")

    def test_helpers(self):
        assert tag("x") == TagEquals("x")
        assert tag_content("x", "1") == conjoin(TagEquals("x"), ContentEquals("1"))

    def test_describe_readable(self):
        pred = conjoin(TagEquals("title"), ContentWildcard("*Transaction*"))
        text = pred.describe()
        assert "title" in text and "Transaction" in text
