"""Matcher tests: store matcher vs tree matcher, candidate sources,
residual predicates, and ordering."""

from hypothesis import given, settings, strategies as st

from repro.indexing.manager import IndexManager
from repro.pattern.matcher import StoreMatcher, TreeMatcher
from repro.pattern.pattern import Axis, PatternNode, PatternTree
from repro.pattern.predicates import (
    AttributeEquals,
    ContentCompare,
    ContentEquals,
    ContentWildcard,
    conjoin,
    tag,
)
from repro.storage.store import NodeStore
from repro.xmlmodel.node import XMLNode, element


def article_author_pattern() -> PatternTree:
    root = PatternNode("$1", tag("article"))
    root.add("$2", tag("author"), Axis.PC)
    return PatternTree(root)


def matcher_pair(tree: XMLNode):
    store = NodeStore()
    store.load_tree(tree, "t.xml")
    indexes = IndexManager(store)
    indexes.build()
    return store, StoreMatcher(store, indexes)


class TestStoreMatcher:
    def test_simple_match_count(self, store, indexes):
        matcher = StoreMatcher(store, indexes)
        assert len(matcher.match(article_author_pattern())) == 5

    def test_bindings_are_consistent(self, store, indexes):
        matcher = StoreMatcher(store, indexes)
        for match in matcher.match(article_author_pattern()):
            article = match.bindings["$1"]
            author = match.bindings["$2"]
            assert article.contains(author)
            assert store.tag(article.nid) == "article"
            assert store.tag(author.nid) == "author"

    def test_matches_in_document_order(self, store, indexes):
        matcher = StoreMatcher(store, indexes)
        matches = matcher.match(article_author_pattern())
        keys = [m.sort_key(["$1", "$2"]) for m in matches]
        assert keys == sorted(keys)

    def test_value_predicate_uses_value_index(self, store, indexes):
        root = PatternNode("$1", tag("article"))
        root.add("$2", conjoin(tag("author"), ContentEquals("Jack")), Axis.PC)
        matcher = StoreMatcher(store, indexes)
        matches = matcher.match(PatternTree(root))
        assert len(matches) == 2
        # Covered by indexes: no residual record checks needed.
        assert matcher.stats.residual_checks == 0

    def test_wildcard_needs_residual_checks(self, store, indexes):
        root = PatternNode("$1", tag("article"))
        root.add("$2", conjoin(tag("title"), ContentWildcard("*XML*")), Axis.PC)
        matcher = StoreMatcher(store, indexes)
        matches = matcher.match(PatternTree(root))
        assert len(matches) == 2
        assert matcher.stats.residual_checks > 0

    def test_comparison_predicate(self):
        tree = element(
            "doc_root",
            None,
            element("article", None, element("year", "1999")),
            element("article", None, element("year", "2001")),
        )
        store, matcher = matcher_pair(tree)
        root = PatternNode("$1", tag("article"))
        root.add("$2", conjoin(tag("year"), ContentCompare("<", "2000")), Axis.PC)
        matches = matcher.match(PatternTree(root))
        assert len(matches) == 1
        assert store.content(matches[0].nid("$2")) == "1999"

    def test_attribute_predicate_scans(self):
        tree = element("doc_root", None)
        tree.add("item", "a", lang="en")
        tree.add("item", "b", lang="fr")
        store, matcher = matcher_pair(tree)
        pattern = PatternTree(
            PatternNode("$1", conjoin(tag("item"), AttributeEquals("lang", "fr")))
        )
        matches = matcher.match(pattern)
        assert len(matches) == 1
        assert store.content(matches[0].nid("$1")) == "b"

    def test_unconstrained_node_falls_back_to_scan(self, store, indexes):
        root = PatternNode("$1")  # any node
        root.add("$2", tag("title"), Axis.PC)
        matcher = StoreMatcher(store, indexes)
        matches = matcher.match(PatternTree(root))
        # Each title has exactly one parent: the articles.
        assert len(matches) == 3

    def test_no_candidates_short_circuits(self, store, indexes):
        root = PatternNode("$1", tag("article"))
        root.add("$2", tag("ghost"), Axis.PC)
        matcher = StoreMatcher(store, indexes)
        assert matcher.match(PatternTree(root)) == []

    def test_root_candidates_restriction(self, store, indexes):
        matcher = StoreMatcher(store, indexes)
        all_articles = indexes.labels_for_tag("article")
        restricted = matcher.match(
            article_author_pattern(), root_candidates=all_articles[:1]
        )
        assert len(restricted) == 2  # first article has two authors

    def test_scan_mode_equivalent(self, store, indexes):
        indexed = StoreMatcher(store, indexes, use_indexes=True)
        scanning = StoreMatcher(store, indexes, use_indexes=False)
        pattern = article_author_pattern()
        a = [(m.nid("$1"), m.nid("$2")) for m in indexed.match(pattern)]
        b = [(m.nid("$1"), m.nid("$2")) for m in scanning.match(pattern)]
        assert a == b

    def test_ad_vs_pc_depth(self):
        tree = element(
            "doc_root",
            None,
            element(
                "article",
                None,
                element("author", "Jack", element("author", "Nested")),
            ),
        )
        _, matcher = matcher_pair(tree)
        pc_root = PatternNode("$1", tag("article"))
        pc_root.add("$2", tag("author"), Axis.PC)
        ad_root = PatternNode("$1", tag("article"))
        ad_root.add("$2", tag("author"), Axis.AD)
        assert len(matcher.match(PatternTree(pc_root))) == 1
        assert len(matcher.match(PatternTree(ad_root))) == 2


class TestTreeMatcher:
    def test_match_anywhere_in_tree(self, fig6_tree):
        matches = TreeMatcher().match_tree(article_author_pattern(), fig6_tree)
        assert len(matches) == 5

    def test_tree_index_recorded(self, fig6_collection):
        matches = TreeMatcher().match_collection(
            article_author_pattern(), fig6_collection
        )
        assert all(match.tree_index == 0 for match in matches)

    def test_branching_pattern_cartesian(self, fig6_tree):
        root = PatternNode("$1", tag("article"))
        root.add("$2", tag("title"), Axis.PC)
        root.add("$3", tag("author"), Axis.PC)
        matches = TreeMatcher().match_tree(PatternTree(root), fig6_tree)
        assert len(matches) == 5  # title x author per article

    def test_no_match_when_child_missing(self):
        tree = element("doc_root", None, element("article", None))
        matches = TreeMatcher().match_tree(article_author_pattern(), tree)
        assert matches == []

    def test_deep_pattern_chain(self):
        tree = element(
            "doc_root",
            None,
            element(
                "article",
                None,
                element("author", "A", element("institution", "UM")),
            ),
        )
        root = PatternNode("$1", tag("article"))
        author = root.add("$2", tag("author"), Axis.PC)
        author.add("$3", tag("institution"), Axis.PC)
        matches = TreeMatcher().match_tree(PatternTree(root), tree)
        assert len(matches) == 1
        assert matches[0].bindings["$3"].content == "UM"


# ----------------------------------------------------------------------
# Equivalence: the two matchers agree on random trees.
# ----------------------------------------------------------------------
tags_strategy = st.sampled_from(["a", "b", "c"])


@st.composite
def random_trees(draw, max_depth=3):
    node = XMLNode(draw(tags_strategy), draw(st.one_of(st.none(), st.sampled_from(["x", "y"]))))
    if max_depth > 0:
        for child in draw(st.lists(random_trees(max_depth=max_depth - 1), max_size=3)):
            node.append_child(child)
    return node


@st.composite
def random_patterns(draw):
    root = PatternNode("$1", tag(draw(tags_strategy)))
    current = root
    for index in range(draw(st.integers(0, 2))):
        axis = draw(st.sampled_from([Axis.PC, Axis.AD]))
        current = current.add(f"$x{index}", tag(draw(tags_strategy)), axis)
    return PatternTree(root)


@settings(max_examples=60, deadline=None)
@given(tree=random_trees(), pattern=random_patterns())
def test_store_and_tree_matchers_agree(tree, pattern):
    """Same witnesses (as nid tuples) from both matchers."""
    stored = tree.deep_copy()
    store = NodeStore()
    store.load_tree(stored, "t.xml")
    indexes = IndexManager(store)
    indexes.build()
    labels = [node.label for node in pattern.nodes()]
    from_store = [
        tuple(match.nid(label) for label in labels)
        for match in StoreMatcher(store, indexes).match(pattern)
    ]
    from_tree = sorted(
        tuple(match.bindings[label].nid for label in labels)
        for match in TreeMatcher().match_tree(pattern, stored)
    )
    assert sorted(from_store) == from_tree
