"""Synthetic DBLP generator tests."""

from repro.datagen.dblp import (
    DBLPConfig,
    generate_dblp,
    generate_dblp_with_profile,
)


class TestDeterminism:
    def test_same_seed_same_document(self):
        config = DBLPConfig(n_articles=50, n_authors=20, seed=3)
        assert generate_dblp(config).structurally_equal(generate_dblp(config))

    def test_different_seeds_differ(self):
        a = generate_dblp(DBLPConfig(n_articles=50, n_authors=20, seed=3))
        b = generate_dblp(DBLPConfig(n_articles=50, n_authors=20, seed=4))
        assert not a.structurally_equal(b)


class TestShape:
    def test_article_count(self):
        tree = generate_dblp(DBLPConfig(n_articles=37, n_authors=10))
        assert len(tree.findall("article")) == 37
        assert tree.tag == "doc_root"

    def test_article_fields(self):
        tree = generate_dblp(DBLPConfig(n_articles=5, n_authors=3))
        for article in tree.children:
            assert article.find("title") is not None
            assert article.find("journal") is not None
            assert article.find("year") is not None
            assert article.find("pages") is not None

    def test_authors_within_pool(self):
        config = DBLPConfig(n_articles=80, n_authors=7)
        tree, profile = generate_dblp_with_profile(config)
        assert profile.n_distinct_authors <= 7

    def test_no_duplicate_authors_per_article(self):
        tree = generate_dblp(DBLPConfig(n_articles=100, n_authors=5, seed=2))
        for article in tree.children:
            names = [a.content for a in article.findall("author")]
            assert len(names) == len(set(names))

    def test_some_articles_have_no_authors(self):
        """The paper's motivation: "Yet other articles may have no
        authors at all."""
        _, profile = generate_dblp_with_profile(
            DBLPConfig(n_articles=300, n_authors=40, seed=1)
        )
        assert profile.articles_without_authors > 0

    def test_multi_author_articles_exist(self):
        _, profile = generate_dblp_with_profile(
            DBLPConfig(n_articles=300, n_authors=40, seed=1)
        )
        assert profile.max_authors_per_article >= 2

    def test_popularity_skew(self):
        """Zipf pick: the most prolific author has clearly more articles
        than the median one."""
        _, profile = generate_dblp_with_profile(
            DBLPConfig(n_articles=500, n_authors=50, seed=1)
        )
        counts = sorted(profile.author_article_counts.values())
        assert counts[-1] >= 3 * counts[len(counts) // 2]

    def test_institutions_optional(self):
        without = generate_dblp(DBLPConfig(n_articles=10, n_authors=5))
        assert not without.find_descendants("institution")
        with_inst = generate_dblp(
            DBLPConfig(n_articles=10, n_authors=5, with_institutions=True)
        )
        assert with_inst.find_descendants("institution")

    def test_author_institution_stable(self):
        """One author always carries the same institution."""
        tree = generate_dblp(
            DBLPConfig(n_articles=200, n_authors=10, seed=5, with_institutions=True)
        )
        seen: dict[str, str] = {}
        for author in tree.find_descendants("author"):
            institution = author.find("institution").content
            assert seen.setdefault(author.content, institution) == institution


class TestProfile:
    def test_profile_consistency(self):
        config = DBLPConfig(n_articles=120, n_authors=30, seed=6)
        tree, profile = generate_dblp_with_profile(config)
        assert profile.n_articles == 120
        assert profile.n_nodes == tree.subtree_size()
        occurrences = len(tree.find_descendants("author"))
        assert profile.n_author_occurrences == occurrences
        assert profile.n_distinct_authors == len(
            {a.content for a in tree.find_descendants("author")}
        )

    def test_scaled_config(self):
        config = DBLPConfig(n_articles=100, n_authors=40)
        half = config.scaled(0.5)
        assert half.n_articles == 50
        assert half.n_authors == 20
        assert half.seed == config.seed

    def test_scaled_minimum_one(self):
        tiny = DBLPConfig(n_articles=2, n_authors=2).scaled(0.1)
        assert tiny.n_articles == 1
        assert tiny.n_authors == 1
