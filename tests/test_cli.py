"""CLI tests (argument wiring and end-to-end subcommands)."""

import os

import pytest

from repro.cli import main
from repro.datagen.sample import QUERY_COUNT


@pytest.fixture
def bib_file(tmp_path):
    path = os.path.join(tmp_path, "bib.xml")
    assert main(["generate", "--articles", "30", "--authors", "10", path]) == 0
    return path


class TestGenerate:
    def test_writes_xml(self, bib_file):
        with open(bib_file, encoding="utf-8") as handle:
            text = handle.read()
        assert text.startswith("<?xml")
        assert "<article>" in text

    def test_deterministic_with_seed(self, tmp_path):
        a = os.path.join(tmp_path, "a.xml")
        b = os.path.join(tmp_path, "b.xml")
        main(["generate", "--articles", "10", "--seed", "3", a])
        main(["generate", "--articles", "10", "--seed", "3", b])
        assert open(a).read() == open(b).read()


class TestQuery:
    def test_default_query1(self, bib_file, capsys):
        assert main(["query", bib_file]) == 0
        out = capsys.readouterr().out
        assert "authorpubs" in out

    def test_query_file_and_plan(self, bib_file, tmp_path, capsys):
        query_path = os.path.join(tmp_path, "q.xq")
        with open(query_path, "w", encoding="utf-8") as handle:
            handle.write(QUERY_COUNT)
        assert main(["query", bib_file, "--plan", "naive", "--query-file", query_path]) == 0
        assert "authorpubs" in capsys.readouterr().out

    def test_explain(self, bib_file, capsys):
        assert main(["explain", bib_file]) == 0
        out = capsys.readouterr().out
        assert "naive (join) plan" in out
        assert "GROUPBY" in out

    def test_explain_verbose(self, bib_file, capsys):
        assert main(["explain", bib_file, "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "optimizer" in out
        assert "rows" in out

    def test_info(self, bib_file, capsys):
        assert main(["info", bib_file]) == 0
        out = capsys.readouterr().out
        assert "document bib.xml" in out
        assert "article=" in out


class TestQueryTimeout:
    def test_expired_timeout_exits_2(self, bib_file, capsys):
        assert main(["query", bib_file, "--timeout", "0"]) == 2
        assert "timed out" in capsys.readouterr().err

    def test_generous_timeout_succeeds(self, bib_file, capsys):
        assert main(["query", bib_file, "--timeout", "60"]) == 0
        assert "authorpubs" in capsys.readouterr().out

    def test_timeout_with_plan_and_analyze(self, bib_file, capsys):
        assert main(["query", bib_file, "--plan", "naive", "--analyze", "--timeout", "0"]) == 2
        assert "timed out" in capsys.readouterr().err


class TestLoad:
    def test_load_streams_into_directory(self, bib_file, tmp_path, capsys):
        directory = os.path.join(tmp_path, "db")
        assert main(["load", bib_file, directory, "--batch-size", "60"]) == 0
        out = capsys.readouterr().out
        assert "loaded bib.xml:" in out
        assert "batch(es)" in out
        # More than one batch at this size, and the store persisted.
        from repro.query.database import Database

        with Database(directory) as db:
            report = db.verify()
            assert report.ok and report.index_fresh
            assert "bib.xml" in db.documents()

    def test_load_progress_goes_to_stderr(self, bib_file, tmp_path, capsys):
        directory = os.path.join(tmp_path, "db")
        assert (
            main(
                [
                    "load",
                    bib_file,
                    directory,
                    "--batch-size",
                    "60",
                    "--progress",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "batch 1:" in captured.err
        assert "generation" in captured.err

    def test_load_custom_name(self, bib_file, tmp_path, capsys):
        directory = os.path.join(tmp_path, "db")
        assert main(["load", bib_file, directory, "--name", "other.xml"]) == 0
        assert "loaded other.xml:" in capsys.readouterr().out


class TestServe:
    def test_serve_end_to_end(self, bib_file):
        import json
        import socket

        from repro.datagen.sample import QUERY_1
        from repro.query.database import Database
        from repro.service import QueryService, ServiceConfig
        from repro.service.server import serve

        # Exercise the same wiring `timber-py serve` performs, against
        # an ephemeral port (serve_forever itself would block main()).
        db = Database()
        db.load(path=bib_file, name="bib.xml")
        service = QueryService(db, ServiceConfig(workers=2))
        server = serve(service, port=0)
        server.serve_background()
        try:
            with socket.create_connection(server.endpoint, timeout=30.0) as sock:
                handle = sock.makefile("rw", encoding="utf-8", newline="\n")
                handle.write("QUERY " + json.dumps({"q": QUERY_1}) + "\n")
                handle.flush()
                reply = handle.readline().strip()
            assert reply.startswith("OK ")
            assert json.loads(reply[3:])["rows"] > 0
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            db.close()

    def test_serve_flags_parse(self):
        # Argument wiring only: bad flag values must be rejected by
        # argparse before any server starts.
        with pytest.raises(SystemExit):
            main(["serve", "nope.xml", "--port", "not-a-port"])

    def test_serve_foreground_sigterm_drains_cleanly(self, bib_file):
        import re
        import signal
        import socket
        import subprocess
        import sys

        import repro

        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                bib_file,
                "--port",
                "0",
                "--workers",
                "2",
                "--drain-seconds",
                "5",
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stderr.readline()
            match = re.search(r"on 127\.0\.0\.1:(\d+)", banner)
            assert match, f"no endpoint in banner: {banner!r}"
            port = int(match.group(1))
            with socket.create_connection(("127.0.0.1", port), timeout=30.0) as sock:
                handle = sock.makefile("rw", encoding="utf-8", newline="\n")
                handle.write("PING\n")
                handle.flush()
                assert handle.readline().strip() == 'OK {"pong": true}'
                process.send_signal(signal.SIGTERM)
                # The drain tells this idle connection BYE, then closes.
                assert handle.readline().strip() == "BYE"
            returncode = process.wait(timeout=30.0)
            remainder = process.stderr.read()
            assert returncode == 0, remainder
            assert "draining" in remainder
            assert "drain: clean" in remainder
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)


class TestExperiments:
    def test_e1(self, capsys):
        assert main(["experiment", "e1", "--articles", "40", "--authors", "15"]) == 0
        out = capsys.readouterr().out
        assert "E1 titles-by-author" in out

    def test_a2(self, capsys):
        assert main(["experiment", "a2", "--articles", "40", "--authors", "15"]) == 0
        out = capsys.readouterr().out
        assert "A2 grouping strategies" in out

    def test_e3_scaling(self, capsys):
        assert main(["experiment", "e3", "--articles", "40", "--authors", "15"]) == 0
        out = capsys.readouterr().out
        assert "E3 scaling sweep" in out

    def test_a1_match_strategies(self, capsys):
        assert main(["experiment", "a1", "--articles", "40", "--authors", "15"]) == 0
        assert "A1 match strategies" in capsys.readouterr().out

    def test_a3_buffer_pool(self, capsys):
        assert main(["experiment", "a3", "--articles", "40", "--authors", "15"]) == 0
        assert "A3 buffer pool" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "zz"])


class TestVerifyRepair:
    @pytest.fixture
    def db_dir(self, tmp_path):
        from repro.datagen.sample import figure6_database
        from repro.storage.store import NodeStore

        directory = os.path.join(tmp_path, "db")
        with NodeStore(directory) as store:
            store.load_tree(figure6_database(), "a.xml")
        return directory

    def _corrupt(self, directory):
        from repro.storage.store import DATA_FILE

        with open(os.path.join(directory, DATA_FILE), "r+b") as handle:
            handle.seek(80)
            handle.write(b"\x00\xff\x00\xff")

    def test_verify_clean_store(self, db_dir, capsys):
        assert main(["verify", db_dir]) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out

    def test_verify_corrupt_store_exits_nonzero(self, db_dir, capsys):
        self._corrupt(db_dir)
        assert main(["verify", db_dir]) == 1
        out = capsys.readouterr().out
        assert "verdict: CORRUPT" in out
        assert "a.xml" in out

    def test_repair_then_verify_ok(self, db_dir, capsys):
        self._corrupt(db_dir)
        assert main(["repair", db_dir]) == 0
        out = capsys.readouterr().out
        assert "quarantined 1 page(s)" in out
        assert "dropped 1 document(s)" in out
        capsys.readouterr()
        assert main(["verify", db_dir]) == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_repair_clean_store_is_noop(self, db_dir, capsys):
        assert main(["repair", db_dir]) == 0
        out = capsys.readouterr().out
        assert "quarantined 0 page(s)" in out


def test_cluster_command_reports_identity(capsys):
    assert main(
        ["cluster", "--shards", "2", "--articles", "24", "--authors", "8"]
    ) == 0
    out = capsys.readouterr().out
    assert "identical to single-node: yes" in out
    assert "=== cluster plan ===" in out
    assert "health: ok" in out


def test_cluster_command_degrade_path(capsys):
    assert main(
        [
            "cluster",
            "--shards", "2",
            "--articles", "24",
            "--authors", "8",
            "--degrade",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "PartialResultError" in out
    assert "health: degraded" in out
