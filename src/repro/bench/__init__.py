"""Experiment harness (S17): the paper's evaluation, rerunnable."""

from .experiments import (
    DEFAULT_CONFIG,
    PAPER_NUMBERS,
    ScalingReport,
    run_ablation_buffer_pool,
    run_ablation_grouping_strategies,
    run_ablation_match_strategies,
    run_experiment1,
    run_experiment2,
    run_scaling,
)
from .figures import bar_chart, report_chart
from .harness import ExperimentReport, RunRecord, build_database, measured_run
from .reporting import format_report, format_scaling, format_table

__all__ = [
    "DEFAULT_CONFIG",
    "PAPER_NUMBERS",
    "ScalingReport",
    "run_ablation_buffer_pool",
    "run_ablation_grouping_strategies",
    "run_ablation_match_strategies",
    "run_experiment1",
    "run_experiment2",
    "run_scaling",
    "ExperimentReport",
    "RunRecord",
    "build_database",
    "measured_run",
    "format_report",
    "format_scaling",
    "format_table",
    "bar_chart",
    "report_chart",
]
