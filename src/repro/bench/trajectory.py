"""Consolidated benchmark trajectory: one JSON artifact per run.

Every measured benchmark execution appends an entry to a process-global
recorder; at the end of the run the harness (the pytest benchmark
session, or the CLI ``experiment`` subcommand) writes a single
``BENCH_trajectory.json`` capturing the whole trajectory — bench id,
scale, wall time, and the key counters — so a CI artifact or a local
run leaves one machine-readable record instead of scattered stdout
tables.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

#: The default artifact name, written at the invoking directory's root.
TRAJECTORY_FILE = "BENCH_trajectory.json"

#: The counter subset worth carrying into the trajectory (storage cost,
#: I/O, join work, and the columnar-path counters).
KEY_COUNTERS = (
    "value_lookups",
    "record_lookups",
    "hits",
    "misses",
    "physical_reads",
    "join_runs",
    "join_pairs",
    "columnar_builds",
    "columnar_scans",
    "columnar_fallbacks",
    "columnar_window_scans",
    "columnar_merge_joins",
)


@dataclass
class TrajectoryRecorder:
    """Accumulates benchmark entries; serializes to one JSON document."""

    entries: list[dict] = field(default_factory=list)

    def record(
        self,
        bench: str,
        seconds: float,
        *,
        scale: float | None = None,
        counters: dict | None = None,
        **extra: object,
    ) -> dict:
        entry: dict = {"bench": bench, "seconds": round(seconds, 6)}
        if scale is not None:
            entry["scale"] = scale
        if counters:
            entry["counters"] = {
                key: counters[key] for key in KEY_COUNTERS if counters.get(key)
            }
        entry.update(extra)
        self.entries.append(entry)
        return entry

    def reset(self) -> None:
        self.entries.clear()

    def to_dict(self) -> dict:
        return {"created": time.time(), "entries": list(self.entries)}

    def write(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")
        return path


_GLOBAL_RECORDER = TrajectoryRecorder()


def trajectory_recorder() -> TrajectoryRecorder:
    """The process-global recorder benches append to."""
    return _GLOBAL_RECORDER


def record_run(bench: str, seconds: float, **kwargs) -> dict:
    """Append one entry to the global trajectory (see
    :meth:`TrajectoryRecorder.record` for the fields)."""
    return _GLOBAL_RECORDER.record(bench, seconds, **kwargs)


def write_trajectory(path: str = TRAJECTORY_FILE) -> str | None:
    """Write the global trajectory to ``path``; None when empty."""
    if not _GLOBAL_RECORDER.entries:
        return None
    return _GLOBAL_RECORDER.write(path)
