"""Consolidated benchmark trajectory: one JSON artifact per run.

Every measured benchmark execution appends an entry to a process-global
recorder; at the end of the run the harness (the pytest benchmark
session, or the CLI ``experiment`` subcommand) writes a single
``BENCH_trajectory.json`` capturing the whole trajectory — bench id,
scale, wall time, and the key counters — so a CI artifact or a local
run leaves one machine-readable record instead of scattered stdout
tables.

The *committed* artifact is deliberately small: :func:`write_trajectory`
keeps only the latest entry per bench id, so the checked-in
``BENCH_trajectory.json`` stays a snapshot instead of an ever-growing
log.  The full run-by-run history still exists — set
``REPRO_BENCH_HISTORY`` (or pass ``history_path=``) and every entry is
written there too, which is what CI archives as an artifact.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from ..errors import ReproError

#: The default artifact name, written at the invoking directory's root.
TRAJECTORY_FILE = "BENCH_trajectory.json"

#: The counter subset worth carrying into the trajectory (storage cost,
#: I/O, join work, and the columnar-path counters).
KEY_COUNTERS = (
    "value_lookups",
    "record_lookups",
    "hits",
    "misses",
    "physical_reads",
    "join_runs",
    "join_pairs",
    "columnar_builds",
    "columnar_scans",
    "columnar_fallbacks",
    "columnar_window_scans",
    "columnar_merge_joins",
    "ingest_batches_committed",
    "ingest_nodes_streamed",
    "index_incremental_updates",
    "index_rebuild_avoided",
)


@dataclass
class TrajectoryRecorder:
    """Accumulates benchmark entries; serializes to one JSON document."""

    entries: list[dict] = field(default_factory=list)

    def record(
        self,
        bench: str,
        seconds: float,
        *,
        scale: float | None = None,
        counters: dict | None = None,
        **extra: object,
    ) -> dict:
        entry: dict = {"bench": bench, "seconds": round(seconds, 6)}
        if scale is not None:
            entry["scale"] = scale
        if counters:
            entry["counters"] = {
                key: counters[key] for key in KEY_COUNTERS if counters.get(key)
            }
        entry.update(extra)
        self.entries.append(entry)
        return entry

    def reset(self) -> None:
        self.entries.clear()

    def latest_entries(self) -> list[dict]:
        """The last recorded entry per bench id, in first-seen order —
        what the committed artifact carries."""
        latest: dict[str, dict] = {}
        for entry in self.entries:
            latest[entry["bench"]] = entry
        return list(latest.values())

    def to_dict(self, *, full: bool = False) -> dict:
        entries = list(self.entries) if full else self.latest_entries()
        data = {"created": time.time(), "entries": entries}
        if not full:
            data["runs_recorded"] = len(self.entries)
        return data

    def write(self, path: str, *, full: bool = False) -> str:
        # Refuse to clobber a real trajectory with an empty one: an
        # empty recorder means the benches never ran (filtered out,
        # import error, misconfigured session) and silently truncating
        # the committed artifact would masquerade as "no regressions".
        if not self.entries and _has_entries(path):
            raise ReproError(
                f"refusing to overwrite non-empty trajectory {path!r} "
                "with an empty snapshot — no benchmark entries were "
                "recorded this run"
            )
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(full=full), handle, indent=2, sort_keys=False)
            handle.write("\n")
        return path


def _has_entries(path: str) -> bool:
    """True when ``path`` already holds a trajectory with entries."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return bool(json.load(handle).get("entries"))
    except (OSError, ValueError):
        return False


_GLOBAL_RECORDER = TrajectoryRecorder()


def trajectory_recorder() -> TrajectoryRecorder:
    """The process-global recorder benches append to."""
    return _GLOBAL_RECORDER


def record_run(bench: str, seconds: float, **kwargs) -> dict:
    """Append one entry to the global trajectory (see
    :meth:`TrajectoryRecorder.record` for the fields)."""
    return _GLOBAL_RECORDER.record(bench, seconds, **kwargs)


def write_trajectory(
    path: str = TRAJECTORY_FILE, *, history_path: str | None = None
) -> str | None:
    """Write the global trajectory; ``None`` when empty.

    ``path`` gets the latest-entry-per-bench snapshot (the committed
    form).  The full run-by-run history is written to ``history_path``
    or, when unset, to ``$REPRO_BENCH_HISTORY`` if that is defined —
    CI archives the history as an artifact without growing the
    committed file.
    """
    if not _GLOBAL_RECORDER.entries:
        return None
    history = history_path or os.environ.get("REPRO_BENCH_HISTORY")
    if history:
        _GLOBAL_RECORDER.write(history, full=True)
    # The committed snapshot merges with what is already on disk, so a
    # session running only a subset of benches (e.g. just the cluster
    # suite) refreshes its own rows without dropping the others'.
    merged: dict[str, dict] = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            previous = json.load(handle)
        for entry in previous.get("entries", []):
            if isinstance(entry, dict) and "bench" in entry:
                merged[entry["bench"]] = entry
    except (OSError, ValueError):
        pass
    for entry in _GLOBAL_RECORDER.latest_entries():
        merged[entry["bench"]] = entry
    data = {
        "created": time.time(),
        "entries": list(merged.values()),
        "runs_recorded": len(_GLOBAL_RECORDER.entries),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
