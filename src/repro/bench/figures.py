"""ASCII bar charts for experiment reports.

The CLI and examples render quick visual comparisons without plotting
dependencies: one horizontal bar per run, scaled to the longest, for
any numeric column of the run rows.
"""

from __future__ import annotations

from .harness import ExperimentReport

BAR_WIDTH = 48
BAR_CHAR = "█"
EMPTY_CHAR = "·"


def bar_chart(
    rows: list[tuple[str, float]],
    title: str = "",
    width: int = BAR_WIDTH,
    unit: str = "",
) -> str:
    """Render labelled values as right-scaled horizontal bars.

    >>> print(bar_chart([("direct", 4.0), ("groupby", 1.0)], unit="s"))
    direct   ████████████████████████████████████████████████ 4 s
    groupby  ████████████ 1 s
    """
    if not rows:
        return "(no data)"
    label_width = max(len(label) for label, _ in rows)
    peak = max(value for _, value in rows)
    lines = [title] if title else []
    for label, value in rows:
        filled = int(round(width * (value / peak))) if peak > 0 else 0
        filled = max(filled, 1) if value > 0 else 0
        bar = BAR_CHAR * filled + EMPTY_CHAR * 0
        rendered = _render_value(value)
        suffix = f" {rendered} {unit}".rstrip()
        lines.append(f"{label.ljust(label_width)}  {bar}{suffix}")
    return "\n".join(lines)


def _render_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.3g}"


def report_chart(
    report: ExperimentReport, metric: str = "seconds", width: int = BAR_WIDTH
) -> str:
    """Chart one metric of an experiment report across its runs.

    ``metric`` is ``"seconds"`` or any statistics key
    (``value_lookups``, ``record_lookups``, ``physical_reads``, ...).
    """
    rows: list[tuple[str, float]] = []
    for run in report.runs:
        if metric == "seconds":
            value: float = run.seconds
        else:
            value = float(run.statistics.get(metric, 0))
        rows.append((run.label, value))
    unit = "s" if metric == "seconds" else metric.replace("_", " ")
    return bar_chart(rows, title=f"{report.name} — {metric}", width=width, unit=unit)
