"""Experiment harness: database setup, measured runs, and run records.

The paper's evaluation (Sec. 6) compares two executions of the
group-by-author query on DBLP journals: the "direct" execution of the
XQuery as written, and the TIMBER plan with the grouping operator.  The
harness reproduces that comparison on the synthetic DBLP generator and
reports, per run:

* wall-clock seconds (the paper's headline metric — absolute values
  differ from the 550 MHz testbed, ratios are what's reproduced);
* data value lookups and record lookups (the store's logical cost);
* buffer-pool requests and physical page reads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..datagen.dblp import DBLPConfig, DBLPProfile, generate_dblp_with_profile
from ..observability import ExecutionProfile
from ..query.database import Database
from ..storage.buffer import DEFAULT_POOL_FRAMES


@dataclass
class RunRecord:
    """One measured query execution."""

    label: str
    plan_mode: str
    seconds: float
    statistics: dict[str, int] = field(default_factory=dict)
    result_size: int = 0
    profile: ExecutionProfile | None = None

    def row(self) -> dict[str, object]:
        return {
            "label": self.label,
            "plan": self.plan_mode,
            "seconds": round(self.seconds, 4),
            "value_lookups": self.statistics.get("value_lookups", 0),
            "record_lookups": self.statistics.get("record_lookups", 0),
            "pool_requests": self.statistics.get("hits", 0)
            + self.statistics.get("misses", 0),
            "physical_reads": self.statistics.get("physical_reads", 0),
            "results": self.result_size,
        }


@dataclass
class ExperimentReport:
    """A set of runs plus the workload's shape profile."""

    name: str
    profile: DBLPProfile
    runs: list[RunRecord] = field(default_factory=list)

    def run_by_label(self, label: str) -> RunRecord:
        for run in self.runs:
            if run.label == label:
                return run
        raise KeyError(label)

    def speedup(self, baseline_label: str, improved_label: str) -> float:
        """Wall-clock ratio baseline / improved (the paper's "6x")."""
        baseline = self.run_by_label(baseline_label).seconds
        improved = self.run_by_label(improved_label).seconds
        return baseline / improved if improved > 0 else float("inf")

    def lookup_ratio(self, baseline_label: str, improved_label: str) -> float:
        """Value-lookup ratio — the machine-independent cost signal."""
        baseline = self.run_by_label(baseline_label).statistics.get("value_lookups", 0)
        improved = self.run_by_label(improved_label).statistics.get("value_lookups", 0)
        return baseline / improved if improved else float("inf")


def build_database(
    config: DBLPConfig,
    pool_frames: int = DEFAULT_POOL_FRAMES,
    grouping_strategy: str | None = None,
    use_indexes: bool = True,
    columnar: bool | None = None,
    optimizer: bool | None = None,
) -> tuple[Database, DBLPProfile]:
    """Generate, load, and index a synthetic DBLP database.

    ``columnar`` forces the columnar hot path on or off (``None``
    defers to the ``REPRO_COLUMNAR`` environment flag).  Passing a
    ``grouping_strategy`` *forces* it — the cost-based optimizer only
    picks one when it is left ``None``.  ``optimizer`` toggles the
    cost-based plan choice (``None`` defers to ``REPRO_OPTIMIZER``).
    """
    tree, profile = generate_dblp_with_profile(config)
    db = Database(
        pool_frames=pool_frames,
        grouping_strategy=grouping_strategy,
        use_indexes=use_indexes,
        columnar=columnar,
        optimizer=optimizer,
    )
    db.load(tree=tree, name="bib.xml")
    return db, profile


def measured_run(
    db: Database,
    label: str,
    query: str,
    plan: str,
    analyze: bool = False,
    scale: float | None = None,
) -> RunRecord:
    """Execute once with counters reset; capture time + statistics.

    ``analyze=True`` additionally attaches the per-operator
    :class:`~repro.observability.ExecutionProfile` to the record, so a
    report can show *where* each plan spends its lookups.  Every run is
    also appended to the global benchmark trajectory
    (:mod:`repro.bench.trajectory`).
    """
    from ..indexing.columnar import columnar_statistics
    from ..pattern.structural_join import join_statistics
    from .trajectory import record_run

    db.store.reset_stats()
    before = columnar_statistics().snapshot()
    before.update(join_statistics().snapshot())
    started = time.perf_counter()
    result = db.query(query, plan=plan, analyze=analyze, reset_statistics=False)
    seconds = time.perf_counter() - started
    statistics = db.store.statistics()
    after = columnar_statistics().snapshot()
    after.update(join_statistics().snapshot())
    statistics.update({key: after[key] - before[key] for key in after})
    record_run(
        label,
        seconds,
        scale=scale,
        counters=statistics,
        plan=result.plan_mode,
        results=len(result.collection),
    )
    return RunRecord(
        label=label,
        plan_mode=result.plan_mode,
        seconds=seconds,
        statistics=statistics,
        result_size=len(result.collection),
        profile=result.profile,
    )
