"""Plain-text report rendering for experiment runs."""

from __future__ import annotations

from .experiments import PAPER_NUMBERS, ScalingReport
from .harness import ExperimentReport

_COLUMNS = (
    "label",
    "plan",
    "seconds",
    "value_lookups",
    "record_lookups",
    "pool_requests",
    "physical_reads",
    "results",
)


def format_table(rows: list[dict[str, object]], columns: tuple[str, ...] = _COLUMNS) -> str:
    """Fixed-width text table."""
    header = [str(column) for column in columns]
    body = [[str(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(columns))
    ]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(len(columns))),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    lines.extend(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in body
    )
    return "\n".join(lines)


def format_report(report: ExperimentReport, paper_key: str | None = None) -> str:
    """Render one experiment: workload profile, runs, speedups."""
    profile = report.profile
    lines = [
        f"## {report.name}",
        (
            f"workload: {profile.n_articles} articles, "
            f"{profile.n_distinct_authors} distinct authors, "
            f"{profile.n_author_occurrences} author occurrences, "
            f"{profile.n_nodes} nodes "
            f"({profile.articles_without_authors} authorless articles)"
        ),
        "",
        format_table([run.row() for run in report.runs]),
    ]
    labels = [run.label for run in report.runs]
    if "groupby" in labels:
        lines.append("")
        for baseline in ("direct-nested-loop", "direct-hash-join", "direct"):
            if baseline in labels:
                speedup = report.speedup(baseline, "groupby")
                lookups = report.lookup_ratio(baseline, "groupby")
                lines.append(
                    f"{baseline}/groupby speedup: {speedup:.2f}x wall-clock, "
                    f"{lookups:.2f}x value lookups"
                )
        if paper_key and paper_key in PAPER_NUMBERS:
            paper = PAPER_NUMBERS[paper_key]
            ratio = paper["direct"] / paper["groupby"]
            lines.append(
                f"paper ({paper_key}): direct {paper['direct']}s vs groupby "
                f"{paper['groupby']}s = {ratio:.2f}x (between the two baselines)"
            )
    return "\n".join(lines)


def format_scaling(report: ScalingReport) -> str:
    """Render the E3 sweep: speedup per scale for both experiments."""
    rows = []
    for scale, e1, e2 in zip(report.scales, report.e1_reports, report.e2_reports):
        rows.append(
            {
                "scale": scale,
                "articles": e1.profile.n_articles,
                "nodes": e1.profile.n_nodes,
                "E1 nested-loop": f"{e1.speedup('direct-nested-loop', 'groupby'):.2f}x",
                "E1 hash-join": f"{e1.speedup('direct-hash-join', 'groupby'):.2f}x",
                "E2 nested-loop": f"{e2.speedup('direct-nested-loop', 'groupby'):.2f}x",
                "E2 hash-join": f"{e2.speedup('direct-hash-join', 'groupby'):.2f}x",
            }
        )
    return "## E3 scaling sweep (speedup of GROUPBY over each baseline)\n" + format_table(
        rows,
        (
            "scale",
            "articles",
            "nodes",
            "E1 nested-loop",
            "E1 hash-join",
            "E2 nested-loop",
            "E2 hash-join",
        ),
    )
