"""The paper's experiments (E1/E2), the scaling sweep (E3), and the
ablations (A1-A3).  See DESIGN.md's experiment index.

Paper reference points (Sec. 6, DBLP Journals, Pentium III 550 MHz,
32 MB buffer pool):

=====================  =========  ==========  =======
experiment             direct     GROUPBY     ratio
=====================  =========  ==========  =======
E1 titles-by-author    323.966 s  178.607 s   ~1.8x
E2 count-by-author     155.564 s   23.033 s   >6x
=====================  =========  ==========  =======

Our substrate is a Python simulator, so absolute times differ; the
claims checked are the *ratios* and their ordering (E2's gap larger
than E1's), plus the machine-independent value-lookup counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datagen.dblp import DBLPConfig
from ..datagen.sample import QUERY_1, QUERY_COUNT
from ..storage.buffer import DEFAULT_POOL_FRAMES
from .harness import ExperimentReport, build_database, measured_run

# Default evaluation scale: large enough that plan differences dominate
# constant costs, small enough for CI.
DEFAULT_CONFIG = DBLPConfig(n_articles=800, n_authors=160, seed=7)

PAPER_NUMBERS = {
    "E1": {"direct": 323.966, "groupby": 178.607},
    "E2": {"direct": 155.564, "groupby": 23.033},
}


def _run_experiment(
    name: str,
    query: str,
    config: DBLPConfig,
    include_nested_loop: bool,
    include_interpreter: bool,
) -> ExperimentReport:
    db, profile = build_database(config)
    report = ExperimentReport(name, profile)
    if include_nested_loop:
        # The paper's words: "a nested loops evaluation plan" — quadratic.
        report.runs.append(measured_run(db, "direct-nested-loop", query, "naive"))
    # The amortized reading of Sec. 6's description: index retrievals,
    # value dedup, and "the requisite join" as a hash join.
    report.runs.append(measured_run(db, "direct-hash-join", query, "naive-hash"))
    report.runs.append(measured_run(db, "groupby", query, "groupby"))
    if include_interpreter:
        report.runs.append(measured_run(db, "interpreter", query, "direct"))
    return report


def run_experiment1(
    config: DBLPConfig = DEFAULT_CONFIG,
    include_nested_loop: bool = True,
    include_interpreter: bool = False,
) -> ExperimentReport:
    """E1: titles grouped by author — direct baselines vs GROUPBY plan."""
    return _run_experiment(
        "E1 titles-by-author", QUERY_1, config, include_nested_loop, include_interpreter
    )


def run_experiment2(
    config: DBLPConfig = DEFAULT_CONFIG,
    include_nested_loop: bool = True,
    include_interpreter: bool = False,
) -> ExperimentReport:
    """E2: count of articles per author — direct baselines vs GROUPBY plan."""
    return _run_experiment(
        "E2 count-by-author", QUERY_COUNT, config, include_nested_loop, include_interpreter
    )


@dataclass
class ScalingReport:
    """E3: E1/E2 speedups across database scales."""

    scales: list[float] = field(default_factory=list)
    e1_reports: list[ExperimentReport] = field(default_factory=list)
    e2_reports: list[ExperimentReport] = field(default_factory=list)


def run_scaling(
    scales: tuple[float, ...] = (0.25, 0.5, 1.0),
    base: DBLPConfig = DEFAULT_CONFIG,
) -> ScalingReport:
    """E3: repeat E1/E2 at several database scales."""
    report = ScalingReport()
    for scale in scales:
        config = base.scaled(scale)
        report.scales.append(scale)
        report.e1_reports.append(run_experiment1(config))
        report.e2_reports.append(run_experiment2(config))
    return report


def run_ablation_match_strategies(config: DBLPConfig = DEFAULT_CONFIG) -> ExperimentReport:
    """A1: index-assisted pattern matching vs full-scan candidates
    (Sec. 5.2's design choice)."""
    db_indexed, profile = build_database(config, use_indexes=True)
    db_scan, _ = build_database(config, use_indexes=False)
    report = ExperimentReport("A1 match strategies", profile)
    report.runs.append(measured_run(db_indexed, "indexed", QUERY_1, "groupby"))
    report.runs.append(measured_run(db_scan, "full-scan", QUERY_1, "groupby"))
    return report


def run_ablation_grouping_strategies(config: DBLPConfig = DEFAULT_CONFIG) -> ExperimentReport:
    """A2: identifier-only sort/hash grouping vs eager replication
    (the strawman Sec. 5.3 argues against)."""
    report: ExperimentReport | None = None
    for strategy in ("sort", "hash", "replicate", "value-index"):
        db, profile = build_database(config, grouping_strategy=strategy)
        if report is None:
            report = ExperimentReport("A2 grouping strategies", profile)
        report.runs.append(measured_run(db, strategy, QUERY_COUNT, "groupby"))
    assert report is not None
    return report


def run_ablation_buffer_pool(
    config: DBLPConfig = DEFAULT_CONFIG,
    frame_budgets: tuple[int, ...] = (8, 32, 128, DEFAULT_POOL_FRAMES),
) -> ExperimentReport:
    """A3: buffer-pool sensitivity of the GROUPBY plan."""
    report: ExperimentReport | None = None
    for frames in frame_budgets:
        db, profile = build_database(config, pool_frames=frames)
        if report is None:
            report = ExperimentReport("A3 buffer pool", profile)
        db.store.pool.clear()  # cold cache per run
        report.runs.append(measured_run(db, f"{frames} frames", QUERY_1, "groupby"))
    assert report is not None
    return report
