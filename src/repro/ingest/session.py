"""Streaming ingest sessions: a character stream in, journaled batches out.

:class:`IngestSession` is the orchestration layer of the ingest
subsystem.  It owns one :class:`~repro.ingest.stream_parse.StreamParser`
and one :class:`~repro.storage.store.StoreIngest`, and turns arbitrary
text chunks into batch commits:

* completed root children accumulate until their node count reaches
  ``batch_size``, then commit as one journaled batch;
* when an :class:`~repro.indexing.manager.IndexManager` is attached,
  every committed batch is folded into the live indexes incrementally
  (:meth:`~repro.indexing.manager.IndexManager.apply_ingest_batch`)
  instead of queueing a rebuild;
* each commit produces a :class:`BatchProgress` — the per-batch
  progress record surfaced through ``Database.load``, the wire
  protocol's progress events, and ``timber-py load --progress``;
* an optional ``commit_gate`` context-manager factory brackets every
  commit, which is how the service layer takes its write gate *per
  batch* — readers run between batches instead of blocking for the
  whole load.

Memory is bounded by ``batch_size`` plus the largest single root child:
the parser holds at most one child's text, the session at most one
batch's trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ContextManager, Iterable, Iterator

from ..errors import DatabaseError
from ..storage.store import DocumentInfo, NodeStore, StoreIngest
from ..xmlmodel.node import XMLNode
from .stream_parse import DEFAULT_CHUNK_CHARS, StreamParser

#: Default batch granularity, in nodes.  Small enough that a DBLP-scale
#: document commits in many batches (readers see progress, caches
#: invalidate incrementally), large enough to amortize the per-batch
#: journal round-trip.
DEFAULT_BATCH_NODES = 4096


@dataclass(frozen=True)
class BatchProgress:
    """One committed ingest batch.

    * ``document`` — catalog name being ingested;
    * ``batch`` — 1-based batch ordinal;
    * ``nodes_in_batch`` — records this batch appended (the document
      root counts once, in batch 1);
    * ``nodes_total`` — document node count after this batch;
    * ``generation`` — store generation after this batch's commit (each
      batch bumps it: batch-granular cache invalidation).
    """

    document: str
    batch: int
    nodes_in_batch: int
    nodes_total: int
    generation: int


class IngestSession:
    """One streaming load of one document, chunk by chunk.

    Usage::

        session = IngestSession(store, "dblp.xml", indexes=indexes)
        for chunk in chunks:
            session.feed(chunk)          # commits batches as they fill
        info = session.finish()          # final partial batch + close

    ``feed`` returns the :class:`BatchProgress` entries the chunk
    completed (often empty — a chunk rarely fills a batch exactly);
    ``session.progress`` accumulates all of them.  ``abort()`` stops the
    stream but keeps every committed batch: the document stays readable
    at the last batch boundary.
    """

    def __init__(
        self,
        store: NodeStore,
        name: str,
        *,
        batch_size: int | None = None,
        indexes=None,
        on_batch: Callable[[BatchProgress], None] | None = None,
        commit_gate: Callable[[], ContextManager] | None = None,
    ):
        self.store = store
        self.name = name
        self.batch_size = DEFAULT_BATCH_NODES if batch_size is None else max(1, batch_size)
        self.indexes = indexes
        self.on_batch = on_batch
        self.commit_gate = commit_gate
        self.parser = StreamParser()
        self.progress: list[BatchProgress] = []
        self._pending: list[XMLNode] = []
        self._pending_nodes = 0
        self._ingest: StoreIngest | None = None
        self._finished = False

    # ------------------------------------------------------------------
    @property
    def batches_committed(self) -> int:
        return len(self.progress)

    @property
    def nodes_streamed(self) -> int:
        """Nodes durably committed so far (root included from batch 1)."""
        return self._ingest.nodes_committed if self._ingest is not None else 0

    @property
    def active(self) -> bool:
        return not self._finished

    # ------------------------------------------------------------------
    def feed(self, chunk: str) -> list[BatchProgress]:
        """Parse one text chunk, committing every batch it fills.

        Returns the progress records of the batches *this call*
        committed (also appended to ``self.progress``).
        """
        if self._finished:
            raise DatabaseError(f"ingest of {self.name!r} is already finished")
        before = len(self.progress)
        for child in self.parser.feed(chunk):
            self._pending.append(child)
            self._pending_nodes += child.subtree_size()
            if self._pending_nodes >= self.batch_size:
                self._commit_pending()
        return self.progress[before:]

    def finish(self) -> DocumentInfo:
        """Close the stream: final partial batch, then the ingest end.

        Raises if the document text was incomplete (parser error), with
        every previously committed batch still in place.
        """
        if self._finished:
            raise DatabaseError(f"ingest of {self.name!r} is already finished")
        self.parser.close()
        if self._pending or self._ingest is None:
            # The final partial batch — or, for a childless document,
            # the first (empty) batch that writes the root record.
            self._commit_pending()
        info = self._ingest.finish()
        self._finished = True
        return info

    def abort(self) -> None:
        """Stop the stream, keeping every committed batch.  Idempotent."""
        if self._finished:
            return
        self._finished = True
        self._pending = []
        self._pending_nodes = 0
        if self._ingest is not None:
            self._ingest.abort()

    # ------------------------------------------------------------------
    def _commit_pending(self) -> None:
        children = self._pending
        self._pending = []
        self._pending_nodes = 0
        if self.commit_gate is not None:
            with self.commit_gate():
                self._commit(children)
        else:
            self._commit(children)

    def _commit(self, children: list[XMLNode]) -> None:
        if self._ingest is None:
            # The parser's root shell is complete (tag, attributes, and
            # — since children only exist past the first emitted child —
            # final content) by the time the first batch cuts.
            self._ingest = self.store.begin_ingest(self.parser.root, self.name)
        ingest = self._ingest
        info = ingest.commit_batch(children)
        if self.indexes is not None:
            self.indexes.apply_ingest_batch(
                ingest.last_batch_records,
                ingest.last_root_record,
                ingest.last_old_root,
                ingest.last_first_batch,
                info.doc_id,
            )
        record = BatchProgress(
            document=info.name,
            batch=ingest.batches_committed,
            nodes_in_batch=len(ingest.last_batch_records),
            nodes_total=ingest.nodes_committed,
            generation=self.store.generation,
        )
        self.progress.append(record)
        if self.on_batch is not None:
            self.on_batch(record)


def chunks_of(stream, chunk_chars: int = DEFAULT_CHUNK_CHARS) -> Iterator[str]:
    """Normalize an ingest source into text chunks.

    Accepts a file-like object (``read(n)``), an iterable of strings, or
    a single string (yielded in ``chunk_chars`` slices, so even the
    degenerate whole-document-in-one-string case exercises the bounded
    parser path).
    """
    read = getattr(stream, "read", None)
    if callable(read):
        while True:
            chunk = read(chunk_chars)
            if not chunk:
                return
            yield chunk
        return
    if isinstance(stream, str):
        for offset in range(0, len(stream), chunk_chars):
            yield stream[offset : offset + chunk_chars]
        return
    if isinstance(stream, Iterable):
        for chunk in stream:
            yield chunk
        return
    raise DatabaseError(
        "stream must be a file-like object, an iterable of str, or a str"
    )
