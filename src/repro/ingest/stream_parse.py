"""Incremental (push) XML parsing for the streaming ingest subsystem.

:func:`~repro.xmlmodel.parse.parse_document` needs the whole document in
memory.  :class:`StreamParser` instead accepts the document in arbitrary
text chunks and emits complete *root children* as they close, holding at
most one root child (plus an unconsumed chunk tail) in its buffer — the
iterparse shape: memory is bounded by the largest record element, not
the document.

The parser recognizes the document structure itself (prolog, root start
tag, root-level misc, root close) with a find-driven tokenizer, but does
not re-implement element parsing: every completed root-child slice is a
well-formed standalone element, which is exactly what
``parse_document`` accepts — so the subset of XML supported, entity
handling, and whitespace policy are the whole-document parser's,
guaranteed identical trees for identical input.

One restriction beyond the whole-document grammar: the root's *own*
text content must precede its first child.  The streaming loader writes
the root record when the first batch commits and never grows it again
(the in-place rewrites are equal-length), so non-whitespace root-level
text appearing after the first child is rejected rather than silently
dropped.
"""

from __future__ import annotations

from ..errors import XMLParseError
from ..xmlmodel.node import XMLNode
from ..xmlmodel.parse import (
    _decode_entities,
    _is_name_char,
    _is_name_start,
    _parse_attributes,
    _Scanner,
    parse_document,
)

#: Default read size for :func:`stream_file` — small enough to exercise
#: chunk-boundary handling constantly, large enough to amortize syscalls.
DEFAULT_CHUNK_CHARS = 1 << 16

# Parser states.
_PROLOG = 0  # before the root start tag
_IN_ROOT = 1  # at root level, between children
_IN_CHILD = 2  # inside a root child, scanning for its close
_EPILOG = 3  # after the root close tag
_DONE = 4  # close() seen


class StreamParser:
    """Push parser: feed text chunks, collect completed root children.

    Usage::

        parser = StreamParser()
        for chunk in chunks:
            for child in parser.feed(chunk):
                ...                  # a complete root-child XMLNode
        parser.close()
        shell = parser.root          # childless root (tag/attrs/content)

    ``root`` becomes available as soon as the root start tag has been
    consumed, and its ``content`` is final once the first child is
    emitted (or at ``close()`` for childless documents).
    """

    def __init__(self):
        self._buf = ""
        self._pos = 0  # scan cursor into _buf
        self._state = _PROLOG
        self._root: XMLNode | None = None
        self._root_text: list[str] = []  # pre-first-child character data
        self._saw_child = False
        self._child_start = 0  # slice start of the in-flight child
        self._depth = 0  # open-element depth inside the child
        # Global coordinates of dropped prefixes, for error locations.
        self._dropped = 0
        self._dropped_lines = 0
        self._last_nl = -1  # global index of the last dropped newline

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def root(self) -> XMLNode | None:
        """The childless root shell, once its start tag has been seen."""
        return self._root

    @property
    def at_end(self) -> bool:
        return self._state in (_EPILOG, _DONE)

    def feed(self, data: str) -> list[XMLNode]:
        """Consume one chunk, returning root children completed by it."""
        if self._state == _DONE:
            raise XMLParseError("feed() after close()")
        if data:
            self._buf += data
        out: list[XMLNode] = []
        self._pump(out)
        self._compact()
        return out

    def close(self) -> None:
        """Declare end of input; raises if the document is incomplete."""
        if self._state == _DONE:
            return
        if self._state != _EPILOG:
            raise self._error(
                "truncated document: the root element never closed"
                if self._state != _PROLOG
                else "empty input: no root element found",
                len(self._buf),
            )
        if self._buf[self._pos :].strip():
            raise self._error("content after the root element", self._pos)
        if self._root is not None and not self._saw_child:
            self._finish_root_text()
        self._state = _DONE

    # ------------------------------------------------------------------
    # Error locations
    # ------------------------------------------------------------------
    def _error(self, message: str, pos: int) -> XMLParseError:
        """An :class:`XMLParseError` at buffer index ``pos``, with the
        line/column computed over the *whole* stream (dropped prefixes
        included)."""
        line = self._dropped_lines + self._buf.count("\n", 0, pos) + 1
        nl = self._buf.rfind("\n", 0, pos)
        last_nl = self._dropped + nl if nl >= 0 else self._last_nl
        column = (self._dropped + pos) - last_nl
        return XMLParseError(message, line, column)

    def _compact(self) -> None:
        """Drop the consumed buffer prefix (everything before the
        in-flight child, or before the cursor when between children)."""
        cut = self._child_start if self._state == _IN_CHILD else self._pos
        if cut <= 0:
            return
        dropped = self._buf[:cut]
        self._dropped_lines += dropped.count("\n")
        nl = dropped.rfind("\n")
        if nl >= 0:
            self._last_nl = self._dropped + nl
        self._dropped += cut
        self._buf = self._buf[cut:]
        self._pos -= cut
        self._child_start = 0

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _pump(self, out: list[XMLNode]) -> None:
        while True:
            if self._state == _PROLOG:
                if not self._pump_prolog():
                    return
            elif self._state == _IN_ROOT:
                if not self._pump_root_level(out):
                    return
            elif self._state == _IN_CHILD:
                if not self._pump_child(out):
                    return
            else:  # _EPILOG
                if not self._pump_epilog():
                    return

    # Each _pump_* returns False when it needs more input.

    def _pump_prolog(self) -> bool:
        buf = self._buf
        skipped = self._skip_misc()
        if skipped is None:
            return False
        if self._pos >= len(buf):
            return False
        if buf[self._pos] != "<":
            raise self._error("expected a root element", self._pos)
        tag = self._parse_start_tag()
        if tag is None:
            return False
        name, attributes, self_closing, end = tag
        self._root = XMLNode(name, attributes=attributes or None)
        self._pos = end
        if self_closing:
            self._state = _EPILOG
        else:
            self._state = _IN_ROOT
        return True

    def _pump_root_level(self, out: list[XMLNode]) -> bool:
        buf = self._buf
        lt = buf.find("<", self._pos)
        if lt < 0:
            # Trailing character data; hold it (it may continue).
            return False
        if lt > self._pos:
            self._root_level_text(self._pos, lt)
            self._pos = lt
        if len(buf) - lt < 2:
            return False  # "<" alone: cannot classify yet
        if buf.startswith("<!--", lt):
            return self._skip_bounded(lt + 4, "-->", "comment")
        if buf.startswith("<![CDATA[", lt):
            end = buf.find("]]>", lt + 9)
            if end < 0:
                return False
            self._root_level_cdata(lt + 9, end)
            self._pos = end + 3
            return True
        tail = buf[lt : lt + 9]
        if len(tail) < 9 and ("<!--".startswith(tail) or "<![CDATA[".startswith(tail)):
            return False  # short tail could still become a comment/CDATA
        if buf.startswith("<!", lt):
            raise self._error("unexpected markup declaration", lt)
        if buf.startswith("<?", lt):
            return self._skip_bounded(lt + 2, "?>", "processing instruction")
        if buf.startswith("</", lt):
            close = self._parse_close_tag(lt)
            if close is None:
                return False
            name, end = close
            if name != self._root.tag:
                raise self._error(
                    f"mismatched closing tag </{name}> for <{self._root.tag}>", lt
                )
            self._pos = end
            self._state = _EPILOG
            return True
        # A root child begins.
        if not self._saw_child:
            self._finish_root_text()
            self._saw_child = True
        self._child_start = lt
        self._pos = lt
        self._depth = 0
        self._state = _IN_CHILD
        return True

    def _pump_child(self, out: list[XMLNode]) -> bool:
        """Scan the in-flight root child for its closing tag, tracking
        element depth; text is skipped wholesale (the completed slice is
        re-parsed by ``parse_document``, which owns text semantics)."""
        buf = self._buf
        while True:
            lt = buf.find("<", self._pos)
            if lt < 0:
                self._pos = len(buf)
                return False
            if len(buf) - lt < 2:
                self._pos = lt
                return False
            if buf.startswith("<!--", lt):
                end = buf.find("-->", lt + 4)
                if end < 0:
                    self._pos = lt
                    return False
                self._pos = end + 3
                continue
            if buf.startswith("<![CDATA[", lt):
                end = buf.find("]]>", lt + 9)
                if end < 0:
                    self._pos = lt
                    return False
                self._pos = end + 3
                continue
            tail = buf[lt : lt + 9]
            if len(tail) < 9 and (
                "<!--".startswith(tail) or "<![CDATA[".startswith(tail)
            ):
                self._pos = lt
                return False
            if buf.startswith("<!", lt):
                raise self._error("unexpected markup declaration", lt)
            if buf.startswith("<?", lt):
                end = buf.find("?>", lt + 2)
                if end < 0:
                    self._pos = lt
                    return False
                self._pos = end + 2
                continue
            if buf.startswith("</", lt):
                close = self._parse_close_tag(lt)
                if close is None:
                    self._pos = lt
                    return False
                _, end = close
                self._pos = end
                if self._depth == 0:
                    raise self._error("unbalanced closing tag", lt)
                self._depth -= 1
                if self._depth == 0:
                    self._emit_child(out, end)
                    self._state = _IN_ROOT
                    return True
                continue
            tag = self._parse_start_tag_at(lt)
            if tag is None:
                self._pos = lt
                return False
            self_closing, end = tag
            self._pos = end
            if not self_closing:
                self._depth += 1
            elif self._depth == 0:
                self._emit_child(out, end)
                self._state = _IN_ROOT
                return True

    def _pump_epilog(self) -> bool:
        skipped = self._skip_misc()
        if skipped is None:
            return False
        if self._pos < len(self._buf):
            raise self._error("content after the root element", self._pos)
        return False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _emit_child(self, out: list[XMLNode], end: int) -> None:
        slice_ = self._buf[self._child_start : end]
        out.append(parse_document(slice_))
        self._pos = end
        self._child_start = end

    def _root_level_text(self, start: int, end: int) -> None:
        raw = self._buf[start:end]
        if self._saw_child:
            if raw.strip():
                raise self._error(
                    "root-level text after the first child is not supported "
                    "by the streaming loader (the root record is fixed at "
                    "the first batch commit)",
                    start,
                )
            return
        self._root_text.append(_decode_entities(raw, _Scanner(raw), 0))

    def _root_level_cdata(self, start: int, end: int) -> None:
        if self._saw_child:
            if self._buf[start:end].strip():
                raise self._error(
                    "root-level CDATA after the first child is not supported "
                    "by the streaming loader",
                    start,
                )
            return
        self._root_text.append(self._buf[start:end])

    def _finish_root_text(self) -> None:
        text = "".join(self._root_text).strip()
        self._root.content = text if text else None
        self._root_text = []

    def _skip_misc(self) -> bool | None:
        """Skip whitespace/comments/PIs/DOCTYPE at document level.

        Returns ``None`` when an unterminated construct needs more
        input, ``True`` when the cursor rests on content (or the end of
        the current buffer)."""
        buf = self._buf
        while True:
            pos = self._pos
            n = len(buf)
            while pos < n and buf[pos] in " \t\r\n":
                pos += 1
            self._pos = pos
            if pos >= n:
                return True
            if buf[pos] != "<":
                if self._state == _PROLOG:
                    raise self._error("character data outside the root element", pos)
                return True
            if buf.startswith("<!--", pos):
                end = buf.find("-->", pos + 4)
                if end < 0:
                    return None
                self._pos = end + 3
                continue
            if buf.startswith("<?", pos):
                end = buf.find("?>", pos + 2)
                if end < 0:
                    return None
                self._pos = end + 2
                continue
            if buf.startswith("<!DOCTYPE", pos):
                depth = 0
                i = pos
                while i < n:
                    ch = buf[i]
                    if ch == "<":
                        depth += 1
                    elif ch == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    i += 1
                if i >= n:
                    return None
                self._pos = i + 1
                continue
            tail = buf[pos : pos + 9]
            if len(tail) < 9 and (
                "<!--".startswith(tail)
                or "<!DOCTYPE".startswith(tail)
                or "<?".startswith(tail)
            ):
                return None  # may yet be a comment, DOCTYPE, or PI
            if buf.startswith("<!", pos):
                raise self._error("unexpected markup declaration", pos)
            return True

    def _skip_bounded(self, start: int, token: str, what: str) -> bool:
        end = self._buf.find(token, start)
        if end < 0:
            return False
        self._pos = end + len(token)
        return True

    def _parse_close_tag(self, lt: int) -> tuple[str, int] | None:
        """Parse ``</name >`` at ``lt``; None when it runs off the buffer."""
        buf = self._buf
        gt = buf.find(">", lt + 2)
        if gt < 0:
            return None
        name = buf[lt + 2 : gt].rstrip(" \t\r\n")
        if not name or not _is_name_start(name[0]) or not all(
            _is_name_char(ch) for ch in name
        ):
            raise self._error(f"malformed closing tag {buf[lt : gt + 1]!r}", lt)
        return name, gt + 1

    def _parse_start_tag_at(self, lt: int) -> tuple[bool, int] | None:
        """Scan a start tag at ``lt`` without building attributes:
        returns ``(self_closing, end)`` or ``None`` on a split tag."""
        buf = self._buf
        n = len(buf)
        i = lt + 1
        quote = ""
        while i < n:
            ch = buf[i]
            if quote:
                if ch == quote:
                    quote = ""
            elif ch in ("'", '"'):
                quote = ch
            elif ch == ">":
                return buf[i - 1] == "/" and not quote, i + 1
            elif ch == "<":
                raise self._error("unescaped '<' inside a tag", i)
            i += 1
        return None

    def _parse_start_tag(self) -> tuple[str, dict[str, str], bool, int] | None:
        """Fully parse the start tag at the cursor (used for the root,
        whose attributes the shell needs): ``(name, attributes,
        self_closing, end)`` or ``None`` on a split tag."""
        span = self._parse_start_tag_at(self._pos)
        if span is None:
            return None
        self_closing, end = span
        raw = self._buf[self._pos : end]
        scanner = _Scanner(raw)
        scanner.expect("<")
        name = scanner.read_name()
        attributes = _parse_attributes(scanner)
        return name, attributes, self_closing, end


# ----------------------------------------------------------------------
# Pull-side conveniences
# ----------------------------------------------------------------------
def stream_file(path: str, chunk_chars: int = DEFAULT_CHUNK_CHARS):
    """Yield ``path``'s text in bounded chunks (never the whole file)."""
    with open(path, encoding="utf-8") as handle:
        while True:
            chunk = handle.read(chunk_chars)
            if not chunk:
                return
            yield chunk
