"""Streaming ingest: incremental bulk loading with online index
maintenance and batch-granular cache invalidation.

The subsystem has three layers:

* :mod:`~repro.ingest.stream_parse` — a push parser that accepts the
  document in arbitrary text chunks and emits complete root children
  (iterparse-style: memory bounded by the largest record element);
* :class:`~repro.storage.store.StoreIngest` (storage layer) — commits
  each batch of root children through the intent journal, advancing the
  document root's containment label in place;
* :class:`~repro.ingest.session.IngestSession` — glues the two
  together, folds every committed batch into the live indexes, and
  reports per-batch :class:`~repro.ingest.session.BatchProgress`.

Entry points one layer up: ``Database.load(stream=..., batch_size=...)``,
the chunked ``LOAD`` wire command, ``ClusterCoordinator.load()``, and
``timber-py load --batch-size --progress``.
"""

from .session import (
    DEFAULT_BATCH_NODES,
    BatchProgress,
    IngestSession,
    chunks_of,
)
from .stream_parse import DEFAULT_CHUNK_CHARS, StreamParser, stream_file

__all__ = [
    "DEFAULT_BATCH_NODES",
    "DEFAULT_CHUNK_CHARS",
    "BatchProgress",
    "IngestSession",
    "StreamParser",
    "chunks_of",
    "stream_file",
]
