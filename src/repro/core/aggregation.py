"""The TAX aggregation operator ``A`` (Sec. 4.3).

Aggregation "maps collections of values to aggregate or summary values"
and — unlike SQL — is separate from grouping: it takes a pattern ``P``,
an aggregate function, and an **update specification** saying where the
computed value is inserted in each output tree.  The paper's example::

    A_{aggElem = f1($j), after lastChild($i)}(C)

computes ``f1`` over the values bound to ``$j`` *per input tree* and
appends a new node carrying the result as the new last child of the
node matching ``$i``.

Supported functions: COUNT, SUM, MIN, MAX, AVG.  Supported update
positions: ``after lastChild($i)``, ``before firstChild($i)``,
``precedes($i)``, ``follows($i)`` — the paper calls the exact set "an
extensible notion", so the enum here is the extension point.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import AlgebraError
from ..pattern.matcher import TreeMatcher
from ..pattern.pattern import PatternTree
from ..xmlmodel.node import XMLNode
from ..xmlmodel.tree import Collection, DataTree
from .base import UnaryOperator, atomic_value_of


class AggregateFunction(str, Enum):
    COUNT = "COUNT"
    SUM = "SUM"
    MIN = "MIN"
    MAX = "MAX"
    AVG = "AVG"

    def compute(self, values: list[str]) -> str:
        """Apply to the collected values and render the result as text.

        Empty input follows XQuery: COUNT -> "0", SUM -> "0",
        MIN/MAX/AVG -> "" (the empty sequence).
        """
        if self is AggregateFunction.COUNT:
            return str(len(values))
        numbers = [_as_number(value) for value in values]
        if not numbers:
            return "0" if self is AggregateFunction.SUM else ""
        if self is AggregateFunction.SUM:
            return _render_number(sum(numbers))
        if self is AggregateFunction.MIN:
            return _render_number(min(numbers))
        if self is AggregateFunction.MAX:
            return _render_number(max(numbers))
        return _render_number(sum(numbers) / len(numbers))


class UpdatePosition(str, Enum):
    """Where the aggregate node is inserted, relative to ``anchor``."""

    AFTER_LAST_CHILD = "after lastChild"
    BEFORE_FIRST_CHILD = "before firstChild"
    PRECEDES = "precedes"
    FOLLOWS = "follows"


@dataclass(frozen=True)
class UpdateSpec:
    """``(position, anchor-label)`` — e.g. ``after lastChild($1)``."""

    position: UpdatePosition
    anchor: str

    def render(self) -> str:
        return f"{self.position.value}({self.anchor})"


class Aggregation(UnaryOperator):
    """``A_{name=f($j), spec}(C)`` — per-tree aggregate with insertion."""

    name = "aggregation"

    def __init__(
        self,
        pattern: PatternTree,
        function: AggregateFunction | str,
        source_label: str,
        new_tag: str,
        update: UpdateSpec,
        source_attribute: str | None = None,
    ):
        self.pattern = pattern
        self.function = AggregateFunction(function)
        self.source_label = source_label
        self.source_attribute = source_attribute
        self.new_tag = new_tag
        self.update = update
        pattern.node(source_label)
        pattern.node(update.anchor)
        self._matcher = TreeMatcher()

    # ------------------------------------------------------------------
    def apply(self, collection: Collection) -> Collection:
        output = Collection(name="aggregation")
        for index, tree in enumerate(collection):
            output.append(self._aggregate_tree(tree, index))
        return output

    def _aggregate_tree(self, tree: DataTree, index: int) -> DataTree:
        copy = tree.copy()
        matches = self._matcher.match_tree(self.pattern, copy.root, index)
        values: list[str] = []
        seen: set[int] = set()
        anchor: XMLNode | None = None
        for match in matches:
            if anchor is None:
                anchor = match.bindings[self.update.anchor]
            node = match.bindings[self.source_label]
            # One value per distinct bound node: several witnesses can bind
            # the same node (e.g. via a sibling's multiplicity) and the
            # aggregate must not double-count it.
            if id(node) in seen:
                continue
            seen.add(id(node))
            values.append(self._value_of(node))
        aggregate = XMLNode(self.new_tag, self.function.compute(values))
        if anchor is None:
            # No witness: the output is identical to the input (with a
            # zero COUNT appended at the root for countable queries).
            if self.function is AggregateFunction.COUNT:
                copy.root.append_child(aggregate)
            return copy
        self._insert(anchor, aggregate)
        return copy

    def _value_of(self, node: XMLNode) -> str:
        if self.source_attribute is not None:
            value = node.attributes.get(self.source_attribute)
            if value is None:
                raise AlgebraError(
                    f"node bound to {self.source_label} lacks attribute "
                    f"{self.source_attribute!r}"
                )
            return value
        return atomic_value_of(node)

    def _insert(self, anchor: XMLNode, aggregate: XMLNode) -> None:
        position = self.update.position
        if position is UpdatePosition.AFTER_LAST_CHILD:
            anchor.append_child(aggregate)
        elif position is UpdatePosition.BEFORE_FIRST_CHILD:
            anchor.insert_child(0, aggregate)
        elif position in (UpdatePosition.PRECEDES, UpdatePosition.FOLLOWS):
            parent = anchor.parent
            if parent is None:
                raise AlgebraError(
                    f"update {self.update.render()}: anchor is a root node"
                )
            index = anchor.child_index()
            if position is UpdatePosition.FOLLOWS:
                index += 1
            parent.insert_child(index, aggregate)
        else:  # pragma: no cover - enum is closed
            raise AlgebraError(f"unsupported update position {position}")

    def describe(self) -> str:
        source = self.source_label
        if self.source_attribute:
            source += f".{self.source_attribute}"
        return (
            f"aggregate {self.new_tag}={self.function.value}({source}) "
            f"{self.update.render()}"
        )


def _as_number(value: str) -> float:
    try:
        return float(value)
    except ValueError as exc:
        raise AlgebraError(f"non-numeric value {value!r} in numeric aggregate") from exc


def _render_number(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)
