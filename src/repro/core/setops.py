"""TAX set operations and product.

TAX is a full algebra over collections of trees (the paper defers the
complete operator list to the TAX paper [8]); selection/projection/
grouping compose with the classic set operators, which this module
provides:

* :class:`Union` — bag union by default (concatenation, left first);
  ``distinct=True`` unifies by deep value, keeping first occurrences;
* :class:`Intersection` — trees of the left input that have a deep-equal
  tree in the right input (multiplicity bounded by the right's);
* :class:`Difference` — left minus right by deep value (bag semantics:
  each right tree cancels one left occurrence);
* :class:`Product` — the Cartesian product underlying the join family:
  each output tree is a ``tax_prod_root`` over a (left, right) pair, in
  left-major order (Fig. 4's join-plan trees are selections over this
  product).

Deep value means :meth:`XMLNode.canonical_key`; all operators preserve
input order and never mutate their inputs.
"""

from __future__ import annotations

from ..xmlmodel.node import XMLNode
from ..xmlmodel.tree import Collection, DataTree
from .base import TAX_PROD_ROOT, BinaryOperator


class Union(BinaryOperator):
    """Bag (or distinct) union of two collections."""

    name = "union"

    def __init__(self, distinct: bool = False):
        self.distinct = distinct

    def apply(self, left: Collection, right: Collection) -> Collection:
        output = Collection(name="union")
        if not self.distinct:
            output.extend(left)
            output.extend(right)
            return output
        seen: set = set()
        for tree in list(left) + list(right):
            key = tree.root.canonical_key()
            if key in seen:
                continue
            seen.add(key)
            output.append(tree)
        return output

    def describe(self) -> str:
        return "union distinct" if self.distinct else "union all"


class Intersection(BinaryOperator):
    """Trees of the left input that deep-equal some right-input tree."""

    name = "intersection"

    def apply(self, left: Collection, right: Collection) -> Collection:
        budget: dict = {}
        for tree in right:
            key = tree.root.canonical_key()
            budget[key] = budget.get(key, 0) + 1
        output = Collection(name="intersection")
        for tree in left:
            key = tree.root.canonical_key()
            remaining = budget.get(key, 0)
            if remaining > 0:
                budget[key] = remaining - 1
                output.append(tree)
        return output


class Difference(BinaryOperator):
    """Left minus right, bag semantics by deep value."""

    name = "difference"

    def apply(self, left: Collection, right: Collection) -> Collection:
        budget: dict = {}
        for tree in right:
            key = tree.root.canonical_key()
            budget[key] = budget.get(key, 0) + 1
        output = Collection(name="difference")
        for tree in left:
            key = tree.root.canonical_key()
            remaining = budget.get(key, 0)
            if remaining > 0:
                budget[key] = remaining - 1
                continue
            output.append(tree)
        return output


class Product(BinaryOperator):
    """Cartesian product: ``tax_prod_root(left-copy, right-copy)`` pairs."""

    name = "product"

    def apply(self, left: Collection, right: Collection) -> Collection:
        output = Collection(name="product")
        for left_tree in left:
            for right_tree in right:
                root = XMLNode(TAX_PROD_ROOT)
                root.append_child(left_tree.root.deep_copy())
                root.append_child(right_tree.root.deep_copy())
                output.append(DataTree(root))
        return output
