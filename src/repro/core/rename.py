"""Rename operators.

Both the naive parse and the rewrite end with "a rename operator ... to
change the dummy root to the tag specified in the return clause"
(Sec. 4.1, step 5).  :class:`RenameRoot` is that final step;
:class:`Rename` is the general form renaming every node bound by a
pattern label.
"""

from __future__ import annotations

from ..pattern.matcher import TreeMatcher
from ..pattern.pattern import PatternTree
from ..xmlmodel.tree import Collection, DataTree
from .base import UnaryOperator


class RenameRoot(UnaryOperator):
    """Rename the root element of every tree in the collection."""

    name = "rename-root"

    def __init__(self, new_tag: str):
        self.new_tag = new_tag

    def apply(self, collection: Collection) -> Collection:
        output = Collection(name="rename")
        for tree in collection:
            copy = tree.copy()
            copy.root.tag = self.new_tag
            output.append(copy)
        return output

    def describe(self) -> str:
        return f"rename root -> <{self.new_tag}>"


class Rename(UnaryOperator):
    """Rename every node bound to ``label`` by pattern ``P``."""

    name = "rename"

    def __init__(self, pattern: PatternTree, label: str, new_tag: str):
        self.pattern = pattern
        self.label = label
        self.new_tag = new_tag
        pattern.node(label)
        self._matcher = TreeMatcher()

    def apply(self, collection: Collection) -> Collection:
        output = Collection(name="rename")
        for index, tree in enumerate(collection):
            copy = tree.copy()
            for match in self._matcher.match_tree(self.pattern, copy.root, index):
                match.bindings[self.label].tag = self.new_tag
            output.append(copy)
        return output

    def describe(self) -> str:
        return f"rename {self.label} -> <{self.new_tag}>"
