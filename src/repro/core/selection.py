"""TAX selection (Sec. 2).

Selection takes a collection ``C``, a pattern ``P``, and an adornment
list ``SL``; each output data tree "is the witness tree induced by some
embedding of P into C, modified as possibly prescribed in SL".  Because
one pattern can match many times inside one input tree, selection is
one-to-many: it is strictly more general than relational selection.

Output order: witnesses are emitted per input tree in collection order,
and within a tree in document order of the binding tuple — preserving
the input's relative order, as required.
"""

from __future__ import annotations

from ..pattern.matcher import TreeMatcher
from ..pattern.pattern import PatternTree
from ..xmlmodel.tree import Collection, DataTree
from .base import UnaryOperator, document_positions
from .embed import build_witness_tree


class Selection(UnaryOperator):
    """``σ_{P, SL}(C)`` — pattern-tree selection with adornment."""

    name = "selection"

    def __init__(self, pattern: PatternTree, selection_list: set[str] | frozenset[str] = frozenset()):
        self.pattern = pattern
        self.selection_list = frozenset(selection_list)
        for label in self.selection_list:
            pattern.node(label)  # raises PatternError on unknown labels
        self._matcher = TreeMatcher()

    def apply(self, collection: Collection) -> Collection:
        output = Collection(name="selection")
        for index, tree in enumerate(collection):
            positions = document_positions(tree.root)
            for match in self._matcher.match_tree(self.pattern, tree.root, index):
                witness_root = build_witness_tree(
                    match, self.pattern, self.selection_list, positions
                )
                output.append(
                    DataTree(
                        witness_root,
                        doc_id=tree.doc_id,
                        source_root_nid=tree.source_root_nid,
                    )
                )
        return output

    def describe(self) -> str:
        adorned = ", ".join(sorted(self.selection_list)) or "-"
        return f"selection P={self.pattern.labels()} SL=[{adorned}]"
