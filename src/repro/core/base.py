"""TAX operator foundations: base classes, synthetic tags, shared helpers.

Every TAX operator is collection-in / collection-out (Sec. 2: "TAX is
thus a 'proper' algebra, with composability and closure").  Unary
operators implement :meth:`UnaryOperator.apply`; the joins are binary.
Operators never mutate their inputs — outputs are built from copies —
and always preserve input order, the two global guarantees the paper's
operator definitions state.

The synthetic tags introduced by operators (``tax_group_root`` and
friends, Sec. 3; ``TAX_prod_root``, Fig. 4) are defined here so the
whole library agrees on them.
"""

from __future__ import annotations

from ..errors import AlgebraError
from ..xmlmodel.node import XMLNode
from ..xmlmodel.tree import Collection, DataTree

# Synthetic tags (Sec. 3 and Fig. 4/5 of the paper).
TAX_GROUP_ROOT = "tax_group_root"
TAX_GROUPING_BASIS = "tax_grouping_basis"
TAX_GROUP_SUBROOT = "tax_group_subroot"
TAX_PROD_ROOT = "tax_prod_root"


class UnaryOperator:
    """A TAX operator over one input collection."""

    name = "operator"

    def apply(self, collection: Collection) -> Collection:
        raise NotImplementedError

    def __call__(self, collection: Collection) -> Collection:
        return self.apply(collection)

    def describe(self) -> str:
        """One-line parameter summary used by plan explainers."""
        return self.name


class BinaryOperator:
    """A TAX operator over two input collections (the joins)."""

    name = "binary-operator"

    def apply(self, left: Collection, right: Collection) -> Collection:
        raise NotImplementedError

    def __call__(self, left: Collection, right: Collection) -> Collection:
        return self.apply(left, right)

    def describe(self) -> str:
        return self.name


def document_positions(root: XMLNode) -> dict[int, int]:
    """Map ``id(node)`` to its preorder position within ``root``'s tree.

    Operators use this to arrange copied nodes in document order when
    the matched nodes carry no stored labels.
    """
    return {id(node): index for index, node in enumerate(root.iter())}


def shallow_copy(node: XMLNode) -> XMLNode:
    """Copy one node without its children (keeps tag/content/attrs/nid)."""
    return XMLNode(node.tag, node.content, dict(node.attributes) or None, nid=node.nid)


def atomic_value_of(node: XMLNode) -> str:
    """The comparison/grouping value of a node (its text content)."""
    if node.content is not None:
        return node.content
    parts = [n.content for n in node.iter() if n.content is not None]
    return "".join(parts)


def numeric_or_text(value: str):
    """Sort/aggregate coercion: float when the text parses, else text.

    Mixed-type comparisons are avoided by tagging the type into the key.
    """
    try:
        return (0, float(value))
    except ValueError:
        return (1, value)


def require(condition: bool, message: str) -> None:
    """Parameter validation helper for operators."""
    if not condition:
        raise AlgebraError(message)


def as_collection(trees: list[DataTree], name: str = "") -> Collection:
    return Collection(trees, name=name)
