"""Fluent composition of TAX operators.

TAX's closure property means operator outputs feed operators; this
builder makes that composition read like the algebra:

>>> result = (
...     TaxPipeline.over(database)
...     .select(pattern, adorn={"$2"})
...     .project(pattern, ["$2*"])
...     .groupby(group_pattern, basis=["$2"], ordering=[("$3", "DESCENDING")])
...     .collect()
... )

Every step applies one operator eagerly and returns a new pipeline over
the result, so intermediate collections can be inspected (``peek``) and
pipelines branched without aliasing surprises.
"""

from __future__ import annotations

from typing import Callable

from ..pattern.pattern import PatternTree
from ..xmlmodel.tree import Collection
from .aggregation import AggregateFunction, Aggregation, UpdateSpec
from .duplicates import DuplicateElimination
from .groupby import GroupBy
from .join import Join, JoinKind
from .ordering import SortCollection
from .projection import Projection
from .rename import Rename, RenameRoot
from .selection import Selection
from .setops import Difference, Intersection, Product, Union


class TaxPipeline:
    """An immutable handle on a collection plus chainable operators."""

    def __init__(self, collection: Collection):
        self._collection = collection

    @classmethod
    def over(cls, collection: Collection) -> "TaxPipeline":
        return cls(collection)

    # ------------------------------------------------------------------
    # Unary operators
    # ------------------------------------------------------------------
    def select(
        self, pattern: PatternTree, adorn: set[str] | frozenset[str] = frozenset()
    ) -> "TaxPipeline":
        return TaxPipeline(Selection(pattern, adorn).apply(self._collection))

    def project(self, pattern: PatternTree, projection_list: list[str]) -> "TaxPipeline":
        return TaxPipeline(Projection(pattern, projection_list).apply(self._collection))

    def distinct(
        self, pattern: PatternTree | None = None, label: str | None = None
    ) -> "TaxPipeline":
        return TaxPipeline(DuplicateElimination(pattern, label).apply(self._collection))

    def groupby(
        self,
        pattern: PatternTree,
        basis: list[str],
        ordering: list[tuple[str, str]] | None = None,
    ) -> "TaxPipeline":
        return TaxPipeline(GroupBy(pattern, basis, ordering).apply(self._collection))

    def aggregate(
        self,
        pattern: PatternTree,
        function: AggregateFunction | str,
        source_label: str,
        new_tag: str,
        update: UpdateSpec,
    ) -> "TaxPipeline":
        operator = Aggregation(pattern, function, source_label, new_tag, update)
        return TaxPipeline(operator.apply(self._collection))

    def sort(self, pattern: PatternTree, ordering: list[tuple[str, str]]) -> "TaxPipeline":
        return TaxPipeline(SortCollection(pattern, ordering).apply(self._collection))

    def rename_root(self, new_tag: str) -> "TaxPipeline":
        return TaxPipeline(RenameRoot(new_tag).apply(self._collection))

    def rename(self, pattern: PatternTree, label: str, new_tag: str) -> "TaxPipeline":
        return TaxPipeline(Rename(pattern, label, new_tag).apply(self._collection))

    # ------------------------------------------------------------------
    # Binary operators
    # ------------------------------------------------------------------
    def join(
        self,
        other: "TaxPipeline | Collection",
        left_pattern: PatternTree,
        right_pattern: PatternTree,
        conditions: list[tuple[str, str]],
        kind: JoinKind = JoinKind.INNER,
        adorn: set[str] | frozenset[str] = frozenset(),
    ) -> "TaxPipeline":
        operator = Join(left_pattern, right_pattern, conditions, kind, adorn)
        return TaxPipeline(operator.apply(self._collection, _as_collection(other)))

    def union(self, other: "TaxPipeline | Collection", distinct: bool = False) -> "TaxPipeline":
        return TaxPipeline(Union(distinct).apply(self._collection, _as_collection(other)))

    def intersect(self, other: "TaxPipeline | Collection") -> "TaxPipeline":
        return TaxPipeline(Intersection().apply(self._collection, _as_collection(other)))

    def difference(self, other: "TaxPipeline | Collection") -> "TaxPipeline":
        return TaxPipeline(Difference().apply(self._collection, _as_collection(other)))

    def product(self, other: "TaxPipeline | Collection") -> "TaxPipeline":
        return TaxPipeline(Product().apply(self._collection, _as_collection(other)))

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------
    def collect(self) -> Collection:
        """The pipeline's current collection."""
        return self._collection

    def peek(self, fn: Callable[[Collection], None]) -> "TaxPipeline":
        """Call ``fn`` on the current collection (debugging) and continue."""
        fn(self._collection)
        return self

    def __len__(self) -> int:
        return len(self._collection)

    def __iter__(self):
        return iter(self._collection)


def _as_collection(value: "TaxPipeline | Collection") -> Collection:
    if isinstance(value, TaxPipeline):
        return value.collect()
    return value
