"""TAX value joins: inner, left outer, and full outer.

The naive parse of a grouping query (Sec. 4.1, Fig. 4.b) produces "a
left outer join between all the authors of the database, as selected
already ..., and the authors of articles".  The join-plan pattern tree
has a ``TAX_prod_root`` root whose two subtrees describe the left and
right operands, with a value predicate tying them together
(``$3.content = $6.content``).

Operationally the operator takes one pattern per side, matched within
the respective operand, plus cross-side content-equality conditions.
Each surviving pair of embeddings yields one output tree::

    tax_prod_root
    ├── left witness tree   (adorned per SL)
    └── right witness tree  (adorned per SL)

Outer variants pad the missing side: LEFT_OUTER keeps every left
embedding with no matching right embedding (Fig. 8 shows such a padded
tree for author Jill before her article matched), FULL_OUTER also keeps
unmatched right embeddings.

The evaluation is deliberately nested loops over embedding pairs: this
operator *is* the paper's slow baseline; the rewrite exists to remove
it.
"""

from __future__ import annotations

from enum import Enum

from ..errors import AlgebraError
from ..pattern.matcher import TreeMatcher
from ..pattern.pattern import PatternTree
from ..pattern.witness import TreeMatch
from ..xmlmodel.node import XMLNode
from ..xmlmodel.tree import Collection, DataTree
from .base import TAX_PROD_ROOT, BinaryOperator, atomic_value_of, document_positions
from .embed import build_witness_tree


class JoinKind(str, Enum):
    INNER = "inner"
    LEFT_OUTER = "left-outer"
    FULL_OUTER = "full-outer"


class Join(BinaryOperator):
    """Value join of two collections on witness-binding contents."""

    name = "join"

    def __init__(
        self,
        left_pattern: PatternTree,
        right_pattern: PatternTree,
        conditions: list[tuple[str, str]],
        kind: JoinKind = JoinKind.INNER,
        selection_list: set[str] | frozenset[str] = frozenset(),
    ):
        """``conditions`` pairs a left-pattern label with a right-pattern
        label; all pairs must agree on content for a pair of embeddings
        to join."""
        self.left_pattern = left_pattern
        self.right_pattern = right_pattern
        self.conditions = list(conditions)
        self.kind = kind
        self.selection_list = frozenset(selection_list)
        if not self.conditions and kind is not JoinKind.INNER:
            raise AlgebraError("outer joins require at least one condition")
        for left_label, right_label in self.conditions:
            left_pattern.node(left_label)
            right_pattern.node(right_label)
        self._matcher = TreeMatcher()

    # ------------------------------------------------------------------
    def apply(self, left: Collection, right: Collection) -> Collection:
        left_matches = self._collect(self.left_pattern, left)
        right_matches = self._collect(self.right_pattern, right)

        output = Collection(name=f"join-{self.kind.value}")
        right_matched = [False] * len(right_matches)

        for l_match, l_positions in left_matches:
            padded = True
            for r_index, (r_match, r_positions) in enumerate(right_matches):
                if not self._passes(l_match, r_match):
                    continue
                padded = False
                right_matched[r_index] = True
                output.append(self._pair_tree(l_match, l_positions, r_match, r_positions))
            if padded and self.kind in (JoinKind.LEFT_OUTER, JoinKind.FULL_OUTER):
                output.append(self._pair_tree(l_match, l_positions, None, None))

        if self.kind is JoinKind.FULL_OUTER:
            for r_index, (r_match, r_positions) in enumerate(right_matches):
                if not right_matched[r_index]:
                    output.append(self._pair_tree(None, None, r_match, r_positions))
        return output

    # ------------------------------------------------------------------
    def _collect(
        self, pattern: PatternTree, collection: Collection
    ) -> list[tuple[TreeMatch, dict[int, int]]]:
        out: list[tuple[TreeMatch, dict[int, int]]] = []
        for index, tree in enumerate(collection):
            positions = document_positions(tree.root)
            for match in self._matcher.match_tree(pattern, tree.root, index):
                out.append((match, positions))
        return out

    def _passes(self, l_match: TreeMatch, r_match: TreeMatch) -> bool:
        for left_label, right_label in self.conditions:
            left_value = atomic_value_of(l_match.bindings[left_label])
            right_value = atomic_value_of(r_match.bindings[right_label])
            if left_value != right_value:
                return False
        return True

    def _pair_tree(
        self,
        l_match: TreeMatch | None,
        l_positions: dict[int, int] | None,
        r_match: TreeMatch | None,
        r_positions: dict[int, int] | None,
    ) -> DataTree:
        root = XMLNode(TAX_PROD_ROOT)
        if l_match is not None:
            root.append_child(
                build_witness_tree(l_match, self.left_pattern, self.selection_list, l_positions)
            )
        if r_match is not None:
            root.append_child(
                build_witness_tree(r_match, self.right_pattern, self.selection_list, r_positions)
            )
        return DataTree(root)

    def describe(self) -> str:
        conditions = ", ".join(f"{a}={b}" for a, b in self.conditions) or "true"
        return f"{self.kind.value} join on {conditions}"
