"""Result construction helpers.

The RETURN clause of a FLWR expression builds new elements around the
values computed per binding.  The naive parse realizes this with "the
appropriate stitching ... using a full outer join and then a renaming"
(Sec. 4.1); these helpers are the small constructive pieces both the
naive and the rewritten pipelines share.
"""

from __future__ import annotations

from typing import Iterable

from ..xmlmodel.node import XMLNode
from ..xmlmodel.tree import Collection, DataTree
from .base import UnaryOperator


class WrapEach(UnaryOperator):
    """Put every tree of the collection under a fresh ``<tag>`` root."""

    name = "wrap-each"

    def __init__(self, tag: str):
        self.tag = tag

    def apply(self, collection: Collection) -> Collection:
        output = Collection(name="wrap")
        for tree in collection:
            root = XMLNode(self.tag)
            root.append_child(tree.root.deep_copy())
            output.append(DataTree(root))
        return output

    def describe(self) -> str:
        return f"wrap each in <{self.tag}>"


def wrap_all(collection: Collection, tag: str) -> DataTree:
    """One tree with every collection member as a child of ``<tag>``."""
    root = XMLNode(tag)
    for tree in collection:
        root.append_child(tree.root.deep_copy())
    return DataTree(root)


def stitch(groups: Iterable[list[XMLNode]], tag: str) -> Collection:
    """Build one ``<tag>`` element per group of member nodes.

    This realizes the per-binding stitching of RETURN arguments: each
    group is the list of already-constructed argument results for one
    outer binding, in argument order.
    """
    output = Collection(name="stitch")
    for members in groups:
        root = XMLNode(tag)
        for member in members:
            root.append_child(member.deep_copy())
        output.append(DataTree(root))
    return output


def members_of(group_tree: DataTree, dedup: bool = True) -> Collection:
    """The member source trees of one ``tax_group_root`` tree, as a
    collection — the inverse direction of grouping, enabled by closure.

    With ``dedup=True`` (default) a source tree appearing several times
    in the group (several witnesses) is returned once, keyed by its
    stored node id when available, else by deep value.
    """
    children = group_tree.root.children
    if len(children) != 2:
        raise ValueError("not a group tree: expected basis + subroot children")
    subroot = children[1]
    output = Collection(name="members")
    seen: set = set()
    for member in subroot.children:
        if dedup:
            key = member.nid if member.nid is not None else member.canonical_key()
            if key in seen:
                continue
            seen.add(key)
        output.append(DataTree(member))
    return output


def grouping_value_of(group_tree: DataTree) -> str | None:
    """The first grouping-basis value of a ``tax_group_root`` tree."""
    children = group_tree.root.children
    if len(children) != 2 or not children[0].children:
        raise ValueError("not a group tree: missing grouping basis")
    return children[0].children[0].content


def concat(*collections: Collection) -> Collection:
    """Concatenate collections, preserving order."""
    output = Collection(name="concat")
    for collection in collections:
        output.extend(collection)
    return output
