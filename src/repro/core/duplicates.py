"""Duplicate elimination.

The naive parse (Sec. 4.1) follows its selections with "a duplicate
elimination based on the content of the bound variable" — e.g.
``distinct-values(//author)`` keeps one tree per distinct author
content.  Two keying modes are provided:

* **by binding content** — a pattern plus a label; the key is the text
  content of the node bound to that label (the paper's mode);
* **by whole tree** — the canonical (deep) value of the tree, used when
  no pattern applies, e.g. deduplicating constructed results.

The first occurrence wins and input order is preserved, so the result
is deterministic on ordered collections.
"""

from __future__ import annotations

from ..errors import AlgebraError
from ..pattern.matcher import TreeMatcher
from ..pattern.pattern import PatternTree
from ..xmlmodel.tree import Collection
from .base import UnaryOperator, atomic_value_of


class DuplicateElimination(UnaryOperator):
    """``δ`` — keep the first tree per key, preserving order."""

    name = "duplicate-elimination"

    def __init__(
        self,
        pattern: PatternTree | None = None,
        label: str | None = None,
        by_nids: bool = False,
    ):
        """With a pattern and label, key on the bound node's content; with
        neither, key on the whole-tree canonical value.

        ``by_nids=True`` keys on node *identity* instead of deep value:
        stored node ids (where present) join the key, so two distinct but
        structurally identical source trees are never merged.  This is
        the keying the naive plan's "duplicate elimination based on
        articles" needs — duplicates there are repeated *pairs*, not
        lookalike articles.
        """
        if (pattern is None) != (label is None):
            raise AlgebraError("pattern and label must be given together")
        if by_nids and pattern is not None:
            raise AlgebraError("by_nids applies to whole-tree keying only")
        self.pattern = pattern
        self.label = label
        self.by_nids = by_nids
        if pattern is not None and label is not None:
            pattern.node(label)
        self._matcher = TreeMatcher()

    def apply(self, collection: Collection) -> Collection:
        output = Collection(name="distinct")
        seen: set = set()
        for index, tree in enumerate(collection):
            key = self._key(tree.root, index)
            if key in seen:
                continue
            seen.add(key)
            output.append(tree)
        return output

    def _key(self, root, index: int):
        if self.pattern is None:
            if self.by_nids:
                return tuple(
                    (node.nid, node.tag, node.content) for node in root.iter()
                )
            return root.canonical_key()
        matches = self._matcher.match_tree(self.pattern, root, index)
        if not matches:
            # Trees the pattern misses are keyed by identity: kept, never
            # merged (they carry no grouping value to compare on).
            return ("__unmatched__", index)
        assert self.label is not None
        values = tuple(
            sorted(atomic_value_of(match.bindings[self.label]) for match in matches)
        )
        return ("content", values)

    def describe(self) -> str:
        if self.pattern is None:
            return "distinct (whole tree)"
        return f"distinct ({self.label}.content)"
