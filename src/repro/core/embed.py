"""Witness-tree construction shared by selection and the joins.

Given one pattern embedding (a :class:`~repro.pattern.witness.TreeMatch`),
build the output *witness tree*: the matched nodes arranged by the
pattern's structure, with nodes named in the adornment/selection list
``SL`` expanded to their full data subtrees (Sec. 2, Selection: "the
adornment list SL lists nodes from P for which not just the nodes
themselves, but all descendants, are to be returned").

Sibling copies under one parent are arranged in document order of the
matched nodes, preserving "the relative order among nodes in the input"
as the operator definitions require.
"""

from __future__ import annotations

from ..pattern.pattern import PatternNode, PatternTree
from ..pattern.witness import TreeMatch
from ..xmlmodel.node import XMLNode
from .base import shallow_copy


def build_witness_tree(
    match: TreeMatch,
    pattern: PatternTree,
    selection_list: frozenset[str] | set[str] = frozenset(),
    positions: dict[int, int] | None = None,
) -> XMLNode:
    """Materialize one witness tree from a match over in-memory nodes.

    ``selection_list`` holds the labels whose full subtrees are kept
    (the ``SL`` adornment).  ``positions`` maps ``id(node)`` to document
    position in the source tree; when provided, sibling bindings are
    ordered by it.
    """
    return _build(pattern.root, match, frozenset(selection_list), positions)


def _build(
    pnode: PatternNode,
    match: TreeMatch,
    selection_list: frozenset[str],
    positions: dict[int, int] | None,
) -> XMLNode:
    bound = match.bindings[pnode.label]
    if pnode.label in selection_list:
        # Full subtree; pattern descendants are already inside the copy,
        # so they are not re-attached (that would duplicate them).
        return bound.deep_copy()

    copy = shallow_copy(bound)
    children = list(pnode.children)
    if positions is not None:
        children.sort(key=lambda child: positions.get(id(match.bindings[child.label]), 0))
    for child in children:
        copy.append_child(_build(child, match, selection_list, positions))
    return copy
