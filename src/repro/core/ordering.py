"""Collection ordering.

TAX collections are ordered; this operator re-orders the *trees* of a
collection by values drawn from pattern bindings (the ordering-list
machinery shared with groupby).  Trees the pattern does not match keep
their relative order after all matched trees.
"""

from __future__ import annotations

from ..pattern.matcher import TreeMatcher
from ..pattern.pattern import PatternTree
from ..xmlmodel.tree import Collection
from .base import UnaryOperator, numeric_or_text
from .groupby import ASCENDING, DESCENDING, OrderItem


class SortCollection(UnaryOperator):
    """Order trees by ordering-list values of their first witness."""

    name = "sort"

    def __init__(self, pattern: PatternTree, ordering: list[tuple[str, str] | OrderItem]):
        self.pattern = pattern
        self.ordering = [
            item if isinstance(item, OrderItem) else OrderItem.parse(item[0], item[1])
            for item in ordering
        ]
        for item in self.ordering:
            pattern.node(item.label)
        self._matcher = TreeMatcher()

    def apply(self, collection: Collection) -> Collection:
        keyed = []
        unmatched = []
        for index, tree in enumerate(collection):
            matches = self._matcher.match_tree(self.pattern, tree.root, index)
            if not matches:
                unmatched.append(tree)
                continue
            keyed.append((matches[0], tree))

        ordered = keyed
        for item in reversed(self.ordering):
            reverse = item.direction == DESCENDING
            ordered = sorted(
                ordered,
                key=lambda pair: numeric_or_text(item.value_of(pair[0])),
                reverse=reverse,
            )
        output = Collection(name="sort")
        output.extend(tree for _, tree in ordered)
        output.extend(unmatched)
        return output

    def describe(self) -> str:
        return "sort " + ", ".join(item.render() for item in self.ordering)


__all__ = ["SortCollection", "ASCENDING", "DESCENDING", "OrderItem"]
