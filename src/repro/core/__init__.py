"""The TAX algebra (S7) with GROUPBY (S8) and aggregation (S9).

This package is the paper's contribution layer: logical, in-memory
reference implementations of every operator the paper uses, defined over
collections of trees.  The physical, store-backed engine lives in
:mod:`repro.query.physical` and is cross-checked against this layer by
the integration tests.
"""

from .aggregation import AggregateFunction, Aggregation, UpdatePosition, UpdateSpec
from .base import (
    TAX_GROUP_ROOT,
    TAX_GROUP_SUBROOT,
    TAX_GROUPING_BASIS,
    TAX_PROD_ROOT,
    BinaryOperator,
    UnaryOperator,
    atomic_value_of,
)
from .construct import (
    WrapEach,
    concat,
    grouping_value_of,
    members_of,
    stitch,
    wrap_all,
)
from .duplicates import DuplicateElimination
from .embed import build_witness_tree
from .groupby import (
    ASCENDING,
    DESCENDING,
    BasisItem,
    GroupBy,
    GroupByFunction,
    OrderItem,
)
from .join import Join, JoinKind
from .ordering import SortCollection
from .pipeline import TaxPipeline
from .projection import Projection
from .rename import Rename, RenameRoot
from .selection import Selection
from .setops import Difference, Intersection, Product, Union

__all__ = [
    "AggregateFunction",
    "Aggregation",
    "UpdatePosition",
    "UpdateSpec",
    "TAX_GROUP_ROOT",
    "TAX_GROUP_SUBROOT",
    "TAX_GROUPING_BASIS",
    "TAX_PROD_ROOT",
    "BinaryOperator",
    "UnaryOperator",
    "atomic_value_of",
    "WrapEach",
    "concat",
    "grouping_value_of",
    "members_of",
    "stitch",
    "wrap_all",
    "DuplicateElimination",
    "build_witness_tree",
    "ASCENDING",
    "DESCENDING",
    "BasisItem",
    "GroupBy",
    "GroupByFunction",
    "OrderItem",
    "Join",
    "JoinKind",
    "SortCollection",
    "TaxPipeline",
    "Projection",
    "Rename",
    "RenameRoot",
    "Selection",
    "Difference",
    "Intersection",
    "Product",
    "Union",
]
