"""TAX projection (Sec. 2).

Projection keeps only the nodes named in the projection list ``PL``
(labels of pattern ``P``, optionally starred to keep whole subtrees)
and "the (partial) hierarchical relationships between surviving nodes
... are preserved".  One input tree can contribute zero output trees
(no witness), one, or several — the latter when retained nodes have no
ancestor-descendant relationship among them, in which case each maximal
retained node roots its own output tree, in document order.

This is strictly more general than relational projection; the paper's
note about forcing exactly one output tree (put the pattern root in PL
and anchor it at the data root) falls out naturally.
"""

from __future__ import annotations

from ..errors import AlgebraError
from ..pattern.matcher import TreeMatcher
from ..pattern.pattern import PatternTree
from ..xmlmodel.node import XMLNode
from ..xmlmodel.tree import Collection, DataTree
from .base import UnaryOperator, shallow_copy


def parse_projection_item(item: str) -> tuple[str, bool]:
    """Split ``"$2*"`` into ``("$2", True)`` and ``"$2"`` into ``("$2", False)``."""
    if item.endswith("*"):
        return item[:-1], True
    return item, False


class Projection(UnaryOperator):
    """``π_{P, PL}(C)`` — keep listed nodes, preserving hierarchy."""

    name = "projection"

    def __init__(self, pattern: PatternTree, projection_list: list[str]):
        if not projection_list:
            raise AlgebraError("projection list must not be empty")
        self.pattern = pattern
        self.projection_list = list(projection_list)
        self._items = [parse_projection_item(item) for item in projection_list]
        for label, _ in self._items:
            pattern.node(label)
        self._matcher = TreeMatcher()

    def apply(self, collection: Collection) -> Collection:
        output = Collection(name="projection")
        for index, tree in enumerate(collection):
            for root in self._project_tree(tree.root, index):
                output.append(
                    DataTree(root, doc_id=tree.doc_id, source_root_nid=tree.source_root_nid)
                )
        return output

    # ------------------------------------------------------------------
    def _project_tree(self, root: XMLNode, tree_index: int) -> list[XMLNode]:
        matches = self._matcher.match_tree(self.pattern, root, tree_index)
        if not matches:
            return []
        retained: set[int] = set()
        starred: set[int] = set()
        for match in matches:
            for label, star in self._items:
                node = match.bindings[label]
                retained.add(id(node))
                if star:
                    starred.add(id(node))
        return self._collapse(root, retained, starred)

    @staticmethod
    def _collapse(root: XMLNode, retained: set[int], starred: set[int]) -> list[XMLNode]:
        """Rebuild the forest of retained nodes, hoisting over dropped ones."""

        def project(node: XMLNode, inside_star: bool) -> list[XMLNode]:
            keep = inside_star or id(node) in retained
            star = inside_star or id(node) in starred
            if keep:
                copy = shallow_copy(node)
                for child in node.children:
                    for projected in project(child, star):
                        copy.append_child(projected)
                return [copy]
            hoisted: list[XMLNode] = []
            for child in node.children:
                hoisted.extend(project(child, False))
            return hoisted

        return project(root, False)

    def describe(self) -> str:
        return f"projection P={self.pattern.labels()} PL={self.projection_list}"
