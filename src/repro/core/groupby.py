"""The TAX GROUPBY operator — the paper's primary contribution (Sec. 3).

``γ`` takes a collection plus three parameters:

* a **pattern tree** ``P`` — for each witness tree of ``P`` we keep
  track of the *source tree* it was obtained from;
* a **grouping basis** — pattern labels (``$i``), attributes
  (``$i.attr``), or starred labels (``$i*``) whose values partition the
  witness set;
* an **ordering list** — (label, direction) pairs ordering the members
  of each group for output.

The output tree per group ``W_i`` is exactly the paper's shape::

    tax_group_root
    ├── tax_grouping_basis     (left child)
    │   └── one child per grouping-basis item
    └── tax_group_subroot      (right child)
        └── the source trees of the group's witnesses, ordered

Grouping does **not** partition the input: a source tree with several
witnesses lands in several groups (a two-author article appears in both
authors' groups), and "source trees having more than one witness tree
will clearly appear more than once" within a group as well.

Groups are emitted in order of first appearance of their basis value in
the witness stream (document order), which reproduces the paper's
worked example (Fig. 10: Jack, John, Jill).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AlgebraError
from ..pattern.matcher import TreeMatcher
from ..pattern.pattern import PatternTree
from ..pattern.witness import TreeMatch
from ..xmlmodel.node import XMLNode
from ..xmlmodel.tree import Collection, DataTree
from .base import (
    TAX_GROUP_ROOT,
    TAX_GROUP_SUBROOT,
    TAX_GROUPING_BASIS,
    UnaryOperator,
    atomic_value_of,
    numeric_or_text,
    shallow_copy,
)

ASCENDING = "ASCENDING"
DESCENDING = "DESCENDING"


@dataclass(frozen=True)
class BasisItem:
    """One grouping-basis component: ``$i``, ``$i.attr``, or ``$i*``."""

    label: str
    attribute: str | None = None
    star: bool = False

    @classmethod
    def parse(cls, text: str) -> "BasisItem":
        star = text.endswith("*")
        if star:
            text = text[:-1]
        if "." in text:
            label, attribute = text.split(".", 1)
            if star:
                raise AlgebraError(f"cannot star an attribute item: {text}*")
            return cls(label=label, attribute=attribute)
        return cls(label=text, star=star)

    def value_of(self, match: TreeMatch) -> str | None:
        node = match.bindings[self.label]
        if self.attribute is not None:
            return node.attributes.get(self.attribute)
        return atomic_value_of(node)

    def render(self) -> str:
        text = self.label
        if self.attribute is not None:
            text += f".{self.attribute}"
        if self.star:
            text += "*"
        return text


@dataclass(frozen=True)
class OrderItem:
    """One ordering-list component: a value source plus a direction."""

    label: str
    attribute: str | None = None
    direction: str = ASCENDING

    @classmethod
    def parse(cls, text: str, direction: str = ASCENDING) -> "OrderItem":
        direction = direction.upper()
        if direction not in (ASCENDING, DESCENDING):
            raise AlgebraError(f"bad order direction {direction!r}")
        if "." in text:
            label, attribute = text.split(".", 1)
            return cls(label=label, attribute=attribute, direction=direction)
        return cls(label=text, direction=direction)

    def value_of(self, match: TreeMatch) -> str:
        node = match.bindings[self.label]
        if self.attribute is not None:
            return node.attributes.get(self.attribute, "")
        return atomic_value_of(node)

    def render(self) -> str:
        text = self.label
        if self.attribute is not None:
            text += f".{self.attribute}"
        return f"{self.direction} {text}"


class GroupBy(UnaryOperator):
    """``γ_{P, basis, order}(C)`` — grouping of source trees by witness values."""

    name = "groupby"

    def __init__(
        self,
        pattern: PatternTree,
        grouping_basis: list[str | BasisItem],
        ordering: list[tuple[str, str] | OrderItem] | None = None,
    ):
        if not grouping_basis:
            raise AlgebraError("grouping basis must not be empty")
        self.pattern = pattern
        self.basis: list[BasisItem] = [
            item if isinstance(item, BasisItem) else BasisItem.parse(item)
            for item in grouping_basis
        ]
        self.ordering: list[OrderItem] = [
            item if isinstance(item, OrderItem) else OrderItem.parse(item[0], item[1])
            for item in (ordering or [])
        ]
        for item in self.basis:
            pattern.node(item.label)
        for item in self.ordering:
            pattern.node(item.label)
        self._matcher = TreeMatcher()

    # ------------------------------------------------------------------
    def apply(self, collection: Collection) -> Collection:
        witnesses = self._matcher.match_collection(self.pattern, collection)

        # Partition witnesses by basis values, first-appearance order.
        group_order: list[tuple] = []
        groups: dict[tuple, list[TreeMatch]] = {}
        for match in witnesses:
            key = tuple(item.value_of(match) for item in self.basis)
            if key not in groups:
                groups[key] = []
                group_order.append(key)
            groups[key].append(match)

        output = Collection(name="groupby")
        for key in group_order:
            # The basis exemplar is the first witness in document order;
            # the ordering list only reorders the members.
            exemplar = groups[key][0]
            members = self._order_members(groups[key])
            output.append(
                DataTree(self._build_group_tree(exemplar, members, collection))
            )
        return output

    # ------------------------------------------------------------------
    def _order_members(self, members: list[TreeMatch]) -> list[TreeMatch]:
        """Sort group members by the ordering list (stable; ties keep the
        witness document order)."""
        ordered = members
        # Apply components right-to-left so the leftmost is primary.
        for item in reversed(self.ordering):
            reverse = item.direction == DESCENDING
            ordered = sorted(
                ordered,
                key=lambda match: numeric_or_text(item.value_of(match)),
                reverse=reverse,
            )
        return list(ordered)

    def _build_group_tree(
        self, exemplar: TreeMatch, members: list[TreeMatch], collection: Collection
    ) -> XMLNode:
        root = XMLNode(TAX_GROUP_ROOT)
        basis_node = root.add(TAX_GROUPING_BASIS)
        for item in self.basis:
            bound = exemplar.bindings[item.label]
            if item.star:
                basis_node.append_child(bound.deep_copy())
            elif item.attribute is not None:
                # An attribute item contributes a copy of the matched node
                # carrying (at least) that attribute.
                copy = shallow_copy(bound)
                basis_node.append_child(copy)
            else:
                basis_node.append_child(shallow_copy(bound))
        subroot = root.add(TAX_GROUP_SUBROOT)
        for match in members:
            source_tree = collection[match.tree_index]
            subroot.append_child(source_tree.root.deep_copy())
        return root

    def describe(self) -> str:
        basis = ", ".join(item.render() for item in self.basis)
        order = ", ".join(item.render() for item in self.ordering) or "-"
        return f"groupby basis=[{basis}] order=[{order}]"


class GroupByFunction(UnaryOperator):
    """Grouping by a generic tree-to-value function.

    The enhancement the paper names in Sec. 3: "one could use a generic
    function mapping trees to values rather than an attribute list to
    perform the needed grouping, one can have a more sophisticated
    ordering function".  Each input tree is mapped by ``key``; trees
    with equal keys form one group, emitted in first-appearance order.
    The output keeps the ``tax_group_root`` shape with the rendered key
    as the single grouping-basis child (tag ``tax_group_key``).

    ``order_key``/``reverse`` order the members of each group; by
    default members keep input order.
    """

    name = "groupby-function"

    def __init__(
        self,
        key,
        order_key=None,
        reverse: bool = False,
        key_tag: str = "tax_group_key",
    ):
        if not callable(key):
            raise AlgebraError("groupby-function needs a callable key")
        self.key = key
        self.order_key = order_key
        self.reverse = reverse
        self.key_tag = key_tag

    def apply(self, collection: Collection) -> Collection:
        order: list = []
        groups: dict = {}
        for tree in collection:
            value = self.key(tree.root)
            if value not in groups:
                groups[value] = []
                order.append(value)
            groups[value].append(tree)

        output = Collection(name="groupby-function")
        for value in order:
            members = groups[value]
            if self.order_key is not None:
                members = sorted(
                    members,
                    key=lambda tree: self.order_key(tree.root),
                    reverse=self.reverse,
                )
            root = XMLNode(TAX_GROUP_ROOT)
            basis = root.add(TAX_GROUPING_BASIS)
            basis.append_child(XMLNode(self.key_tag, str(value)))
            subroot = root.add(TAX_GROUP_SUBROOT)
            for member in members:
                subroot.append_child(member.root.deep_copy())
            output.append(DataTree(root))
        return output

    def describe(self) -> str:
        return f"groupby-function key={getattr(self.key, '__name__', 'lambda')}"
