"""Exception hierarchy for the repro (TIMBER/TAX reproduction) library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one base class.  Subsystems get
their own subclasses; the query front end further distinguishes syntax
errors (bad input text) from translation errors (valid text outside the
supported XQuery subset).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class XMLParseError(ReproError):
    """Malformed XML input text.

    Carries the 1-based ``line`` and ``column`` of the offending position
    when known, so error messages can point at the input.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class StorageError(ReproError):
    """Errors from the page store, disk manager, or buffer pool."""


class PageCorruptionError(StorageError):
    """A page failed its checksum or structural validation on read."""


class TransientIOError(StorageError):
    """A physical I/O operation failed in a way that may succeed on
    retry (injected fault, short read, flaky device).  The buffer-pool
    read path retries these with bounded backoff before giving up."""


class RecoveryError(StorageError):
    """Crash recovery could not restore a page or structure, or an
    access touched a page that recovery quarantined as unrecoverable."""


class BufferPoolError(StorageError):
    """Buffer pool misuse, e.g. unpinning a page that is not pinned."""


class IndexError_(ReproError):
    """Errors from the index manager (named with a trailing underscore to
    avoid shadowing the builtin :class:`IndexError`)."""


class PatternError(ReproError):
    """Malformed pattern tree or invalid pattern-tree parameters."""


class AlgebraError(ReproError):
    """Invalid parameters to a TAX algebra operator."""


class XQuerySyntaxError(ReproError):
    """The XQuery text could not be tokenized or parsed.

    Carries the position of the offending token when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class TranslationError(ReproError):
    """The query parsed, but falls outside the XQuery subset that the
    algebraic translator (Sec. 4.1/4.2 of the paper) supports."""


class RewriteError(ReproError):
    """The grouping rewrite was asked to transform a plan that does not
    match the Phase-1 detection conditions."""


class DatabaseError(ReproError):
    """Errors from the Database facade (unknown document, closed handle...)."""


class ServiceError(ReproError):
    """Errors from the concurrent query service layer."""


class AdmissionError(ServiceError):
    """The service's admission queue is full — backpressure.

    Clients should retry later (or shed the request); the error carries
    no partial work.
    """


class QueryTimeoutError(ServiceError):
    """A query exceeded its deadline and was cancelled at the next
    cooperative checkpoint.  All resources (buffer pins, queue slots)
    are released before the error propagates."""


class QueryCancelledError(ServiceError):
    """A query was cancelled explicitly (client disconnect, shutdown)
    before completing."""


class SessionError(ServiceError):
    """Unknown, closed, or otherwise invalid service session."""


class ProtocolError(ServiceError):
    """Malformed request on the line-oriented service protocol."""


class ServerOverloadedError(ServiceError):
    """The server is at its connection cap and shed this connection
    with an immediate ``ERR`` instead of queueing it.  Retryable."""


class ServerDrainingError(ServiceError):
    """The server is draining for shutdown and no longer accepts new
    connections or requests.  Retryable against a replacement server."""


class ClientError(ServiceError):
    """Base class for errors raised by the resilient service client.

    Every failure :class:`~repro.service.client.ServiceClient` surfaces
    is a subclass — raw socket exceptions never escape the client.
    """


class ConnectionFailedError(ClientError):
    """A connection attempt (or an established connection) failed at
    the socket level.  The original ``OSError`` is chained as the
    cause."""


class RetryBudgetExceededError(ClientError):
    """The client exhausted its retry budget without a successful
    round trip; the last underlying failure is chained as the cause."""


class CircuitOpenError(ClientError):
    """The client's circuit breaker is open: recent calls failed
    consecutively, so the client fails fast instead of hammering a
    struggling server.  The breaker re-probes after its reset
    timeout."""


class AmbiguousResultError(ClientError):
    """A non-idempotent command failed *after* the request was written:
    the server may or may not have executed it, so the client refuses
    to replay and surfaces the ambiguity instead."""


class RemoteError(ClientError):
    """The server answered ``ERR``: the round trip worked but the
    request itself failed.  Carries the server-side exception ``kind``
    and message."""

    def __init__(self, kind: str, message: str):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.remote_message = message


class ClusterError(ServiceError):
    """Base class for errors raised by the sharded-cluster layer
    (coordinator, shard map, distributed merge)."""


class ShardUnavailableError(ClusterError):
    """A shard needed to answer the request could not be reached at all
    (every owner of some slice is down or quarantined) and the caller
    did not allow a partial result.  Carries the shard ids that were
    missing."""

    def __init__(self, message: str, missing_shards: frozenset[int] = frozenset()):
        super().__init__(message)
        self.missing_shards = frozenset(missing_shards)


class PartialResultError(ClusterError):
    """A scatter-gather query completed on some shards but not all, and
    the caller did not opt into partial results
    (``allow_partial=True``).  Carries the shard ids whose slices are
    missing from the would-be result."""

    def __init__(self, message: str, missing_shards: frozenset[int] = frozenset()):
        super().__init__(message)
        self.missing_shards = frozenset(missing_shards)


class ClusterMergeError(ClusterError):
    """The query's shape cannot be merged across shard slices (e.g. a
    document-spanning join the coordinator has no merge operator for).
    Single-shard routing may still execute it."""
