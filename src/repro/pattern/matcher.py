"""Pattern-tree matching against stored documents and in-memory trees.

Two matchers implement the same semantics at two levels:

* :class:`StoreMatcher` — the physical path of Sec. 5.2: per pattern
  node, obtain a candidate label stream (tag index, value index, or a
  filtered scan), then combine streams one pattern edge at a time with
  single-pass structural joins.  Bindings are node identifiers only; no
  data page is touched unless a residual predicate forces it.
* :class:`TreeMatcher` — the reference path over in-memory
  :class:`~repro.xmlmodel.node.XMLNode` trees, used by the logical TAX
  operators on intermediate collections and by tests as ground truth.

Both return witnesses in document order (of the binding tuple, compared
in pattern preorder), which downstream operators rely on for the
paper's order-preservation guarantees.
"""

from __future__ import annotations

from ..cancellation import checkpoint
from ..indexing.labels import NodeLabel
from ..indexing.manager import IndexManager
from ..pattern.pattern import Axis, PatternNode, PatternTree
from ..storage.store import NodeStore
from ..xmlmodel.node import XMLNode
from ..xmlmodel.tree import Collection
from .predicates import AnyNode, Conjunction, ContentEquals, Predicate, TagEquals
from .structural_join import structural_join_pairs_by_ancestor
from .witness import StoreMatch, TreeMatch


class MatcherStatistics:
    """Work counters for candidate generation and filtering."""

    __slots__ = ("candidate_labels", "residual_checks", "witnesses")

    def __init__(self):
        self.candidate_labels = 0
        self.residual_checks = 0
        self.witnesses = 0

    def reset(self) -> None:
        self.candidate_labels = 0
        self.residual_checks = 0
        self.witnesses = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "candidate_labels": self.candidate_labels,
            "residual_checks": self.residual_checks,
            "witnesses": self.witnesses,
        }


def _index_covers(predicate: Predicate) -> bool:
    """True when candidate streams from the indexes already guarantee the
    predicate, so no residual data check is needed."""
    if isinstance(predicate, (AnyNode, TagEquals, ContentEquals)):
        return True
    if isinstance(predicate, Conjunction):
        return all(isinstance(part, (TagEquals, ContentEquals)) for part in predicate.parts)
    return False


class StoreMatcher:
    """Index-assisted pattern matching over a :class:`NodeStore`."""

    def __init__(self, store: NodeStore, indexes: IndexManager, use_indexes: bool = True):
        """``use_indexes=False`` selects the full-scan candidate source —
        the baseline the paper contrasts in Sec. 5.2 (ablation A1)."""
        self.store = store
        self.indexes = indexes
        self.use_indexes = use_indexes
        self.stats = MatcherStatistics()

    # ------------------------------------------------------------------
    # Candidate streams
    # ------------------------------------------------------------------
    def candidates(self, pnode: PatternNode) -> list[NodeLabel]:
        """Document-ordered labels that can bind ``pnode``."""
        predicate = pnode.predicate
        if self.use_indexes:
            labels = self._candidates_from_indexes(predicate)
            if labels is None:
                labels = self._candidates_from_scan(predicate)
                covered = True  # scan applied the full predicate already
            else:
                covered = _index_covers(predicate)
        else:
            labels = self._candidates_from_scan(predicate)
            covered = True
        if not covered:
            labels = [label for label in labels if self._residual_check(label, predicate)]
        self.stats.candidate_labels += len(labels)
        return labels

    def _candidates_from_indexes(self, predicate: Predicate) -> list[NodeLabel] | None:
        tag = predicate.tag_constraint()
        value = predicate.content_equality()
        if tag is not None and value is not None:
            return self.indexes.labels_for_tag_value(tag, value)
        if tag is not None:
            return self.indexes.labels_for_tag(tag)
        return None  # nothing indexable; caller falls back to a scan

    def _candidates_from_scan(self, predicate: Predicate) -> list[NodeLabel]:
        out: list[NodeLabel] = []
        symbols = self.store.meta.symbols
        for record in self.store.scan():
            self.stats.residual_checks += 1
            if predicate.matches(
                symbols.name(record.tag_sym), record.content, dict(record.attributes)
            ):
                out.append(NodeLabel(record.nid, record.start, record.end, record.level))
        return out

    def _residual_check(self, label: NodeLabel, predicate: Predicate) -> bool:
        record = self.store.record(label.nid)
        self.stats.residual_checks += 1
        return predicate.matches(
            self.store.meta.symbols.name(record.tag_sym),
            record.content,
            dict(record.attributes),
        )

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(
        self, pattern: PatternTree, root_candidates: list[NodeLabel] | None = None
    ) -> list[StoreMatch]:
        """All embeddings of ``pattern`` into the store, document order.

        ``root_candidates`` restricts the pattern root to the given
        label stream (must be start-sorted) instead of an index lookup —
        used when a previous operator already narrowed the roots, e.g.
        the physical groupby matching its pattern against the article
        witnesses of the preceding selection.
        """
        if root_candidates is None:
            root_candidates = self.candidates(pattern.root)
        tuples: list[dict[str, NodeLabel]] = [
            {pattern.root.label: label} for label in root_candidates
        ]
        for parent, child, axis in pattern.edges():
            if not tuples:
                break
            child_candidates = self.candidates(child)
            if not child_candidates:
                tuples = []
                break
            parent_stream = sorted(
                {t[parent.label] for t in tuples}, key=lambda label: label.start
            )
            grouped = structural_join_pairs_by_ancestor(parent_stream, child_candidates, axis)
            extended: list[dict[str, NodeLabel]] = []
            for partial in tuples:
                checkpoint()
                bound_parent = partial[parent.label]
                for descendant in grouped.get(bound_parent.nid, ()):
                    new_partial = dict(partial)
                    new_partial[child.label] = descendant
                    extended.append(new_partial)
            tuples = extended

        order = [node.label for node in pattern.nodes()]
        tuples.sort(key=lambda t: tuple(t[label].start for label in order))
        self.stats.witnesses += len(tuples)
        return [StoreMatch(bindings=t) for t in tuples]


class TreeMatcher:
    """Reference matcher over in-memory trees (semantics ground truth)."""

    def match_tree(self, pattern: PatternTree, root: XMLNode, tree_index: int = 0) -> list[TreeMatch]:
        """All embeddings of ``pattern`` anywhere inside the tree."""
        matches: list[TreeMatch] = []
        for node in root.iter():
            if self._node_matches(pattern.root, node):
                for bindings in self._extend(pattern.root, node):
                    matches.append(TreeMatch(bindings=bindings, tree_index=tree_index))
        return matches

    def match_collection(self, pattern: PatternTree, collection: Collection) -> list[TreeMatch]:
        """Embeddings into every tree of the collection, collection order."""
        matches: list[TreeMatch] = []
        for index, tree in enumerate(collection):
            matches.extend(self.match_tree(pattern, tree.root, index))
        return matches

    # ------------------------------------------------------------------
    @staticmethod
    def _node_matches(pnode: PatternNode, node: XMLNode) -> bool:
        return pnode.predicate.matches(node.tag, node.content, node.attributes)

    def _extend(self, pnode: PatternNode, node: XMLNode) -> list[dict[str, XMLNode]]:
        """Embeddings of the pattern subtree at ``pnode`` rooted at ``node``."""
        partials: list[dict[str, XMLNode]] = [{pnode.label: node}]
        for child_p in pnode.children:
            if child_p.axis is Axis.PC:
                pool = node.children
            else:
                pool = list(node.descendants())
            candidates = [c for c in pool if self._node_matches(child_p, c)]
            expansions: list[dict[str, XMLNode]] = []
            for candidate in candidates:
                expansions.extend(self._extend(child_p, candidate))
            if not expansions:
                return []
            partials = [
                {**partial, **expansion}
                for partial in partials
                for expansion in expansions
            ]
        return partials
