"""Pattern-tree matching against stored documents and in-memory trees.

Two matchers implement the same semantics at two levels:

* :class:`StoreMatcher` — the physical path of Sec. 5.2: per pattern
  node, obtain a candidate label stream (tag index, value index, or a
  filtered scan), then combine streams one pattern edge at a time with
  single-pass structural joins.  Bindings are node identifiers only; no
  data page is touched unless a residual predicate forces it.
* :class:`TreeMatcher` — the reference path over in-memory
  :class:`~repro.xmlmodel.node.XMLNode` trees, used by the logical TAX
  operators on intermediate collections and by tests as ground truth.

Both return witnesses in document order (of the binding tuple, compared
in pattern preorder), which downstream operators rely on for the
paper's order-preservation guarantees.
"""

from __future__ import annotations

from ..cancellation import checkpoint
from ..indexing.columnar import (
    EMPTY_STREAM,
    ColumnarTable,
    RowStream,
    columnar_statistics,
    np_view,
    numpy_or_none,
)
from ..indexing.labels import NodeLabel
from ..indexing.manager import IndexManager
from ..pattern.pattern import Axis, PatternNode, PatternTree
from ..storage.store import NodeStore
from ..xmlmodel.node import XMLNode
from ..xmlmodel.tree import Collection
from .predicates import AnyNode, Conjunction, ContentEquals, Predicate, TagEquals
from .structural_join import (
    join_statistics,
    staircase_join_rows,
    structural_join_pairs_by_ancestor,
)
from .witness import StoreMatch, TreeMatch

#: Module-level numpy gate — monkeypatched to None in tests to force
#: the pure-Python staircase path.
_np = numpy_or_none()


class MatcherStatistics:
    """Work counters for candidate generation and filtering."""

    __slots__ = ("candidate_labels", "residual_checks", "witnesses")

    def __init__(self):
        self.candidate_labels = 0
        self.residual_checks = 0
        self.witnesses = 0

    def reset(self) -> None:
        self.candidate_labels = 0
        self.residual_checks = 0
        self.witnesses = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "candidate_labels": self.candidate_labels,
            "residual_checks": self.residual_checks,
            "witnesses": self.witnesses,
        }


def _index_covers(predicate: Predicate) -> bool:
    """True when candidate streams from the indexes already guarantee the
    predicate, so no residual data check is needed."""
    if isinstance(predicate, (AnyNode, TagEquals, ContentEquals)):
        return True
    if isinstance(predicate, Conjunction):
        return all(isinstance(part, (TagEquals, ContentEquals)) for part in predicate.parts)
    return False


class StoreMatcher:
    """Index-assisted pattern matching over a :class:`NodeStore`."""

    def __init__(
        self,
        store: NodeStore,
        indexes: IndexManager,
        use_indexes: bool = True,
        columnar: ColumnarTable | None = None,
    ):
        """``use_indexes=False`` selects the full-scan candidate source —
        the baseline the paper contrasts in Sec. 5.2 (ablation A1).

        ``columnar`` installs a columnar node table for the current
        store generation; :meth:`match` then runs axis steps as
        staircase merges over its arrays, falling back to the object
        walk per match whenever the table cannot serve a candidate
        stream.
        """
        self.store = store
        self.indexes = indexes
        self.use_indexes = use_indexes
        self.columnar = columnar if use_indexes else None
        self.stats = MatcherStatistics()

    # ------------------------------------------------------------------
    # Candidate streams
    # ------------------------------------------------------------------
    def candidates(self, pnode: PatternNode) -> list[NodeLabel]:
        """Document-ordered labels that can bind ``pnode``."""
        predicate = pnode.predicate
        if self.use_indexes:
            labels = self._candidates_from_indexes(predicate)
            if labels is None:
                labels = self._candidates_from_scan(predicate)
                covered = True  # scan applied the full predicate already
            else:
                covered = _index_covers(predicate)
        else:
            labels = self._candidates_from_scan(predicate)
            covered = True
        if not covered:
            labels = [label for label in labels if self._residual_check(label, predicate)]
        self.stats.candidate_labels += len(labels)
        return labels

    def _candidates_from_indexes(self, predicate: Predicate) -> list[NodeLabel] | None:
        tag = predicate.tag_constraint()
        value = predicate.content_equality()
        if tag is not None and value is not None:
            return self.indexes.labels_for_tag_value(tag, value)
        if tag is not None:
            return self.indexes.labels_for_tag(tag)
        return None  # nothing indexable; caller falls back to a scan

    def _candidates_from_scan(self, predicate: Predicate) -> list[NodeLabel]:
        out: list[NodeLabel] = []
        symbols = self.store.meta.symbols
        for record in self.store.scan():
            self.stats.residual_checks += 1
            if predicate.matches(
                symbols.name(record.tag_sym), record.content, dict(record.attributes)
            ):
                out.append(NodeLabel(record.nid, record.start, record.end, record.level))
        return out

    def _residual_check(self, label: NodeLabel, predicate: Predicate) -> bool:
        record = self.store.record(label.nid)
        self.stats.residual_checks += 1
        return predicate.matches(
            self.store.meta.symbols.name(record.tag_sym),
            record.content,
            dict(record.attributes),
        )

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(
        self,
        pattern: PatternTree,
        root_candidates: list[NodeLabel] | None = None,
        doc_bounds: tuple[int, int] | None = None,
    ) -> list[StoreMatch]:
        """All embeddings of ``pattern`` into the store, document order.

        ``root_candidates`` restricts the pattern root to the given
        label stream (must be start-sorted) instead of an index lookup —
        used when a previous operator already narrowed the roots, e.g.
        the physical groupby matching its pattern against the article
        witnesses of the preceding selection.  ``doc_bounds`` further
        restricts root bindings to one document's ``(start, end)`` label
        region (the physical scan's per-document scoping).

        With a columnar table installed this runs the staircase path;
        otherwise (or when the table cannot serve a candidate stream,
        e.g. labels from an intermediate collection it has never seen)
        the per-label object walk below.
        """
        if self.columnar is not None:
            matches = self._match_columnar(pattern, root_candidates, doc_bounds)
            if matches is not None:
                columnar_statistics().scans += 1
                return matches
        columnar_statistics().fallbacks += 1
        if root_candidates is None:
            root_candidates = self.candidates(pattern.root)
        if doc_bounds is not None:
            lo, hi = doc_bounds
            root_candidates = [
                label
                for label in root_candidates
                if lo <= label.start and label.end <= hi
            ]
        tuples: list[dict[str, NodeLabel]] = [
            {pattern.root.label: label} for label in root_candidates
        ]
        for parent, child, axis in pattern.edges():
            if not tuples:
                break
            child_candidates = self.candidates(child)
            if not child_candidates:
                tuples = []
                break
            parent_stream = sorted(
                {t[parent.label] for t in tuples}, key=lambda label: label.start
            )
            grouped = structural_join_pairs_by_ancestor(parent_stream, child_candidates, axis)
            extended: list[dict[str, NodeLabel]] = []
            for partial in tuples:
                checkpoint()
                bound_parent = partial[parent.label]
                for descendant in grouped.get(bound_parent.nid, ()):
                    new_partial = dict(partial)
                    new_partial[child.label] = descendant
                    extended.append(new_partial)
            tuples = extended

        order = [node.label for node in pattern.nodes()]
        tuples.sort(key=lambda t: tuple(t[label].start for label in order))
        self.stats.witnesses += len(tuples)
        return [StoreMatch(bindings=t) for t in tuples]

    # ------------------------------------------------------------------
    # Columnar matching (the staircase hot path)
    # ------------------------------------------------------------------
    def _match_columnar(
        self,
        pattern: PatternTree,
        root_candidates: list[NodeLabel] | None,
        doc_bounds: tuple[int, int] | None,
    ) -> list[StoreMatch] | None:
        """Match over the columnar table; None signals fallback.

        Binding tuples are carried as parallel integer *row columns*
        (one column per pattern label) — no per-tuple dicts, no
        NodeLabel objects — until final witness materialization.  Each
        pattern edge is one staircase join of the distinct bound parent
        rows against the child's candidate stream.  With numpy present
        the whole pipeline (window location, tuple expansion, level
        filter, final sort) runs as vectorized kernels; otherwise the
        pure-Python staircase merge below.
        """
        if _np is not None:
            return self._match_columnar_np(pattern, root_candidates, doc_bounds)
        return self._match_columnar_rows(pattern, root_candidates, doc_bounds)

    def _columnar_root_stream(
        self,
        pattern: PatternTree,
        root_candidates: list[NodeLabel] | None,
        doc_bounds: tuple[int, int] | None,
    ) -> RowStream | None:
        """The root candidate stream, or None to signal fallback."""
        table = self.columnar
        if root_candidates is not None:
            rows = table.rows_for_labels(root_candidates)
            if rows is None:
                return None  # foreign labels: the object walk handles them
            root_stream = table.stream_for_rows(rows)
            self.stats.candidate_labels += root_stream.size
        else:
            root_stream = self._columnar_candidates(table, pattern.root)
            if root_stream is None:
                return None
        if doc_bounds is not None:
            root_stream = table.restrict(root_stream, doc_bounds[0], doc_bounds[1])
        return root_stream

    def _match_columnar_np(
        self,
        pattern: PatternTree,
        root_candidates: list[NodeLabel] | None,
        doc_bounds: tuple[int, int] | None,
    ) -> list[StoreMatch] | None:
        """Vectorized staircase matching (numpy kernels).

        Per edge, windows for *all* distinct parents are located with
        two batched ``searchsorted`` calls, and binding tuples are
        expanded window-by-window with ``repeat``/``arange`` index
        arithmetic — no Python-level loop over candidates or tuples.
        A nesting ancestor stream (laminar regions overlapping) is
        handed to the pure staircase path, whose stack merge is exact.
        """
        np = _np
        table = self.columnar
        root_stream = self._columnar_root_stream(pattern, root_candidates, doc_bounds)
        if root_stream is None:
            return None
        starts = np_view(table.starts)
        ends = np_view(table.ends)
        levels = np_view(table.levels)

        order = [node.label for node in pattern.nodes()]
        empty = np.empty(0, dtype=np.dtype("l"))
        cols: dict[str, object] = {pattern.root.label: root_stream.np_arrays()[0]}
        join_stats = join_statistics()
        for parent, child, axis in pattern.edges():
            checkpoint()
            parent_col = cols[parent.label]
            if parent_col.size == 0:
                break
            child_stream = self._columnar_candidates(table, child)
            if child_stream is None:
                return None
            if not child_stream.size:
                cols = {key: empty for key in cols}
                cols[child.label] = empty
                break
            uniq = np.unique(parent_col)
            a_starts = starts[uniq]
            a_ends = ends[uniq]
            if uniq.size > 1 and bool(
                (a_starts[1:] < np.maximum.accumulate(a_ends)[:-1]).any()
            ):
                # Nested parents: the stack merge handles this exactly.
                return self._match_columnar_rows(pattern, root_candidates, doc_bounds)
            d_rows, d_starts, _d_ends, d_levels = child_stream.np_arrays()
            join_stats.joins += 1
            join_stats.candidates_consumed += int(uniq.size) + child_stream.size
            columnar_statistics().window_scans += 1
            # Each parent's proper descendants are one contiguous start
            # run (laminar regions): two batched bisects per edge.
            lo = np.searchsorted(d_starts, a_starts, side="right")
            hi = np.searchsorted(d_starts, a_ends, side="left")
            t_index = np.searchsorted(uniq, parent_col)
            t_lo = lo[t_index]
            t_counts = hi[t_index] - t_lo
            total = int(t_counts.sum())
            if total == 0:
                cols = {key: empty for key in cols}
                cols[child.label] = empty
                break
            # Expand tuple i into its window of t_counts[i] children.
            rep = np.repeat(np.arange(parent_col.size), t_counts)
            prefix = np.cumsum(t_counts) - t_counts
            positions = (
                np.repeat(t_lo, t_counts)
                + np.arange(total)
                - np.repeat(prefix, t_counts)
            )
            child_col = d_rows[positions]
            if axis is Axis.PC:
                want = np.repeat(levels[parent_col] + 1, t_counts)
                mask = d_levels[positions] == want
                rep = rep[mask]
                child_col = child_col[mask]
            join_stats.pairs_emitted += int(child_col.size)
            cols = {key: col[rep] for key, col in cols.items()}
            cols[child.label] = child_col

        if any(label not in cols or cols[label].size == 0 for label in order):
            return []

        columns = [cols[label] for label in order]
        if len(columns) > 1:
            # Row order equals start order, so lexsort over the integer
            # columns in pattern preorder is the document-order sort.
            perm = np.lexsort(tuple(reversed(columns)))
            columns = [column[perm] for column in columns]
        # Materialize per column: label lookups dedupe through unique
        # (a binding column repeats each row once per sibling tuple),
        # and dict(zip(...)) builds each bindings dict in one C call.
        label_of_row = table.label_of_row
        label_columns = []
        for column in columns:
            uniq_rows, inverse = np.unique(column, return_inverse=True)
            uniq_labels = [label_of_row(row) for row in uniq_rows.tolist()]
            label_columns.append([uniq_labels[i] for i in inverse.tolist()])
        matches = [
            StoreMatch(bindings=dict(zip(order, labels)))
            for labels in zip(*label_columns)
        ]
        self.stats.witnesses += len(matches)
        return matches

    def _match_columnar_rows(
        self,
        pattern: PatternTree,
        root_candidates: list[NodeLabel] | None,
        doc_bounds: tuple[int, int] | None,
    ) -> list[StoreMatch] | None:
        """The pure-Python columnar path (no numpy needed)."""
        table = self.columnar
        root_stream = self._columnar_root_stream(pattern, root_candidates, doc_bounds)
        if root_stream is None:
            return None

        order = [node.label for node in pattern.nodes()]
        cols: dict[str, list[int]] = {pattern.root.label: root_stream.row_list()}
        for parent, child, axis in pattern.edges():
            checkpoint()
            parent_col = cols[parent.label]
            if not parent_col:
                break
            child_stream = self._columnar_candidates(table, child)
            if child_stream is None:
                return None
            if not child_stream.size:
                for label in cols:
                    cols[label] = []
                cols[child.label] = []
                break
            parent_rows = sorted(set(parent_col))
            grouped = staircase_join_rows(
                table.stream_for_rows(parent_rows), child_stream, axis
            )
            keys = list(cols)
            new_cols: dict[str, list[int]] = {key: [] for key in keys}
            child_col: list[int] = []
            get = grouped.get
            for i, parent_row in enumerate(parent_col):
                descendants = get(parent_row)
                if not descendants:
                    continue
                if len(descendants) == 1:
                    for key in keys:
                        new_cols[key].append(cols[key][i])
                else:
                    for key in keys:
                        new_cols[key].extend([cols[key][i]] * len(descendants))
                child_col.extend(descendants)
            new_cols[child.label] = child_col
            cols = new_cols

        if any(label not in cols or not cols[label] for label in order):
            self.stats.witnesses += 0
            return []

        # Row order equals start order, so sorting plain integer tuples
        # in pattern preorder is exactly the document-order sort.
        tuples = sorted(zip(*(cols[label] for label in order)))
        label_of_row = table.label_of_row
        matches = [
            StoreMatch(
                bindings={
                    label: label_of_row(row) for label, row in zip(order, rows)
                }
            )
            for rows in tuples
        ]
        self.stats.witnesses += len(matches)
        return matches

    def _columnar_candidates(
        self, table: ColumnarTable, pnode: PatternNode
    ) -> RowStream | None:
        """The candidate row stream for a pattern node, or None when the
        columnar path cannot serve it and the match must fall back.

        Tag-only predicates come straight from the tag directory (a
        zero-copy window); anything else routes through the object-path
        candidate machinery (value index, filtered scans, residual
        checks) and converts the resulting labels to rows.
        """
        predicate = pnode.predicate
        tag = predicate.tag_constraint()
        value = predicate.content_equality()
        if _index_covers(predicate):
            if tag is not None and value is None:
                sym = self.store.meta.symbols.lookup(tag)
                stream = table.stream_for_tag(sym) if sym is not None else EMPTY_STREAM
                self.stats.candidate_labels += stream.size
                return stream
            if tag is None and value is None:  # wildcard: every node
                stream = table.stream_all()
                self.stats.candidate_labels += stream.size
                return stream
        labels = self.candidates(pnode)  # counts its own statistics
        rows = table.rows_for_labels(labels)
        if rows is None:
            return None
        return table.stream_for_rows(rows)


class TreeMatcher:
    """Reference matcher over in-memory trees (semantics ground truth)."""

    def match_tree(self, pattern: PatternTree, root: XMLNode, tree_index: int = 0) -> list[TreeMatch]:
        """All embeddings of ``pattern`` anywhere inside the tree."""
        matches: list[TreeMatch] = []
        for node in root.iter():
            if self._node_matches(pattern.root, node):
                for bindings in self._extend(pattern.root, node):
                    matches.append(TreeMatch(bindings=bindings, tree_index=tree_index))
        return matches

    def match_collection(self, pattern: PatternTree, collection: Collection) -> list[TreeMatch]:
        """Embeddings into every tree of the collection, collection order."""
        matches: list[TreeMatch] = []
        for index, tree in enumerate(collection):
            matches.extend(self.match_tree(pattern, tree.root, index))
        return matches

    # ------------------------------------------------------------------
    @staticmethod
    def _node_matches(pnode: PatternNode, node: XMLNode) -> bool:
        return pnode.predicate.matches(node.tag, node.content, node.attributes)

    def _extend(self, pnode: PatternNode, node: XMLNode) -> list[dict[str, XMLNode]]:
        """Embeddings of the pattern subtree at ``pnode`` rooted at ``node``."""
        partials: list[dict[str, XMLNode]] = [{pnode.label: node}]
        for child_p in pnode.children:
            if child_p.axis is Axis.PC:
                pool = node.children
            else:
                pool = list(node.descendants())
            candidates = [c for c in pool if self._node_matches(child_p, c)]
            expansions: list[dict[str, XMLNode]] = []
            for candidate in candidates:
                expansions.extend(self._extend(child_p, candidate))
            if not expansions:
                return []
            partials = [
                {**partial, **expansion}
                for partial in partials
                for expansion in expansions
            ]
        return partials
