"""Single-pass stack-based structural containment joins.

This is the join primitive of Al-Khalifa et al. (ICDE 2002), which the
paper's Sec. 5.2 relies on: given two candidate streams sorted by
``start`` (document order), produce all (ancestor, descendant) — or
(parent, child) — pairs in time linear in input plus output.

The invariant that makes the stack work: because tree regions never
partially overlap, the stack always holds a chain of nested intervals,
each containing the next.  When a descendant candidate arrives, every
stack entry whose region is still open contains it.
"""

from __future__ import annotations

from ..indexing.labels import NodeLabel
from .pattern import Axis

__all__ = [
    "structural_join",
    "structural_join_pairs_by_ancestor",
    "brute_force_join",
    "join_statistics",
    "JoinStatistics",
]


class JoinStatistics:
    """Counters for structural-join work (used by benchmarks)."""

    __slots__ = ("joins", "pairs_emitted", "candidates_consumed")

    def __init__(self):
        self.joins = 0
        self.pairs_emitted = 0
        self.candidates_consumed = 0

    def reset(self) -> None:
        self.joins = 0
        self.pairs_emitted = 0
        self.candidates_consumed = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "join_runs": self.joins,
            "join_pairs": self.pairs_emitted,
            "join_candidates": self.candidates_consumed,
        }


_GLOBAL_STATS = JoinStatistics()


def join_statistics() -> JoinStatistics:
    """The module-level statistics object (reset per measured run)."""
    return _GLOBAL_STATS


def structural_join(
    ancestors: list[NodeLabel],
    descendants: list[NodeLabel],
    axis: Axis,
) -> list[tuple[NodeLabel, NodeLabel]]:
    """All pairs ``(a, d)`` with ``a`` containing ``d`` under ``axis``.

    Both inputs must be sorted by ``start``.  Output is sorted by the
    descendant's ``start`` (document order of the lower node), with the
    containing ancestors of one descendant emitted outermost-first.
    """
    stats = _GLOBAL_STATS
    stats.joins += 1
    stats.candidates_consumed += len(ancestors) + len(descendants)

    output: list[tuple[NodeLabel, NodeLabel]] = []
    stack: list[NodeLabel] = []
    a_index = 0
    n_ancestors = len(ancestors)
    parent_child = axis is Axis.PC

    for descendant in descendants:
        # Admit every ancestor candidate that starts before this
        # descendant; keep only those whose region is still open.
        while a_index < n_ancestors and ancestors[a_index].start < descendant.start:
            candidate = ancestors[a_index]
            a_index += 1
            if candidate.end < descendant.start:
                continue  # already closed; can never contain this or later
            while stack and stack[-1].end < candidate.start:
                stack.pop()
            stack.append(candidate)
        # Retire stack entries that closed before this descendant opened.
        while stack and stack[-1].end < descendant.start:
            stack.pop()
        # Every remaining entry contains the descendant (nesting invariant).
        for ancestor in stack:
            if descendant.end > ancestor.end:
                # The "descendant" is not actually inside (e.g. it IS an
                # ancestor of stack entries in a self-join); skip.
                continue
            if ancestor.start == descendant.start:
                continue  # same node in a self-join
            if parent_child and ancestor.level + 1 != descendant.level:
                continue
            output.append((ancestor, descendant))
            stats.pairs_emitted += 1
    return output


def structural_join_pairs_by_ancestor(
    ancestors: list[NodeLabel],
    descendants: list[NodeLabel],
    axis: Axis,
) -> dict[int, list[NodeLabel]]:
    """Group join results by ancestor nid.

    The matcher extends partial binding tuples parent-side, so this
    grouping is its natural consumption shape.  Descendant lists retain
    document order because the underlying join emits descendants in
    document order.
    """
    grouped: dict[int, list[NodeLabel]] = {}
    for ancestor, descendant in structural_join(ancestors, descendants, axis):
        grouped.setdefault(ancestor.nid, []).append(descendant)
    return grouped


def brute_force_join(
    ancestors: list[NodeLabel],
    descendants: list[NodeLabel],
    axis: Axis,
) -> list[tuple[NodeLabel, NodeLabel]]:
    """Quadratic reference implementation (tests compare against it)."""
    output = []
    for descendant in descendants:
        for ancestor in ancestors:
            if not ancestor.contains(descendant):
                continue
            if axis is Axis.PC and ancestor.level + 1 != descendant.level:
                continue
            output.append((ancestor, descendant))
    return output
