"""Single-pass stack-based structural containment joins.

This is the join primitive of Al-Khalifa et al. (ICDE 2002), which the
paper's Sec. 5.2 relies on: given two candidate streams sorted by
``start`` (document order), produce all (ancestor, descendant) — or
(parent, child) — pairs in time linear in input plus output.

The invariant that makes the stack work: because tree regions never
partially overlap, the stack always holds a chain of nested intervals,
each containing the next.  When a descendant candidate arrives, every
stack entry whose region is still open contains it.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from ..indexing.columnar import RowStream, columnar_statistics
from ..indexing.labels import NodeLabel
from .pattern import Axis

__all__ = [
    "structural_join",
    "structural_join_pairs_by_ancestor",
    "staircase_join_rows",
    "brute_force_join",
    "join_statistics",
    "JoinStatistics",
]


class JoinStatistics:
    """Counters for structural-join work (used by benchmarks)."""

    __slots__ = ("joins", "pairs_emitted", "candidates_consumed")

    def __init__(self):
        self.joins = 0
        self.pairs_emitted = 0
        self.candidates_consumed = 0

    def reset(self) -> None:
        self.joins = 0
        self.pairs_emitted = 0
        self.candidates_consumed = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "join_runs": self.joins,
            "join_pairs": self.pairs_emitted,
            "join_candidates": self.candidates_consumed,
        }


_GLOBAL_STATS = JoinStatistics()


def join_statistics() -> JoinStatistics:
    """The module-level statistics object (reset per measured run)."""
    return _GLOBAL_STATS


def structural_join(
    ancestors: list[NodeLabel],
    descendants: list[NodeLabel],
    axis: Axis,
) -> list[tuple[NodeLabel, NodeLabel]]:
    """All pairs ``(a, d)`` with ``a`` containing ``d`` under ``axis``.

    Both inputs must be sorted by ``start``.  Output is sorted by the
    descendant's ``start`` (document order of the lower node), with the
    containing ancestors of one descendant emitted outermost-first.
    """
    stats = _GLOBAL_STATS
    stats.joins += 1
    stats.candidates_consumed += len(ancestors) + len(descendants)

    output: list[tuple[NodeLabel, NodeLabel]] = []
    stack: list[NodeLabel] = []
    a_index = 0
    n_ancestors = len(ancestors)
    parent_child = axis is Axis.PC

    for descendant in descendants:
        # Admit every ancestor candidate that starts before this
        # descendant; keep only those whose region is still open.
        while a_index < n_ancestors and ancestors[a_index].start < descendant.start:
            candidate = ancestors[a_index]
            a_index += 1
            if candidate.end < descendant.start:
                continue  # already closed; can never contain this or later
            while stack and stack[-1].end < candidate.start:
                stack.pop()
            stack.append(candidate)
        # Retire stack entries that closed before this descendant opened.
        while stack and stack[-1].end < descendant.start:
            stack.pop()
        # Every remaining entry contains the descendant (nesting invariant).
        for ancestor in stack:
            if descendant.end > ancestor.end:
                # The "descendant" is not actually inside (e.g. it IS an
                # ancestor of stack entries in a self-join); skip.
                continue
            if ancestor.start == descendant.start:
                continue  # same node in a self-join
            if parent_child and ancestor.level + 1 != descendant.level:
                continue
            output.append((ancestor, descendant))
            stats.pairs_emitted += 1
    return output


def structural_join_pairs_by_ancestor(
    ancestors: list[NodeLabel],
    descendants: list[NodeLabel],
    axis: Axis,
) -> dict[int, list[NodeLabel]]:
    """Group join results by ancestor nid.

    The matcher extends partial binding tuples parent-side, so this
    grouping is its natural consumption shape.  Descendant lists retain
    document order because the underlying join emits descendants in
    document order.
    """
    grouped: dict[int, list[NodeLabel]] = {}
    for ancestor, descendant in structural_join(ancestors, descendants, axis):
        grouped.setdefault(ancestor.nid, []).append(descendant)
    return grouped


def staircase_join_rows(
    ancestors: RowStream,
    descendants: RowStream,
    axis: Axis,
) -> dict[int, list[int]]:
    """Columnar structural join: ancestor row -> descendant rows.

    Both streams must be ascending by ``start``.  When the ancestor
    stream is non-nesting (the overwhelmingly common case — pattern
    candidates of one tag rarely contain each other), each ancestor's
    descendants are one contiguous ``start`` run in the descendant
    stream, located with two bisects and emitted as a slice: the
    staircase window scan.  A nesting ancestor stream falls back to the
    stack-based staircase merge, which handles arbitrary nesting in one
    pass.

    Semantics match :func:`structural_join` exactly: proper containment
    only (a node never pairs with itself in a self-join), and PC
    additionally requires ``ancestor.level + 1 == descendant.level``.
    """
    stats = _GLOBAL_STATS
    stats.joins += 1
    stats.candidates_consumed += ancestors.size + descendants.size

    a_rows = ancestors.rows
    a_starts = ancestors.starts
    a_ends = ancestors.ends
    a_levels = ancestors.levels
    d_rows = descendants.rows
    d_starts = descendants.starts
    d_levels = descendants.levels
    d_hi = descendants.hi
    parent_child = axis is Axis.PC

    grouped: dict[int, list[int]] = {}
    pairs = 0
    cursor = descendants.lo  # windows advance left-to-right, never overlap
    previous_end = -1
    nested = False
    for i in range(ancestors.lo, ancestors.hi):
        a_start = a_starts[i]
        if a_start < previous_end:
            nested = True
            break
        a_end = a_ends[i]
        previous_end = a_end
        # Proper descendants are exactly the starts strictly inside
        # (a_start, a_end): regions are laminar, so no end check needed.
        lo = bisect_right(d_starts, a_start, cursor, d_hi)
        hi = bisect_left(d_starts, a_end, lo, d_hi)
        cursor = hi
        if lo >= hi:
            continue
        if parent_child:
            want = a_levels[i] + 1
            out = [d_rows[p] for p in range(lo, hi) if d_levels[p] == want]
            if not out:
                continue
        else:
            out = list(d_rows[lo:hi])
        grouped[a_rows[i]] = out
        pairs += len(out)

    if nested:
        columnar_statistics().merge_joins += 1
        grouped, pairs = _staircase_merge_rows(ancestors, descendants, parent_child)
    else:
        columnar_statistics().window_scans += 1
    stats.pairs_emitted += pairs
    return grouped


def _staircase_merge_rows(
    ancestors: RowStream, descendants: RowStream, parent_child: bool
) -> tuple[dict[int, list[int]], int]:
    """Stack-based merge over row streams — the nesting-safe path.

    Mirrors :func:`structural_join` step for step, on flat arrays.
    """
    a_rows = ancestors.rows
    a_starts = ancestors.starts
    a_ends = ancestors.ends
    a_levels = ancestors.levels
    d_rows = descendants.rows
    d_starts = descendants.starts
    d_ends = descendants.ends
    d_levels = descendants.levels

    grouped: dict[int, list[int]] = {}
    pairs = 0
    # Stack of open ancestors as parallel lists (innermost last).
    s_rows: list[int] = []
    s_starts: list[int] = []
    s_ends: list[int] = []
    s_levels: list[int] = []
    a_index = ancestors.lo
    a_hi = ancestors.hi
    for p in range(descendants.lo, descendants.hi):
        d_start = d_starts[p]
        d_end = d_ends[p]
        while a_index < a_hi and a_starts[a_index] < d_start:
            c_start = a_starts[a_index]
            c_end = a_ends[a_index]
            if c_end < d_start:
                a_index += 1
                continue  # already closed; can never contain this or later
            while s_ends and s_ends[-1] < c_start:
                s_rows.pop(), s_starts.pop(), s_ends.pop(), s_levels.pop()
            s_rows.append(a_rows[a_index])
            s_starts.append(c_start)
            s_ends.append(c_end)
            s_levels.append(a_levels[a_index])
            a_index += 1
        while s_ends and s_ends[-1] < d_start:
            s_rows.pop(), s_starts.pop(), s_ends.pop(), s_levels.pop()
        if not s_ends:
            continue
        d_level = d_levels[p] if parent_child else 0
        d_row = d_rows[p]
        for k in range(len(s_ends)):
            if d_end > s_ends[k]:
                continue  # not actually inside (self-join artifacts)
            if s_starts[k] == d_start:
                continue  # same node in a self-join
            if parent_child and s_levels[k] + 1 != d_level:
                continue
            grouped.setdefault(s_rows[k], []).append(d_row)
            pairs += 1
    return grouped, pairs


def brute_force_join(
    ancestors: list[NodeLabel],
    descendants: list[NodeLabel],
    axis: Axis,
) -> list[tuple[NodeLabel, NodeLabel]]:
    """Quadratic reference implementation (tests compare against it)."""
    output = []
    for descendant in descendants:
        for ancestor in ancestors:
            if not ancestor.contains(descendant):
                continue
            if axis is Axis.PC and ancestor.level + 1 != descendant.level:
                continue
            output.append((ancestor, descendant))
    return output
