"""Witness trees: the result of embedding a pattern into data.

"Such a returned structure, we call a witness tree, since it bears
witness to the success of the pattern match on the input tree of
interest" (Sec. 2).  A witness is one *binding tuple*: pattern label ->
matched node.  The set of witnesses for a pattern is homogeneous — every
tuple binds the same labels — which is what lets TAX operators address
heterogeneous data by label.

Two binding currencies exist:

* :class:`TreeMatch` binds labels to in-memory
  :class:`~repro.xmlmodel.node.XMLNode` objects — used when operators
  run over intermediate (constructed) collections;
* :class:`StoreMatch` binds labels to
  :class:`~repro.indexing.labels.NodeLabel` identifiers — the
  identifier-only processing of Sec. 5.3, used by the physical engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..indexing.labels import NodeLabel
from ..xmlmodel.node import XMLNode


@dataclass
class TreeMatch:
    """One embedding into an in-memory tree.

    ``tree_index`` records which tree of the input collection the match
    embedded into — the *source tree* bookkeeping the groupby operator
    needs.
    """

    bindings: dict[str, XMLNode]
    tree_index: int

    def node(self, label: str) -> XMLNode:
        return self.bindings[label]

    def labels(self) -> list[str]:
        return list(self.bindings)


@dataclass(slots=True)
class StoreMatch:
    """One embedding into the stored database, by identifiers only.

    ``slots=True`` matters here: the columnar matcher materializes one
    instance per witness, so construction cost is on the hot path.
    """

    bindings: dict[str, NodeLabel]
    doc_id: int = 0
    # Values populated late (Sec. 5.3): label -> content string.
    values: dict[str, str | None] = field(default_factory=dict)

    def label_of(self, label: str) -> NodeLabel:
        return self.bindings[label]

    def nid(self, label: str) -> int:
        return self.bindings[label].nid

    def sort_key(self, pattern_labels: list[str]) -> tuple[int, ...]:
        """Document-order key over the bound nodes, in pattern preorder."""
        return tuple(self.bindings[label].start for label in pattern_labels)
