"""Node predicates attached to pattern-tree nodes.

A pattern tree (Fig. 1 of the paper) annotates each node with a
conjunction of conditions such as ``$1.tag = article`` or
``$2.content = "*Transaction*"``.  This module is that predicate
language.  Every predicate answers three questions:

* :meth:`~Predicate.matches` — does a node with the given tag, content,
  and attributes satisfy it?
* :meth:`~Predicate.tag_constraint` — the single tag the predicate pins,
  if any (drives tag-index candidate streams);
* :meth:`~Predicate.content_equality` — the exact content it pins, if
  any (drives value-index candidate streams).

Predicates are immutable and hashable; two pattern nodes are considered
equivalent in the rewrite's tree-subset test when their canonical
predicate forms are equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import PatternError


class Predicate:
    """Base class: a condition on one node."""

    def matches(self, tag: str, content: str | None, attributes: Mapping[str, str]) -> bool:
        raise NotImplementedError

    def tag_constraint(self) -> str | None:
        """The tag this predicate requires, when it requires exactly one."""
        return None

    def content_equality(self) -> str | None:
        """The exact content value required, when there is one."""
        return None

    def canonical(self) -> tuple:
        """Hashable canonical form, used for predicate equivalence."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Predicate) and self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.describe()}>"


@dataclass(frozen=True, eq=False)
class AnyNode(Predicate):
    """Matches every node (an unconstrained pattern node)."""

    def matches(self, tag, content, attributes) -> bool:
        return True

    def canonical(self) -> tuple:
        return ("any",)

    def describe(self) -> str:
        return "true"


@dataclass(frozen=True, eq=False)
class TagEquals(Predicate):
    """``$i.tag = <tag>``"""

    tag: str

    def matches(self, tag, content, attributes) -> bool:
        return tag == self.tag

    def tag_constraint(self) -> str | None:
        return self.tag

    def canonical(self) -> tuple:
        return ("tag", self.tag)

    def describe(self) -> str:
        return f"tag = {self.tag}"


@dataclass(frozen=True, eq=False)
class ContentEquals(Predicate):
    """``$i.content = <value>`` (exact match)."""

    value: str

    def matches(self, tag, content, attributes) -> bool:
        return content == self.value

    def content_equality(self) -> str | None:
        return self.value

    def canonical(self) -> tuple:
        return ("content-eq", self.value)

    def describe(self) -> str:
        return f'content = "{self.value}"'


@dataclass(frozen=True, eq=False)
class ContentWildcard(Predicate):
    """``$i.content = "*Transaction*"`` — glob with ``*`` wildcards only.

    The paper's Fig. 1 uses the ``*Transaction*`` form; we support ``*``
    anywhere in the pattern.
    """

    pattern: str

    def matches(self, tag, content, attributes) -> bool:
        if content is None:
            return False
        return _glob_match(self.pattern, content)

    def content_equality(self) -> str | None:
        return self.pattern if "*" not in self.pattern else None

    def canonical(self) -> tuple:
        return ("content-glob", self.pattern)

    def describe(self) -> str:
        return f'content ~ "{self.pattern}"'


@dataclass(frozen=True, eq=False)
class ContentCompare(Predicate):
    """``$i.content <op> <value>`` with ``op`` in <, <=, >, >=, !=.

    Comparison is numeric when both sides parse as numbers, else
    lexicographic — the pragmatic semantics untyped XML engines used.
    """

    op: str
    value: str

    _OPS = ("<", "<=", ">", ">=", "!=")

    def __post_init__(self):
        if self.op not in self._OPS:
            raise PatternError(f"unsupported comparison operator {self.op!r}")

    def matches(self, tag, content, attributes) -> bool:
        if content is None:
            return False
        left, right = _coerce_pair(content, self.value)
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        if self.op == ">=":
            return left >= right
        return left != right

    def canonical(self) -> tuple:
        return ("content-cmp", self.op, self.value)

    def describe(self) -> str:
        return f'content {self.op} "{self.value}"'


@dataclass(frozen=True, eq=False)
class AttributeEquals(Predicate):
    """``$i.<attr> = <value>`` on an attribute."""

    name: str
    value: str

    def matches(self, tag, content, attributes) -> bool:
        return attributes.get(self.name) == self.value

    def canonical(self) -> tuple:
        return ("attr-eq", self.name, self.value)

    def describe(self) -> str:
        return f'@{self.name} = "{self.value}"'


class Conjunction(Predicate):
    """``p1 & p2 & ...`` — the conjunction pattern nodes usually carry."""

    __slots__ = ("parts",)

    def __init__(self, parts: list[Predicate] | tuple[Predicate, ...]):
        flattened: list[Predicate] = []
        for part in parts:
            if isinstance(part, Conjunction):
                flattened.extend(part.parts)
            elif isinstance(part, AnyNode):
                continue
            else:
                flattened.append(part)
        self.parts: tuple[Predicate, ...] = tuple(flattened)

    def matches(self, tag, content, attributes) -> bool:
        return all(part.matches(tag, content, attributes) for part in self.parts)

    def tag_constraint(self) -> str | None:
        tags = {part.tag_constraint() for part in self.parts} - {None}
        if len(tags) == 1:
            return tags.pop()
        return None

    def content_equality(self) -> str | None:
        values = {part.content_equality() for part in self.parts} - {None}
        if len(values) == 1:
            return values.pop()
        return None

    def canonical(self) -> tuple:
        return ("and", tuple(sorted(part.canonical() for part in self.parts)))

    def describe(self) -> str:
        if not self.parts:
            return "true"
        return " & ".join(part.describe() for part in self.parts)


def conjoin(*parts: Predicate) -> Predicate:
    """Build the conjunction of ``parts``, simplifying trivial cases."""
    conjunction = Conjunction(list(parts))
    if not conjunction.parts:
        return AnyNode()
    if len(conjunction.parts) == 1:
        return conjunction.parts[0]
    return conjunction


def tag(name: str) -> Predicate:
    """Shorthand used across tests: ``tag("article")``."""
    return TagEquals(name)


def tag_content(name: str, value: str) -> Predicate:
    """Shorthand: tag + exact content conjunction."""
    return conjoin(TagEquals(name), ContentEquals(value))


def _glob_match(pattern: str, text: str) -> bool:
    """Anchored glob matching with ``*`` only (no regex import needed)."""
    pieces = pattern.split("*")
    if len(pieces) == 1:
        return text == pattern
    head, *middle, tail = pieces
    if head and not text.startswith(head):
        return False
    if tail and not text.endswith(tail):
        return False
    position = len(head)
    limit = len(text) - len(tail)
    for piece in middle:
        if not piece:
            continue
        found = text.find(piece, position, limit)
        if found < 0:
            return False
        position = found + len(piece)
    return position <= limit


def _coerce_pair(left: str, right: str):
    """Numeric pair when both parse as floats, else the strings."""
    try:
        return float(left), float(right)
    except ValueError:
        return left, right
