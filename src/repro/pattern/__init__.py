"""Pattern trees, predicates, witness trees, and matching (S5/S6)."""

from .matcher import MatcherStatistics, StoreMatcher, TreeMatcher
from .pattern import Axis, PatternNode, PatternTree, pcify
from .predicates import (
    AnyNode,
    AttributeEquals,
    Conjunction,
    ContentCompare,
    ContentEquals,
    ContentWildcard,
    Predicate,
    TagEquals,
    conjoin,
    tag,
    tag_content,
)
from .structural_join import (
    brute_force_join,
    join_statistics,
    structural_join,
    structural_join_pairs_by_ancestor,
)
from .witness import StoreMatch, TreeMatch

__all__ = [
    "MatcherStatistics",
    "StoreMatcher",
    "TreeMatcher",
    "Axis",
    "PatternNode",
    "PatternTree",
    "pcify",
    "AnyNode",
    "AttributeEquals",
    "Conjunction",
    "ContentCompare",
    "ContentEquals",
    "ContentWildcard",
    "Predicate",
    "TagEquals",
    "conjoin",
    "tag",
    "tag_content",
    "brute_force_join",
    "join_statistics",
    "structural_join",
    "structural_join_pairs_by_ancestor",
    "StoreMatch",
    "TreeMatch",
]
