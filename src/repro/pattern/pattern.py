"""Pattern trees — the variable-binding device of TAX (Sec. 2).

A pattern tree specifies node predicates and structural relationships
(parent-child ``pc`` or ancestor-descendant ``ad``) between the nodes to
bind.  Matching a pattern against data yields homogeneous *witness
trees*: one binding tuple per embedding.  "A single pattern tree can
bind as many variables as there are nodes in the pattern tree", which is
what lets multiple FOR clauses fold into one pattern.

This module also implements the *tree subset* test of the rewrite's
Phase 1 (Sec. 4.1): pattern :math:`(V_1, E_1)` is a subset of
:math:`(V_2, E_2)` iff :math:`V_1 \\subseteq V_2` and
:math:`E_1 \\subseteq E_2^*` — the transitive closure — where an edge
derived by composing two or more base edges carries an ``ad`` mark, and
``pc ⊆ ad`` but **not** ``ad ⊆ pc`` (the paper's footnote 6).
"""

from __future__ import annotations

from enum import Enum
from typing import Iterator

from ..errors import PatternError
from .predicates import AnyNode, Predicate, conjoin


class Axis(str, Enum):
    """Edge kind of a pattern tree."""

    PC = "pc"  # parent-child (immediate containment)
    AD = "ad"  # ancestor-descendant (containment)

    def satisfied_by_composition(self, other: "Axis") -> bool:
        """Whether an ``other``-marked closure edge can serve as this edge.

        A ``pc`` requirement is satisfied only by a base ``pc`` edge; an
        ``ad`` requirement is satisfied by anything (pc ⊆ ad).
        """
        if self is Axis.AD:
            return True
        return other is Axis.PC


class PatternNode:
    """One node of a pattern tree."""

    __slots__ = ("label", "predicate", "parent", "axis", "children")

    def __init__(self, label: str, predicate: Predicate | None = None):
        self.label = label
        self.predicate: Predicate = predicate if predicate is not None else AnyNode()
        self.parent: PatternNode | None = None
        self.axis: Axis | None = None  # axis of the incoming edge
        self.children: list[PatternNode] = []

    def add_child(self, child: "PatternNode", axis: Axis = Axis.PC) -> "PatternNode":
        child.parent = self
        child.axis = axis
        self.children.append(child)
        return child

    def add(self, label: str, predicate: Predicate | None = None, axis: Axis = Axis.PC) -> "PatternNode":
        """Builder-style child creation, returning the new child."""
        return self.add_child(PatternNode(label, predicate), axis)

    def strengthen(self, extra: Predicate) -> None:
        """Conjoin another condition onto this node's predicate."""
        self.predicate = conjoin(self.predicate, extra)

    def iter(self) -> Iterator["PatternNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PatternNode {self.label} [{self.predicate.describe()}]>"


class PatternTree:
    """A rooted pattern with labelled nodes and pc/ad edges."""

    def __init__(self, root: PatternNode):
        self.root = root
        self._validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, root_label: str, root_predicate: Predicate | None = None) -> tuple["PatternNode", "_Builder"]:
        """Start a fluent build; finish with ``builder.done()``.

        >>> root, build = PatternTree.build("$1", tag("article"))
        >>> _ = root.add("$2", tag("title"))
        >>> pattern = build.done()
        """
        root_node = PatternNode(root_label, root_predicate)
        return root_node, _Builder(root_node)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def nodes(self) -> list[PatternNode]:
        """All pattern nodes in preorder."""
        return list(self.root.iter())

    def labels(self) -> list[str]:
        return [node.label for node in self.nodes()]

    def node(self, label: str) -> PatternNode:
        for candidate in self.root.iter():
            if candidate.label == label:
                return candidate
        raise PatternError(f"pattern has no node labelled {label!r}")

    def has_node(self, label: str) -> bool:
        return any(node.label == label for node in self.root.iter())

    def edges(self) -> list[tuple[PatternNode, PatternNode, Axis]]:
        """All (parent, child, axis) edges in preorder of the child."""
        out = []
        for node in self.root.iter():
            if node.parent is not None:
                assert node.axis is not None
                out.append((node.parent, node, node.axis))
        return out

    def size(self) -> int:
        return len(self.nodes())

    def _validate(self) -> None:
        seen: set[str] = set()
        for node in self.root.iter():
            if node.label in seen:
                raise PatternError(f"duplicate pattern label {node.label!r}")
            seen.add(node.label)
            if node is not self.root and node.axis is None:
                raise PatternError(f"node {node.label!r} has no incoming axis")

    # ------------------------------------------------------------------
    # Tree-subset test (rewrite Phase 1, step 2)
    # ------------------------------------------------------------------
    def is_tree_subset_of(self, other: "PatternTree") -> dict[str, str] | None:
        """Check whether this pattern is a tree subset of ``other``.

        Returns a mapping from this pattern's labels to ``other``'s
        labels witnessing the subset relation, or ``None``.  Nodes
        correspond when their canonical predicates are equal; each of
        this pattern's edges must appear in the transitive closure of
        ``other``'s edges with a compatible mark (pc ⊆ ad, not ad ⊆ pc).
        """
        mine = self.nodes()
        theirs = other.nodes()
        candidates: dict[str, list[str]] = {}
        theirs_by_label = {node.label: node for node in theirs}
        for node in mine:
            options = [
                candidate.label
                for candidate in theirs
                if candidate.predicate == node.predicate
            ]
            if not options:
                return None
            candidates[node.label] = options

        closure = _edge_closure(other)

        assignment: dict[str, str] = {}
        used: set[str] = set()

        def backtrack(index: int) -> bool:
            if index == len(mine):
                return True
            node = mine[index]
            for option in candidates[node.label]:
                if option in used:
                    continue
                if node.parent is not None:
                    mapped_parent = assignment[node.parent.label]
                    mark = closure.get((mapped_parent, option))
                    if mark is None:
                        continue
                    assert node.axis is not None
                    if not node.axis.satisfied_by_composition(mark):
                        continue
                assignment[node.label] = option
                used.add(option)
                if backtrack(index + 1):
                    return True
                del assignment[node.label]
                used.discard(option)
            return False

        # ``mine`` is in preorder, so a node's parent is assigned first.
        if backtrack(0):
            return dict(assignment)
        return None

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def sketch(self) -> str:
        lines: list[str] = []

        def render(node: PatternNode, depth: int) -> None:
            axis = f"-{node.axis.value}- " if node.axis else ""
            lines.append(
                "  " * depth + f"{axis}{node.label} [{node.predicate.describe()}]"
            )
            for child in node.children:
                render(child, depth + 1)

        render(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PatternTree {'/'.join(self.labels())}>"


def pcify(pattern: PatternTree) -> PatternTree:
    """A copy of ``pattern`` with every edge turned parent-child.

    The paper's footnote 7: "When a projection follows a selection using
    the same pattern, all the ancestor-descendant edges of the tree will
    be changed to parent-child for the projection" — valid because the
    selection's witness trees attach each binding directly under its
    pattern parent.
    """

    def copy(node: PatternNode) -> PatternNode:
        clone = PatternNode(node.label, node.predicate)
        for child in node.children:
            clone.add_child(copy(child), Axis.PC)
        return clone

    return PatternTree(copy(pattern.root))


class _Builder:
    __slots__ = ("_root",)

    def __init__(self, root: PatternNode):
        self._root = root

    def done(self) -> PatternTree:
        return PatternTree(self._root)


def _edge_closure(pattern: PatternTree) -> dict[tuple[str, str], Axis]:
    """Transitive closure of the pattern's edges with composition marks.

    A closure edge keeps the ``pc`` mark only when it is a single base
    pc edge; any composition of two or more edges (or involving an ad
    edge) is marked ``ad`` (footnote 6 of the paper).
    """
    closure: dict[tuple[str, str], Axis] = {}
    for parent, child, axis in pattern.edges():
        closure[(parent.label, child.label)] = axis

    labels = pattern.labels()
    # Floyd-Warshall-style closure; patterns are tiny so cubic is fine.
    changed = True
    while changed:
        changed = False
        for a in labels:
            for b in labels:
                first = closure.get((a, b))
                if first is None:
                    continue
                for c in labels:
                    second = closure.get((b, c))
                    if second is None:
                        continue
                    if (a, c) not in closure:
                        closure[(a, c)] = Axis.AD
                        changed = True
    return closure
