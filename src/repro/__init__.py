"""repro — a reproduction of "Grouping in XML" (Paparizos et al., EDBT 2002).

A from-scratch native XML database in Python in the architecture of
TIMBER: page-based storage with an LRU buffer pool, tag/value indexes,
pattern-tree matching via structural joins, the TAX tree algebra with
the paper's GROUPBY and aggregation operators, an XQuery-subset front
end with the naive (join) translation and the grouping rewrite, and the
experiment harness reproducing the paper's evaluation.

Quickstart::

    from repro import Database

    db = Database()
    db.load(text=BIB_XML, name="bib.xml")
    result = db.query(QUERY_1)          # rewritten to a GROUPBY plan
    print(result.collection.sketch())
"""

from .errors import ReproError
from .observability import ExecutionProfile, QueryTrace
from .query.database import Database, Explanation, PlanMode, QueryResult
from .xmlmodel import Collection, DataTree, XMLNode, element, parse_document, serialize

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "Database",
    "QueryResult",
    "PlanMode",
    "Explanation",
    "ExecutionProfile",
    "QueryTrace",
    "Collection",
    "DataTree",
    "XMLNode",
    "element",
    "parse_document",
    "serialize",
    "__version__",
]
