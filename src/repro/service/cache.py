"""Size-bounded, thread-safe LRU caches for the query service.

Two tiers sit in front of execution (Sec. 5.3's late value population
pays off only when repeated plans can reuse prior work):

* the **plan cache** maps a normalized AST fingerprint (plus requested
  plan mode) to a :class:`~repro.query.database.PreparedQuery` — parse,
  translate, and rewrite happen once per query shape;
* the **result cache** maps ``(fingerprint, mode, store generation)``
  to a finished result — a repeat of an identical read query against
  unchanged data returns without touching the store at all.

Invalidation is by *generation*: every data mutation bumps the store's
generation counter, so stale result entries simply stop being looked
up and age out of the LRU; plan entries carry their build generation
and are refreshed on mismatch.  ``capacity=0`` disables a cache (every
``get`` misses, ``put`` is a no-op) — benchmarks use this to measure
cold paths under the full service machinery.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable


class CacheStatistics:
    """Hit/miss/eviction counters for one cache tier."""

    __slots__ = ("hits", "misses", "evictions", "invalidations")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def hit_ratio(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CacheStatistics hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions}>"
        )


_MISSING = object()


class LRUCache:
    """A thread-safe LRU mapping with bounded entry count.

    Same discipline as the buffer pool one layer down: bounded
    capacity, least-recently-*used* eviction (a ``get`` refreshes), and
    forward-only counters.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = capacity
        self.counters = CacheStatistics()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.RLock()

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def get(self, key: Hashable, default=None):
        """Look up ``key``, counting a hit or miss and refreshing LRU
        order on a hit."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.counters.misses += 1
                return default
            self.counters.hits += 1
            self._entries.move_to_end(key)
            return value

    def peek(self, key: Hashable, default=None):
        """Look up without touching counters or LRU order (tests)."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            return default if value is _MISSING else value

    def put(self, key: Hashable, value) -> None:
        """Insert or replace; evicts the least-recently-used entry when
        over capacity.  No-op when the cache is disabled."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.counters.evictions += 1

    def invalidate(self, predicate: Callable[[Hashable], bool] | None = None) -> int:
        """Drop entries whose key satisfies ``predicate`` (all entries
        when ``None``).  Returns how many were dropped."""
        with self._lock:
            if predicate is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                doomed = [key for key in self._entries if predicate(key)]
                for key in doomed:
                    del self._entries[key]
                dropped = len(doomed)
            self.counters.invalidations += dropped
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list:
        with self._lock:
            return list(self._entries.keys())
