"""Deterministic, seed-driven network-fault injection: the chaos proxy.

The storage stack proves its resilience against a declarative
:class:`~repro.storage.faults.FaultPlan`; this module is the same idea
for the network edge.  A :class:`ChaosProxy` sits between client and
server, forwarding bytes in both directions while consulting a
:class:`NetFaultPlan` on every accepted connection and every relayed
chunk:

* **accept refusals** — the connection is accepted and immediately
  hard-closed (RST), as an overloaded or crashing server would;
* **connection resets** — mid-stream hard close of both sides;
* **latency** — a fixed delay before forwarding a chunk;
* **partial writes** — a chunk is dribbled out in small pieces with
  pauses, exercising every reader's short-read path;
* **mid-line truncation** — a *prefix* of a chunk is forwarded, then
  both sides are reset, leaving a torn protocol line in flight (the
  network version of a torn page write).

Plans parse from the same compact ``key=value`` string form as disk
fault plans, and install from the ``REPRO_NET_FAULT_PLAN`` environment
variable so CI can run the entire service suite through a *transparent*
proxy (``none``) to prove the proxy itself changes nothing.

Faults are rolled from one seeded ``random.Random``.  Thread
interleaving means the exact placement of faults across concurrent
connections can vary, but the *rate and mix* per seed do not, and a
single-connection scenario replays exactly.
"""

from __future__ import annotations

import dataclasses
import os
import random
import socket
import struct
import threading
import time
from dataclasses import dataclass

from ..errors import ServiceError

#: Environment variable holding a parseable net-fault plan; when set,
#: the service test fixtures route every connection through a proxy.
NET_FAULT_PLAN_ENV = "REPRO_NET_FAULT_PLAN"

_CHUNK = 65536


@dataclass(frozen=True)
class NetFaultPlan:
    """Declarative description of the network faults to inject.

    Rates are per-event probabilities in ``[0, 1]``: ``refuse_rate``
    per accepted connection, the rest per relayed chunk.
    ``max_faults`` bounds the total injected so a retrying client
    eventually wins.
    """

    seed: int = 0
    refuse_rate: float = 0.0  # accept, then immediately reset
    reset_rate: float = 0.0  # hard-close mid-stream
    delay_rate: float = 0.0  # hold a chunk for delay_seconds
    delay_seconds: float = 0.01
    partial_write_rate: float = 0.0  # dribble a chunk byte-group-wise
    truncate_rate: float = 0.0  # forward a prefix, then reset
    stall_rate: float = 0.0  # hold a chunk for stall_seconds (alive but dark)
    stall_seconds: float = 1.0
    kill_after: int | None = None  # after N connections: go dark until heal
    max_faults: int | None = None

    def is_noop(self) -> bool:
        """True when the plan injects nothing (transparent proxy)."""
        return (
            self.refuse_rate == 0.0
            and self.reset_rate == 0.0
            and self.delay_rate == 0.0
            and self.partial_write_rate == 0.0
            and self.truncate_rate == 0.0
            and self.stall_rate == 0.0
            and self.kill_after is None
        )

    @classmethod
    def parse(cls, text: str) -> "NetFaultPlan":
        """Parse ``"seed=7,reset_rate=0.05,delay_rate=0.1"``.

        ``"none"`` (or an empty string) yields the no-fault plan —
        the proxy is installed but transparent.
        """
        text = text.strip()
        if text in ("", "none", "off"):
            return cls()
        fields = {field.name: field for field in dataclasses.fields(cls)}
        values: dict[str, object] = {}
        for part in text.replace(";", ",").split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ServiceError(
                    f"net fault plan: expected key=value, got {part!r}"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key not in fields:
                known = ", ".join(sorted(fields))
                raise ServiceError(
                    f"net fault plan: unknown key {key!r} (known: {known})"
                )
            if key == "seed":
                values[key] = int(raw)
            elif key in ("max_faults", "kill_after"):
                values[key] = None if raw.lower() == "none" else int(raw)
            else:
                values[key] = float(raw)
        return cls(**values)  # type: ignore[arg-type]

    def describe(self) -> str:
        """The plan back in its parseable string form."""
        parts = []
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value != field.default:
                parts.append(f"{field.name}={value}")
        return ",".join(parts) if parts else "none"


#: The transparent plan (proxy installed, nothing injected).
NO_NET_FAULTS = NetFaultPlan()


def net_plan_from_env() -> NetFaultPlan | None:
    """The plan named by ``REPRO_NET_FAULT_PLAN``, or ``None`` if
    unset."""
    text = os.environ.get(NET_FAULT_PLAN_ENV)
    if text is None:
        return None
    return NetFaultPlan.parse(text)


class NetFaultStatistics:
    """Counters for every network fault actually injected."""

    __slots__ = (
        "refused_connections",
        "resets",
        "delays",
        "partial_writes",
        "truncations",
        "stalls",
        "kills",
        "connections_proxied",
        "_lock",
    )

    def __init__(self):
        for name in self.__slots__[:-1]:
            setattr(self, name, 0)
        self._lock = threading.Lock()

    def add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def total_faults(self) -> int:
        with self._lock:
            return (
                self.refused_connections
                + self.resets
                + self.delays
                + self.partial_writes
                + self.truncations
                + self.stalls
                + self.kills
            )

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                f"net_{name}": getattr(self, name)
                for name in self.__slots__[:-1]
            }


def _hard_close(sock: socket.socket) -> None:
    """Close with RST (SO_LINGER 0): the peer sees a connection reset,
    not an orderly EOF."""
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class _Pipe:
    """One proxied connection: two sockets, closed together once."""

    def __init__(self, client: socket.socket, upstream: socket.socket):
        self.client = client
        self.upstream = upstream
        self._lock = threading.Lock()
        self._open_directions = 2
        self._dead = False

    @property
    def dead(self) -> bool:
        with self._lock:
            return self._dead

    def kill(self) -> None:
        """Reset both sides (fault injection or proxy shutdown)."""
        with self._lock:
            if self._dead:
                return
            self._dead = True
        _hard_close(self.client)
        _hard_close(self.upstream)

    def finished_direction(self) -> None:
        with self._lock:
            self._open_directions -= 1
            last = self._open_directions == 0
            if not last or self._dead:
                return
            self._dead = True
        for sock in (self.client, self.upstream):
            try:
                sock.close()
            except OSError:
                pass


class ChaosProxy:
    """A TCP forwarder that injects faults per a :class:`NetFaultPlan`.

    ``heal()`` swaps in the transparent plan — injected chaos stops,
    existing and new connections flow cleanly, and a client's circuit
    breaker can re-close (the soak harness asserts exactly that).
    """

    def __init__(
        self,
        upstream: tuple[str, int],
        plan: NetFaultPlan = NO_NET_FAULTS,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.upstream = upstream
        self._plan = plan
        self._rng = random.Random(plan.seed)
        self._roll_lock = threading.Lock()
        self.fault_counters = NetFaultStatistics()
        self._listener = socket.create_server((host, port))
        self._closed = False
        self._pipes: set[_Pipe] = set()
        self._pipes_lock = threading.Lock()
        self._accept_thread: threading.Thread | None = None
        # Per-plan state: every set_plan() bumps the epoch (so fault
        # decisions made against a stale plan are discarded at apply
        # time), re-baselines the fault budget (so a fresh plan's
        # max_faults is not pre-spent by an earlier storm), and resets
        # the kill latch.
        self._plan_lock = threading.Lock()
        self._epoch = 0
        self._fault_baseline = 0
        self._conns_since_plan = 0
        self._kill_latched = False

    # ------------------------------------------------------------------
    # Plan control
    # ------------------------------------------------------------------
    @property
    def plan(self) -> NetFaultPlan:
        return self._plan

    @property
    def killed(self) -> bool:
        """True while the ``kill_after`` latch holds the proxy dark."""
        return self._kill_latched

    def set_plan(self, plan: NetFaultPlan) -> None:
        """Swap the active plan (the rng keeps its stream: healing and
        re-arming mid-run stays on the same seed schedule).

        Installing a plan starts a fresh fault epoch: in-flight fault
        decisions rolled under the old plan are abandoned, the
        ``max_faults`` budget counts from zero again, and a tripped
        ``kill_after`` latch is released.
        """
        with self._plan_lock:
            self._plan = plan
            self._epoch += 1
            self._fault_baseline = self.fault_counters.total_faults()
            self._conns_since_plan = 0
            self._kill_latched = False
            epoch = self._epoch
        # A plan that allows zero further connections goes dark NOW:
        # existing pipes die too, not just future accepts.
        if plan.kill_after == 0:
            self._maybe_kill(plan, epoch)

    def heal(self) -> None:
        """Stop injecting faults; existing connections keep flowing,
        a kill latch releases, and no stale budget or in-flight fault
        decision from the previous plan can fire afterwards."""
        self.set_plan(NO_NET_FAULTS)

    def _roll(self, plan: NetFaultPlan, epoch: int, rate: float) -> bool:
        if rate <= 0.0 or self._closed:
            return False
        if epoch != self._epoch:
            return False  # stale plan: a heal/swap already superseded it
        limit = plan.max_faults
        if limit is not None:
            spent = self.fault_counters.total_faults() - self._fault_baseline
            if spent >= limit:
                return False
        with self._roll_lock:
            if epoch != self._epoch:
                return False
            return self._rng.random() < rate

    def _interruptible_sleep(self, seconds: float, epoch: int, pipe: "_Pipe | None") -> None:
        """Sleep in slices, waking early when the plan changes, the
        pipe dies, or the proxy closes — a heal() must not leave a
        stalled chunk dark for the stale plan's full duration."""
        deadline = time.monotonic() + seconds
        while not self._closed and epoch == self._epoch:
            if pipe is not None and pipe.dead:
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(remaining, 0.02))

    def _rand_cut(self, length: int) -> int:
        with self._roll_lock:
            return self._rng.randrange(1, length) if length > 1 else 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ChaosProxy":
        thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        thread.start()
        self._accept_thread = thread
        return self

    @property
    def endpoint(self) -> tuple[str, int]:
        return self._listener.getsockname()[:2]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            # shutdown() first: close() alone leaves the kernel listen
            # alive while the accept loop is blocked in accept(), so
            # new connections would still be admitted.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._pipes_lock:
            pipes = list(self._pipes)
        for pipe in pipes:
            pipe.kill()

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def _maybe_kill(self, plan: NetFaultPlan, epoch: int) -> bool:
        """Check (and possibly trip) the ``kill_after`` latch; while
        latched, the proxy is dark — every new connection is refused
        and existing pipes are already dead."""
        with self._plan_lock:
            if epoch != self._epoch:
                return self._kill_latched
            if self._kill_latched:
                return True
            if plan.kill_after is None or self._conns_since_plan < plan.kill_after:
                return False
            self._kill_latched = True
        self.fault_counters.add("kills")
        with self._pipes_lock:
            pipes = list(self._pipes)
        for pipe in pipes:
            pipe.kill()
        return True

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            plan = self._plan
            epoch = self._epoch
            if self._maybe_kill(plan, epoch):
                _hard_close(client)
                continue
            if self._roll(plan, epoch, plan.refuse_rate):
                self.fault_counters.add("refused_connections")
                _hard_close(client)
                continue
            try:
                upstream = socket.create_connection(self.upstream, timeout=10.0)
            except OSError:
                _hard_close(client)
                continue
            self.fault_counters.add("connections_proxied")
            with self._plan_lock:
                if epoch == self._epoch:
                    self._conns_since_plan += 1
            pipe = _Pipe(client, upstream)
            with self._pipes_lock:
                self._pipes.add(pipe)
            for src, dst in ((client, upstream), (upstream, client)):
                threading.Thread(
                    target=self._pump,
                    args=(pipe, src, dst),
                    name="chaos-proxy-pump",
                    daemon=True,
                ).start()

    def _pump(self, pipe: _Pipe, src: socket.socket, dst: socket.socket) -> None:
        try:
            while True:
                try:
                    chunk = src.recv(_CHUNK)
                except OSError:
                    return
                if not chunk:
                    # Orderly half-close: let the other direction live.
                    try:
                        dst.shutdown(socket.SHUT_WR)
                    except OSError:
                        pass
                    return
                plan = self._plan
                epoch = self._epoch
                if self._roll(plan, epoch, plan.reset_rate):
                    self.fault_counters.add("resets")
                    pipe.kill()
                    return
                if self._roll(plan, epoch, plan.truncate_rate):
                    self.fault_counters.add("truncations")
                    cut = self._rand_cut(len(chunk))
                    try:
                        dst.sendall(chunk[:cut])
                    except OSError:
                        pass
                    pipe.kill()
                    return
                if self._roll(plan, epoch, plan.stall_rate):
                    self.fault_counters.add("stalls")
                    self._interruptible_sleep(plan.stall_seconds, epoch, pipe)
                    if pipe.dead:
                        return
                if self._roll(plan, epoch, plan.delay_rate):
                    self.fault_counters.add("delays")
                    self._interruptible_sleep(plan.delay_seconds, epoch, pipe)
                    if pipe.dead:
                        return
                try:
                    if self._roll(plan, epoch, plan.partial_write_rate):
                        self.fault_counters.add("partial_writes")
                        for start in range(0, len(chunk), 3):
                            dst.sendall(chunk[start : start + 3])
                            time.sleep(0.001)
                    else:
                        dst.sendall(chunk)
                except OSError:
                    return
        finally:
            pipe.finished_direction()
            if pipe._open_directions == 0:
                with self._pipes_lock:
                    self._pipes.discard(pipe)
