"""A resilient client for the line-oriented query service.

Every caller so far has hand-rolled a socket against
:mod:`repro.service.server`; :class:`ServiceClient` is the library
version, built for networks that misbehave:

* **reconnection** — a dropped connection is re-established on the
  next call; the client never caches a dead socket;
* **retries with exponential backoff + full jitter** — transient
  failures (refused connections, resets, truncated replies, and
  retryable ``ERR`` kinds like admission rejections) are retried up to
  a budget, sleeping ``uniform(0, min(cap, base * 2**attempt))``
  between attempts so a thundering herd decorrelates;
* **idempotency discipline** — only commands that are safe to execute
  twice (``QUERY``/``EXPLAIN``/``STATS``/``PING``/``HEALTH``) are
  replayed after an *ambiguous* failure (request written, outcome
  unknown).  Anything else surfaces
  :class:`~repro.errors.AmbiguousResultError` instead of replaying;
* a **circuit breaker** — consecutive failures open the circuit and
  calls fail fast with :class:`~repro.errors.CircuitOpenError`; after
  ``reset_timeout`` one probe goes through (half-open) and a success
  re-closes the breaker.

All failures surface as :class:`~repro.errors.ClientError` subclasses
— raw socket exceptions never escape — and every retry, reconnect,
and breaker transition is counted in a
:class:`~repro.observability.CounterSnapshot`-compatible form
(:meth:`ServiceClient.counter_snapshot`).

The jitter source is a seeded ``random.Random``, mirroring the
deterministic fault-plan discipline of :mod:`repro.storage.faults`:
a failing seed reproduces the same backoff schedule.
"""

from __future__ import annotations

import dataclasses
import json
import random
import socket
import threading
import time
from dataclasses import dataclass

from ..errors import (
    AmbiguousResultError,
    CircuitOpenError,
    ConnectionFailedError,
    ProtocolError,
    RemoteError,
    RetryBudgetExceededError,
    ServiceError,
)
from ..observability import CounterSnapshot

#: Commands safe to send twice: they read or are pure.  ``SESSION`` is
#: read-only but names *this connection's* session, so a replay on a
#: fresh connection would silently answer about a different session —
#: treated as non-idempotent.  ``QUIT`` is terminal.
IDEMPOTENT_COMMANDS = frozenset({"PING", "HEALTH", "QUERY", "EXPLAIN", "STATS"})

#: ``ERR`` kinds that signal a transient server-side condition worth
#: backing off and retrying (backpressure, overload, drain).
RETRYABLE_ERR_KINDS = frozenset(
    {"AdmissionError", "ServerOverloadedError", "ServerDrainingError"}
)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule and retry budget.

    ``max_attempts`` counts the first try: 4 means one try plus three
    retries.  Delays follow AWS-style *full jitter*:
    ``uniform(0, min(max_delay, base_delay * 2**retry_index))``.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter_seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ServiceError("retry policy needs at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ServiceError("retry delays must be non-negative")


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker thresholds.

    ``failure_threshold`` consecutive transport failures open the
    circuit; after ``reset_timeout`` seconds one half-open probe is
    allowed through, and its outcome re-closes or re-opens the
    breaker.
    """

    failure_threshold: int = 5
    reset_timeout: float = 1.0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ServiceError("breaker threshold must be >= 1")
        if self.reset_timeout < 0:
            raise ServiceError("breaker reset timeout must be non-negative")


class ClientStatistics:
    """Forward-only counters for one client (snapshot-and-subtract,
    like every other counter set in the repo)."""

    __slots__ = (
        "requests",
        "replies_ok",
        "replies_err",
        "connects",
        "reconnects",
        "connect_failures",
        "network_errors",
        "retries",
        "retries_exhausted",
        "ambiguous_failures",
        "server_goodbyes",
        "backoff_sleeps",
        "backoff_sleep_us",
        "breaker_opens",
        "breaker_half_opens",
        "breaker_closes",
        "breaker_rejections",
        "_lock",
    )

    def __init__(self):
        for name in self.__slots__[:-1]:
            setattr(self, name, 0)
        self._lock = threading.Lock()

    def add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                f"client_{name}": getattr(self, name)
                for name in self.__slots__[:-1]
            }


# Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed → open → half-open transport-failure breaker.

    Only *transport* failures count (connect errors, resets, timeouts,
    truncated replies).  A server that answers — even with ``ERR`` —
    is alive, so application errors reset the failure streak.

    ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        config: BreakerConfig | None = None,
        counters: ClientStatistics | None = None,
        clock=time.monotonic,
    ):
        self.config = config or BreakerConfig()
        self.counters = counters or ClientStatistics()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> None:
        """Gate a call: raises :class:`CircuitOpenError` while open;
        transitions open → half-open once the reset timeout elapses
        (admitting a single probe)."""
        with self._lock:
            if self._state == CLOSED:
                return
            if self._state == OPEN:
                elapsed = self._clock() - self._opened_at
                if elapsed < self.config.reset_timeout:
                    self.counters.add("breaker_rejections")
                    remaining = self.config.reset_timeout - elapsed
                    raise CircuitOpenError(
                        f"circuit open; retry in {remaining:.2f}s"
                    )
                self._state = HALF_OPEN
                self._probe_in_flight = False
                self.counters.add("breaker_half_opens")
            # HALF_OPEN: one probe at a time.
            if self._probe_in_flight:
                self.counters.add("breaker_rejections")
                raise CircuitOpenError("circuit half-open; probe in flight")
            self._probe_in_flight = True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != CLOSED:
                self._state = CLOSED
                self.counters.add("breaker_closes")

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or (
                self._state == CLOSED
                and self._consecutive_failures >= self.config.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self.counters.add("breaker_opens")


@dataclass(frozen=True)
class HealthReport:
    """Parsed ``HEALTH`` payload — one parser shared by every caller
    (CLI, cluster coordinator, tests) instead of each fishing keys out
    of the raw line.

    Unknown keys survive in ``raw`` so a newer server can report more
    than an older client knows to model.
    """

    status: str
    live: bool
    ready: bool
    draining: bool
    degraded_store: bool
    quarantined_pages: int
    queue_depth: int
    queue_capacity: int
    workers: int
    active_connections: int
    max_connections: int
    generation: int
    ingesting: bool = False
    raw: dict = dataclasses.field(default_factory=dict, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @classmethod
    def from_payload(cls, payload: dict) -> "HealthReport":
        return cls(
            status=str(payload.get("status", "unknown")),
            live=bool(payload.get("live", False)),
            ready=bool(payload.get("ready", False)),
            draining=bool(payload.get("draining", False)),
            degraded_store=bool(payload.get("degraded_store", False)),
            quarantined_pages=int(payload.get("quarantined_pages", 0)),
            queue_depth=int(payload.get("queue_depth", 0)),
            queue_capacity=int(payload.get("queue_capacity", 0)),
            workers=int(payload.get("workers", 0)),
            active_connections=int(payload.get("active_connections", 0)),
            max_connections=int(payload.get("max_connections", 0)),
            generation=int(payload.get("generation", 0)),
            ingesting=bool(payload.get("ingesting", False)),
            raw=dict(payload),
        )

    def as_dict(self) -> dict:
        return dict(self.raw)


class ServiceClient:
    """Reconnecting, retrying, breaker-guarded line-protocol client.

    Not thread-safe: one client per thread (clients are cheap; the
    breaker and counters are the expensive state and may be shared by
    constructing with the same objects).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        retry: RetryPolicy | None = None,
        breaker: BreakerConfig | CircuitBreaker | None = None,
        connect_timeout: float = 5.0,
        read_timeout: float = 30.0,
        sleep=time.sleep,
    ):
        self.host = host
        self.port = port
        self.retry = retry or RetryPolicy()
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self.counters = ClientStatistics()
        if isinstance(breaker, CircuitBreaker):
            self.breaker = breaker
        else:
            self.breaker = CircuitBreaker(breaker, self.counters)
        self._rng = random.Random(self.retry.jitter_seed)
        self._sleep = sleep
        self._sock: socket.socket | None = None
        self._buffer = bytearray()
        self._ever_connected = False

    # ------------------------------------------------------------------
    # Command surface
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.call("PING")

    def health(self) -> HealthReport:
        return HealthReport.from_payload(self.call("HEALTH"))

    def query(
        self,
        text: str,
        *,
        plan: str | None = None,
        timeout: float | None = None,
    ) -> dict:
        spec: dict[str, object] = {"q": text}
        if plan is not None:
            spec["plan"] = plan
        if timeout is not None:
            spec["timeout"] = timeout
        return self.call("QUERY", spec)

    def explain(self, text: str, *, verbose: bool = False) -> dict:
        return self.call("EXPLAIN", {"q": text, "verbose": verbose})

    def load(self, text: str, name: str, *, chunk_chars: int = 1 << 18) -> dict:
        """Ship a document over the wire in ``LOAD`` chunks (the server
        caps request lines at 1 MiB, so large documents stream).

        Non-idempotent: a transport failure after any chunk was sent
        surfaces :class:`~repro.errors.AmbiguousResultError` instead of
        replaying — the caller decides whether to re-LOAD under a fresh
        name or probe the catalog.
        """
        if len(text) <= chunk_chars:
            return self.call(
                "LOAD", {"name": name, "chunk": text, "final": True},
                idempotent=False,
            )
        reply: dict = {}
        for start in range(0, len(text), chunk_chars):
            piece = text[start : start + chunk_chars]
            final = start + chunk_chars >= len(text)
            reply = self.call(
                "LOAD", {"name": name, "chunk": piece, "final": final},
                idempotent=False,
            )
        return reply

    def load_stream(
        self,
        source,
        name: str,
        *,
        batch_size: int | None = None,
        chunk_chars: int = 1 << 18,
        on_progress=None,
    ) -> dict:
        """Streaming ``LOAD``: the server commits journaled batches as
        chunks arrive instead of buffering the whole document.

        ``source`` is a string, a file-like object, or an iterable of
        text chunks.  ``on_progress`` (a ``dict -> None`` callable)
        receives each batch-commit event the server reports.  Like
        :meth:`load`, non-idempotent: a transport failure mid-stream
        surfaces :class:`~repro.errors.AmbiguousResultError`; the
        server keeps every batch it committed.
        """
        from ..ingest.session import chunks_of

        def announce(reply: dict) -> None:
            if on_progress is not None:
                for event in reply.get("events", ()):
                    on_progress(event)

        base: dict[str, object] = {"name": name, "stream": True}
        if batch_size is not None:
            base["batch_size"] = batch_size
        for piece in chunks_of(source, chunk_chars):
            reply = self.call(
                "LOAD", {**base, "chunk": piece, "final": False},
                idempotent=False,
            )
            announce(reply)
        reply = self.call(
            "LOAD", {**base, "chunk": "", "final": True}, idempotent=False
        )
        announce(reply)
        return reply

    def stats(self) -> CounterSnapshot:
        """Server-side counters merged with this client's own
        (``client_*``-prefixed) — one snapshot shows both ends."""
        data = dict(self.call("STATS"))
        data.update(self.counters.snapshot())
        return CounterSnapshot(data)

    def counter_snapshot(self) -> CounterSnapshot:
        """Just this client's counters, as an immutable snapshot."""
        return CounterSnapshot(self.counters.snapshot())

    def set_read_timeout(self, seconds: float) -> None:
        """Adjust the per-reply read timeout, applying it to the live
        socket too — the cluster coordinator shrinks this to a call's
        remaining deadline budget before each shard call."""
        self.read_timeout = seconds
        if self._sock is not None:
            self._sock.settimeout(seconds)

    def session(self) -> dict:
        """This connection's session snapshot.  Non-idempotent: a
        replay would land on a *new* connection (hence a new session)
        and silently answer about the wrong one."""
        return self.call("SESSION", idempotent=False)

    # ------------------------------------------------------------------
    # Core call loop
    # ------------------------------------------------------------------
    def call(
        self,
        command: str,
        spec: dict | None = None,
        *,
        idempotent: bool | None = None,
    ) -> dict:
        """One request/response round trip with the full resilience
        stack (reconnect, retry budget, breaker)."""
        command = command.upper()
        if idempotent is None:
            idempotent = command in IDEMPOTENT_COMMANDS
        attempts = self.retry.max_attempts if idempotent else 1
        line = command if spec is None else command + " " + json.dumps(spec)
        payload = line.encode("utf-8") + b"\n"
        self.counters.add("requests")
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                self.counters.add("retries")
                self._backoff(attempt)
            self.breaker.allow()
            sent = False
            try:
                self._ensure_connected()
                self._write(payload)
                sent = True
                reply = self._read_line()
            except ConnectionFailedError as error:
                self.breaker.record_failure()
                self.counters.add("network_errors")
                self._drop_connection()
                if sent and not idempotent:
                    self.counters.add("ambiguous_failures")
                    raise AmbiguousResultError(
                        f"{command} failed after the request was sent; "
                        "the server may have executed it — not replaying"
                    ) from error
                last_error = error
                continue
            self.breaker.record_success()
            try:
                return self._decode(command, reply)
            except _Goodbye as goodbye:
                # The server said BYE (drain): this connection is done;
                # idempotent work may retry against a fresh accept.
                self.counters.add("server_goodbyes")
                self._drop_connection()
                last_error = goodbye.error
                continue
            except _RetryableRemote as retryable:
                last_error = retryable.error
                continue
        self.counters.add("retries_exhausted")
        raise RetryBudgetExceededError(
            f"{command} failed after {attempts} attempt(s)"
        ) from last_error

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    def _ensure_connected(self) -> None:
        if self._sock is not None:
            return
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except OSError as error:
            self.counters.add("connect_failures")
            raise ConnectionFailedError(
                f"connect to {self.host}:{self.port} failed: {error}"
            ) from error
        sock.settimeout(self.read_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._sock = sock
        self._buffer.clear()
        if self._ever_connected:
            self.counters.add("reconnects")
        else:
            self._ever_connected = True
        self.counters.add("connects")

    def _write(self, payload: bytes) -> None:
        assert self._sock is not None
        try:
            self._sock.sendall(payload)
        except OSError as error:
            raise ConnectionFailedError(f"send failed: {error}") from error

    def _read_line(self) -> str:
        assert self._sock is not None
        while True:
            cut = self._buffer.find(b"\n")
            if cut >= 0:
                line = self._buffer[:cut].decode("utf-8", errors="replace")
                del self._buffer[: cut + 1]
                return line
            try:
                chunk = self._sock.recv(65536)
            except OSError as error:
                raise ConnectionFailedError(f"read failed: {error}") from error
            if not chunk:
                raise ConnectionFailedError(
                    "connection closed mid-reply"
                    if self._buffer
                    else "connection closed before reply"
                )
            self._buffer += chunk

    def _decode(self, command: str, reply: str) -> dict:
        if reply.startswith("OK"):
            self.counters.add("replies_ok")
            body = reply[2:].strip()
            return json.loads(body) if body else {}
        if reply == "BYE":
            raise _Goodbye(
                ConnectionFailedError("server said BYE (draining)")
            )
        if reply.startswith("ERR"):
            self.counters.add("replies_err")
            try:
                body = json.loads(reply[3:].strip())
            except json.JSONDecodeError:
                body = {}
            kind = str(body.get("kind", "unknown"))
            message = str(body.get("message", reply))
            error = RemoteError(kind, message)
            if kind in RETRYABLE_ERR_KINDS and command in IDEMPOTENT_COMMANDS:
                raise _RetryableRemote(error)
            raise error
        raise ProtocolError(f"unparseable reply line: {reply[:120]!r}")

    def _backoff(self, retry_index: int) -> None:
        cap = min(
            self.retry.max_delay,
            self.retry.base_delay * (2 ** (retry_index - 1)),
        )
        delay = self._rng.uniform(0.0, cap)
        if delay > 0:
            self.counters.add("backoff_sleeps")
            self.counters.add("backoff_sleep_us", int(delay * 1_000_000))
            self._sleep(delay)

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        self._buffer.clear()
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._sock is not None

    def close(self) -> None:
        """Best-effort ``QUIT``, then drop the connection."""
        if self._sock is not None:
            try:
                self._write(b"QUIT\n")
                self._read_line()  # BYE
            except (ConnectionFailedError, OSError):
                pass
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _Goodbye(Exception):
    """Internal: the server answered BYE."""

    def __init__(self, error: Exception):
        self.error = error


class _RetryableRemote(Exception):
    """Internal: an ``ERR`` kind that deserves backoff-and-retry."""

    def __init__(self, error: RemoteError):
        self.error = error
