"""Client sessions for the query service.

A :class:`Session` is the unit of client state the TIMBER-style server
front end keeps (Fig. 12's "user interface / API" box): a default plan
mode and timeout for the client's queries, plus per-session accounting
(queries run, cache hits, timeouts) so an operator can see who is doing
what.  Sessions are cheap — a socket connection gets one implicitly —
and carry no transactional meaning in this read-mostly store.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from ..errors import SessionError

_session_ids = itertools.count(1)


@dataclass
class Session:
    """One client's state within a :class:`~repro.service.QueryService`."""

    session_id: int
    name: str = ""
    created_at: float = field(default_factory=time.time)
    default_plan: str | None = None
    default_timeout: float | None = None
    closed: bool = False
    # Per-session accounting (guarded by the registry lock).
    queries: int = 0
    cache_hits: int = 0
    timeouts: int = 0
    rejected: int = 0
    #: Abnormal disconnects (client vanished mid-response); the server
    #: front end counts these so an operator can spot flapping clients.
    aborted: int = 0
    last_active: float = field(default_factory=time.time)

    def snapshot(self) -> dict[str, object]:
        return {
            "session_id": self.session_id,
            "name": self.name,
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "timeouts": self.timeouts,
            "rejected": self.rejected,
            "aborted": self.aborted,
            "closed": self.closed,
        }


class SessionRegistry:
    """Thread-safe id -> :class:`Session` map."""

    def __init__(self):
        self._sessions: dict[int, Session] = {}
        self._lock = threading.Lock()

    def open(
        self,
        name: str = "",
        default_plan: str | None = None,
        default_timeout: float | None = None,
    ) -> Session:
        session = Session(
            session_id=next(_session_ids),
            name=name,
            default_plan=default_plan,
            default_timeout=default_timeout,
        )
        with self._lock:
            self._sessions[session.session_id] = session
        return session

    def get(self, session_id: int) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None or session.closed:
            raise SessionError(f"unknown or closed session {session_id}")
        return session

    def close(self, session_id: int) -> Session:
        session = self.get(session_id)
        with self._lock:
            session.closed = True
            del self._sessions[session_id]
        return session

    def active(self) -> list[Session]:
        with self._lock:
            return list(self._sessions.values())

    def close_all(self) -> None:
        with self._lock:
            for session in self._sessions.values():
                session.closed = True
            self._sessions.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
