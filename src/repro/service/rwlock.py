"""A reader/writer gate: many concurrent queries, exclusive loads.

The query read path (store record lookups, index probes, buffer pool)
is made thread-safe by fine-grained locks one layer down, but a *load*
rewrites shared structures wholesale — it appends pages, replaces the
metadata catalog, and rebuilds both indexes.  Queries must not observe
that half-done.  :class:`ReadWriteLock` is the gate: any number of
readers (queries) share it; a writer (load, drop, compact, repair)
waits for in-flight readers to drain, excludes everything while it
runs, and hands back to the readers when done.

Writers are preferred: once a writer is waiting, new readers queue
behind it, so a steady query stream cannot starve a load forever.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """Writer-preference reader/writer lock built on one condition."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._reads_admitted = 0

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            self._reads_admitted += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # ------------------------------------------------------------------
    # Introspection (tests, stats)
    # ------------------------------------------------------------------
    @property
    def active_readers(self) -> int:
        with self._cond:
            return self._readers

    @property
    def reads_admitted(self) -> int:
        """Monotonic count of granted read acquisitions — lets a
        paced writer tell whether readers are contending for the gate
        (the count moved) or the service is idle (it did not)."""
        with self._cond:
            return self._reads_admitted

    @property
    def writer_active(self) -> bool:
        with self._cond:
            return self._writer_active
