"""Normalized AST fingerprints — the plan-cache key.

Two query texts that parse to the same shape must share one plan-cache
entry, no matter how they are formatted or what their variables are
called.  The fingerprint therefore hashes a *canonical form* of the
parsed AST, not the text:

* whitespace and layout vanish in parsing;
* variables are alpha-renamed in binding order (``$a`` and ``$author``
  in the same position become the same canonical name), so the paper's
  Query 1 written with different variable names is one cache entry;
* everything else — tags, document names, literals, operators, axes,
  sort directions — is preserved verbatim, because it changes the
  result.

The canonical form is a nested tuple of primitives; the fingerprint is
a SHA-256 prefix over its ``repr``.  Free (unbound) variables keep
their own names prefixed with ``?`` — queries differing only in a free
variable name are *not* unified, since their meaning depends on the
environment.
"""

from __future__ import annotations

import hashlib

from ..query.ast import (
    AggregateCall,
    AndExpr,
    Comparison,
    CountCall,
    DistinctValues,
    DocumentCall,
    ElementConstructor,
    EmbeddedExpr,
    Expr,
    FLWR,
    ForClause,
    LetClause,
    NumberLiteral,
    PathExpr,
    SortKey,
    Step,
    StepPredicate,
    StringLiteral,
    TextItem,
    VarRef,
)
from ..query.parser import parse_query

#: Width of the hex fingerprint (128 bits of SHA-256 — collision-safe
#: for any realistic cache population).
FINGERPRINT_HEX_CHARS = 32


def canonicalize(expr: Expr) -> tuple:
    """The canonical (alpha-renamed, order-preserving) form of an AST."""
    return _canon(expr, {})


def fingerprint_expr(expr: Expr) -> str:
    """Fingerprint of a parsed query expression."""
    digest = hashlib.sha256(repr(canonicalize(expr)).encode("utf-8"))
    return digest.hexdigest()[:FINGERPRINT_HEX_CHARS]


def fingerprint_text(text: str) -> str:
    """Parse ``text`` and fingerprint it (convenience for callers that
    do not keep the AST around)."""
    return fingerprint_expr(parse_query(text))


def _canon(node: object, env: dict[str, str]) -> tuple:
    """Recursive canonicalization.  ``env`` maps source variable names
    to canonical ones (``v0``, ``v1``, ... in binding order)."""
    if isinstance(node, StringLiteral):
        return ("str", node.value)
    if isinstance(node, NumberLiteral):
        return ("num", node.text)
    if isinstance(node, VarRef):
        return ("var", env.get(node.name, "?" + node.name))
    if isinstance(node, DocumentCall):
        return ("doc", node.name)
    if isinstance(node, DistinctValues):
        return ("distinct", _canon(node.argument, env))
    if isinstance(node, CountCall):
        return ("count", _canon(node.argument, env))
    if isinstance(node, AggregateCall):
        return ("agg", node.function, _canon(node.argument, env))
    if isinstance(node, PathExpr):
        return (
            "path",
            _canon(node.base, env),
            tuple(_canon_step(step, env) for step in node.steps),
        )
    if isinstance(node, Comparison):
        return ("cmp", node.op, _canon(node.left, env), _canon(node.right, env))
    if isinstance(node, AndExpr):
        return ("and", tuple(_canon(part, env) for part in node.parts))
    if isinstance(node, FLWR):
        return _canon_flwr(node, env)
    if isinstance(node, ElementConstructor):
        return (
            "elem",
            node.tag,
            tuple(node.attributes),
            tuple(_canon(item, env) for item in node.items),
        )
    if isinstance(node, TextItem):
        return ("text", node.text)
    if isinstance(node, EmbeddedExpr):
        return ("embed", _canon(node.expr, env))
    raise TypeError(f"cannot canonicalize {type(node).__name__}")  # pragma: no cover


def _canon_step(step: Step, env: dict[str, str]) -> tuple:
    predicate = step.predicate
    canon_pred = (
        None
        if predicate is None
        else (predicate.path, predicate.op, _canon(predicate.right, env))
    )
    return ("step", step.axis, step.name, canon_pred)


def _canon_flwr(node: FLWR, env: dict[str, str]) -> tuple:
    # Clauses bind left to right; each clause's source sees the bindings
    # made before it, the WHERE/RETURN see them all.
    scope = dict(env)
    clauses: list[tuple] = []
    for clause in node.clauses:
        source = _canon(clause.source, scope)
        canonical = f"v{len(scope)}"
        scope[clause.var] = canonical
        kind = "for" if isinstance(clause, ForClause) else "let"
        clauses.append((kind, canonical, source))
    where = None if node.where is None else _canon(node.where, scope)
    ret = _canon(node.ret, scope)
    sortby = tuple((key.path, key.direction) for key in node.sortby)
    return ("flwr", tuple(clauses), where, ret, sortby)
