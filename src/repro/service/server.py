"""A hardened, line-oriented TCP front end for the query service.

One request per line, one response per line — trivially scriptable
with ``nc`` and trivially testable with a raw socket.  Each connection
gets its own :class:`~repro.service.session.Session`; the protocol is
documented in ``docs/service.md``.

Requests (UTF-8, newline-terminated)::

    PING
    HEALTH
    QUERY {"q": "FOR $b IN ...", "plan": "groupby", "timeout": 2.5}
    EXPLAIN {"q": "...", "verbose": true}
    LOAD {"name": "bib.xml", "chunk": "<bib>...", "final": true}
    STATS
    SESSION
    QUIT

Responses::

    OK {...json payload...}
    ERR {"kind": "QueryTimeoutError", "message": "..."}
    BYE

Application errors never tear down the connection; *stream* errors do.
The two cases that close after an ``ERR``:

* an **oversized request line** — the rest of the line is still in
  flight, so the next ``readline`` would parse garbage; the only safe
  answer is ``ERR`` then close;
* an **idle timeout** — a connection that sends no complete request
  within ``idle_timeout`` seconds is disconnected (the same clock
  bounds a slow-loris client trickling one byte at a time, because it
  resets per completed *line*, not per byte).

The server mirrors the deterministic fault discipline of
``repro.storage.faults`` at the network edge:

* **write deadlines** — a response send that blocks longer than
  ``write_timeout`` aborts the connection instead of pinning the
  handler thread on a dead or stalled client;
* a **connection cap** — above ``max_connections`` a new connection is
  answered with one ``ERR ServerOverloadedError`` line and closed
  (shedding), so overload degrades crisply instead of oversubscribing;
* **graceful drain** — :meth:`ServiceServer.drain` stops accepting,
  says ``BYE`` to idle connections, lets in-flight requests finish
  within a grace budget, then cancels and force-closes what remains;
* a **HEALTH command** reporting readiness/liveness: drain state,
  queue depth, connection count, and whether the store is degraded
  (quarantined pages).

The server is a ``ThreadingTCPServer``: each connection runs in its
own thread and submits through the shared service, so admission
control and the worker pool govern total concurrency, not the socket
count.
"""

from __future__ import annotations

import json
import socket
import socketserver
import sys
import threading
import time
from dataclasses import dataclass

from ..errors import (
    ProtocolError,
    ReproError,
    ServerDrainingError,
    ServerOverloadedError,
    ServiceError,
)
from ..observability import CounterSnapshot
from .service import QueryService, ServiceResult

#: Refuse absurd request lines before json-decoding them (1 MiB).
MAX_LINE_BYTES = 1 << 20


@dataclass(frozen=True)
class ServerConfig:
    """Resilience knobs for the TCP front end.

    ``idle_timeout`` is per *completed request line*: a client may
    think between requests for that long, but may not trickle a single
    request forever (slow-loris).  ``write_timeout`` bounds each
    response send.  ``poll_interval`` is how quickly blocked reads
    notice a drain — purely an internal responsiveness knob.
    """

    idle_timeout: float = 30.0
    write_timeout: float = 10.0
    max_connections: int = 64
    drain_grace: float = 5.0
    poll_interval: float = 0.1

    def __post_init__(self):
        if self.idle_timeout <= 0 or self.write_timeout <= 0:
            raise ServiceError("server timeouts must be positive")
        if self.max_connections < 1:
            raise ServiceError("server needs at least one connection slot")
        if self.poll_interval <= 0:
            raise ServiceError("poll interval must be positive")


class ServerStatistics:
    """Forward-only counters for the network edge (same discipline as
    the service counters: snapshot and subtract for deltas)."""

    __slots__ = (
        "connections_accepted",
        "connections_shed",
        "connections_aborted",
        "idle_disconnects",
        "oversized_requests",
        "write_timeouts",
        "requests_received",
        "drains_started",
        "drain_forced_closes",
        "handler_crashes",
        "_lock",
    )

    def __init__(self):
        for name in self.__slots__[:-1]:
            setattr(self, name, 0)
        self._lock = threading.Lock()

    def add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                f"server_{name}": getattr(self, name)
                for name in self.__slots__[:-1]
            }


@dataclass(frozen=True)
class DrainReport:
    """What a graceful drain accomplished."""

    clean: bool  # every connection finished within the grace budget
    forced_closes: int  # connections cancelled and closed at the budget
    grace_seconds: float
    elapsed_seconds: float

    def render(self) -> str:
        verdict = "clean" if self.clean else f"forced {self.forced_closes}"
        return (
            f"drain: {verdict} in {self.elapsed_seconds:.2f}s "
            f"(grace {self.grace_seconds:g}s)"
        )


def encode_result(outcome: ServiceResult) -> dict:
    """The JSON payload for a completed query."""
    return {
        "rows": len(outcome),
        "xml": outcome.result.to_xml(indent=None),
        "plan_mode": outcome.plan_mode,
        "cached": outcome.cached,
        "plan_cached": outcome.plan_cached,
        "fingerprint": outcome.fingerprint,
        "generation": outcome.generation,
        "queue_wait_seconds": outcome.queue_wait_seconds,
        "elapsed_seconds": outcome.result.elapsed_seconds,
    }


class _ClientGone(Exception):
    """Internal: the client vanished (or stalled) mid-response."""


class _OversizedLine(Exception):
    """Internal: a request line exceeded :data:`MAX_LINE_BYTES`."""


#: Distinct from ``None`` (no complete line yet) and ``b""`` (an empty
#: request line, which is a protocol error but keeps the connection).
_EOF = object()


class _LineReader:
    """Incremental newline-framed reads over a raw socket.

    ``poll`` blocks at most ``interval`` seconds and returns one of:
    a complete line (without the newline), ``None`` (nothing complete
    yet — the caller re-checks idle/drain state and polls again), or
    :data:`_EOF` (connection over).  Buffering is explicit, so a
    timeout mid-line never corrupts the stream the way a buffered
    ``makefile`` reader would.
    """

    __slots__ = ("sock", "max_line", "buffer")

    def __init__(self, sock: socket.socket, max_line: int):
        self.sock = sock
        self.max_line = max_line
        self.buffer = bytearray()

    def poll(self, interval: float):
        line = self._pop_line()
        if line is not None:
            return line
        self.sock.settimeout(interval)
        try:
            chunk = self.sock.recv(65536)
        except TimeoutError:
            return None
        except OSError:
            return _EOF  # reset / closed under us: same as a hang-up
        if not chunk:
            return _EOF  # orderly EOF (a partial line is discarded)
        self.buffer += chunk
        return self._pop_line()

    def _pop_line(self):
        cut = self.buffer.find(b"\n")
        if cut < 0:
            if len(self.buffer) > self.max_line:
                raise _OversizedLine(
                    f"request line exceeds {self.max_line} bytes"
                )
            return None
        if cut > self.max_line:
            raise _OversizedLine(f"request line exceeds {self.max_line} bytes")
        line = bytes(self.buffer[:cut])
        del self.buffer[: cut + 1]
        return line


class _Handler(socketserver.BaseRequestHandler):
    """One client connection: a session plus a request loop."""

    server: "ServiceServer"

    def setup(self) -> None:  # noqa: D102 - socketserver contract
        self._busy = False
        self._active_ticket = None
        # Partial LOAD bodies, keyed by document name.  Request lines
        # are capped at MAX_LINE_BYTES, so large documents arrive as a
        # sequence of LOAD chunks ending with "final": true.
        self._load_buffers: dict[str, list[str]] = {}
        # Streaming ingests ("stream": true LOADs), keyed by document
        # name.  Unlike buffered LOADs these commit batches as chunks
        # arrive; a disconnect mid-stream aborts the ingest but keeps
        # every committed batch.
        self._ingests: dict[str, object] = {}
        try:
            self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass

    def handle(self) -> None:  # noqa: D102 - socketserver contract
        server = self.server
        config = server.config
        stats = server.server_stats
        if not server._register(self):
            stats.add("connections_shed")
            if server.draining:
                shed: ReproError = ServerDrainingError(
                    "server is draining; no new connections"
                )
            else:
                shed = ServerOverloadedError(
                    f"connection cap ({config.max_connections}) reached; "
                    "shedding this connection"
                )
            self._best_effort_send(_err(shed))
            return
        try:
            self._serve_connection()
        finally:
            server._deregister(self)

    def _serve_connection(self) -> None:
        server = self.server
        config = server.config
        stats = server.server_stats
        service = server.service
        session = service.open_session(name=f"tcp:{self.client_address[0]}")
        reader = _LineReader(self.request, MAX_LINE_BYTES)
        idle_since = time.monotonic()
        try:
            while True:
                if server.draining:
                    self._best_effort_send("BYE")
                    return
                try:
                    raw = reader.poll(config.poll_interval)
                except _OversizedLine as error:
                    # The rest of the oversized line is still in the
                    # socket; answering and carrying on would desync
                    # the stream — answer ERR, then close.
                    stats.add("oversized_requests")
                    self._best_effort_send(_err(ProtocolError(str(error))))
                    return
                if raw is _EOF:
                    return  # client hung up
                if raw is None:
                    if time.monotonic() - idle_since >= config.idle_timeout:
                        stats.add("idle_disconnects")
                        self._best_effort_send(
                            _err(
                                ProtocolError(
                                    "no complete request within "
                                    f"{config.idle_timeout:g}s; closing"
                                )
                            )
                        )
                        return
                    continue
                idle_since = time.monotonic()
                stats.add("requests_received")
                try:
                    self._busy = True
                    try:
                        reply = self._dispatch(raw, session)
                    finally:
                        self._busy = False
                except ReproError as error:
                    reply = _err(error)
                except json.JSONDecodeError as error:
                    reply = _err(ProtocolError(f"bad JSON argument: {error}"))
                try:
                    if reply is None:
                        self._send("BYE")
                        return
                    self._send(reply)
                except _ClientGone:
                    # The client disconnected mid-response.  Swallowing
                    # the send error (instead of letting the handler
                    # thread die with a traceback) keeps the session
                    # accounting below intact.
                    stats.add("connections_aborted")
                    session.aborted += 1
                    return
        finally:
            # A connection that vanished mid-stream leaves the store at
            # the last committed batch: abort (never finish) whatever
            # ingests it still had open.
            for ingest in list(self._ingests.values()):
                try:
                    ingest.abort()
                except ReproError:  # pragma: no cover - best effort
                    pass
            self._ingests.clear()
            try:
                service.close_session(session.session_id)
            except ReproError:
                pass  # already closed (service shutdown)

    def _dispatch(self, raw: bytes, session) -> str | None:
        line = raw.decode("utf-8", errors="replace").strip()
        if not line:
            raise ProtocolError("empty request line")
        command, _, argument = line.partition(" ")
        command = command.upper()
        server = self.server
        service = server.service
        if command == "PING":
            return "OK " + json.dumps({"pong": True})
        if command == "QUIT":
            return None
        if command == "HEALTH":
            return "OK " + json.dumps(server.health())
        if command == "STATS":
            from ..observability import snapshot_counters

            # Storage/index counters first (ingest progress, incremental
            # index maintenance, buffer pool); the service and server
            # layers' keys are prefixed, so they never collide.
            data = snapshot_counters(service.db.store, service.db.indexes).as_dict()
            data.update(service.stats().as_dict())
            data.update(server.stats().as_dict())
            return "OK " + json.dumps(data)
        if command == "SESSION":
            return "OK " + json.dumps(session.snapshot())
        if command == "QUERY":
            spec = _spec(argument)
            ticket = service.submit(
                _required(spec, "q"),
                plan=spec.get("plan"),
                timeout=spec.get("timeout"),
                session=session,
            )
            # Exposed so a drain past its grace budget can cancel the
            # in-flight query instead of stranding this thread.
            self._active_ticket = ticket
            try:
                outcome = ticket.result()
            finally:
                self._active_ticket = None
            return "OK " + json.dumps(encode_result(outcome))
        if command == "EXPLAIN":
            spec = _spec(argument)
            explanation = service.db.explain(
                _required(spec, "q"), verbose=bool(spec.get("verbose", False))
            )
            return "OK " + json.dumps(
                {"text": explanation.render(), "plans": explanation.to_dict()}
            )
        if command == "LOAD":
            spec = _spec(argument)
            name = _required(spec, "name")
            chunk = spec.get("chunk", "")
            if not isinstance(chunk, str):
                raise ProtocolError("LOAD chunk must be a string")
            if bool(spec.get("stream", False)):
                return self._load_streaming(spec, name, chunk)
            parts = self._load_buffers.setdefault(name, [])
            parts.append(chunk)
            if not bool(spec.get("final", True)):
                return "OK " + json.dumps(
                    {"received": sum(len(part) for part in parts)}
                )
            text = "".join(self._load_buffers.pop(name))
            report = service.load_text(text, name)
            return "OK " + json.dumps(
                {
                    "document": report.document,
                    "nodes": report.nodes,
                    "generation": report.generation,
                    "columnar": report.columnar,
                }
            )
        raise ProtocolError(f"unknown command {command!r}")

    def _load_streaming(self, spec: dict, name: str, chunk: str) -> str:
        """A ``"stream": true`` LOAD chunk: feed the connection's ingest
        session, committing batches as they fill.

        Non-final chunks answer with progress (batches committed so far
        and this chunk's commit events); the final chunk answers with
        the full load report.  Any error aborts the ingest — committed
        batches stay, the in-flight batch is never visible.
        """
        service = self.server.service
        ingest = self._ingests.get(name)
        if ingest is None:
            batch_size = spec.get("batch_size")
            if batch_size is not None and not isinstance(batch_size, int):
                raise ProtocolError("LOAD batch_size must be an integer")
            ingest = service.begin_ingest(name, batch_size=batch_size)
            self._ingests[name] = ingest
        batches_before = ingest.batches_committed
        try:
            events = ingest.feed(chunk)
            if not bool(spec.get("final", True)):
                return "OK " + json.dumps(
                    {
                        "streaming": True,
                        "batches": ingest.batches_committed,
                        "nodes_streamed": ingest.nodes_streamed,
                        "events": [_progress_payload(event) for event in events],
                    }
                )
            report = ingest.finish()
        except ReproError:
            ingest.abort()
            self._ingests.pop(name, None)
            raise
        self._ingests.pop(name, None)
        # The final reply's events cover this call's feed *and* the
        # final partial batch finish() committed.
        final_events = [
            event for event in report.progress if event.batch > batches_before
        ]
        return "OK " + json.dumps(
            {
                "document": report.document,
                "nodes": report.nodes,
                "generation": report.generation,
                "columnar": report.columnar,
                "batches": report.batches,
                "nodes_streamed": report.nodes_streamed,
                "events": [_progress_payload(event) for event in final_events],
            }
        )

    def _send(self, reply: str) -> None:
        payload = reply.encode("utf-8") + b"\n"
        self.request.settimeout(self.server.config.write_timeout)
        try:
            self.request.sendall(payload)
        except OSError as error:
            if isinstance(error, TimeoutError):
                self.server.server_stats.add("write_timeouts")
            raise _ClientGone from error

    def _best_effort_send(self, reply: str) -> None:
        try:
            self._send(reply)
        except _ClientGone:
            pass

    def force_abort(self, reason: str) -> None:
        """Called by a drain whose grace budget expired: cancel the
        in-flight query (the worker unwinds at its next checkpoint)
        and close the socket so a blocked read/write returns."""
        ticket = self._active_ticket
        if ticket is not None:
            ticket.cancel(reason)
        try:
            self.request.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.request.close()
        except OSError:
            pass


def _progress_payload(event) -> dict:
    """A :class:`~repro.ingest.session.BatchProgress` as wire JSON."""
    return {
        "batch": event.batch,
        "nodes_in_batch": event.nodes_in_batch,
        "nodes_total": event.nodes_total,
        "generation": event.generation,
    }


def _spec(argument: str) -> dict:
    if not argument:
        raise ProtocolError("command needs a JSON argument")
    spec = json.loads(argument)
    if not isinstance(spec, dict):
        raise ProtocolError("JSON argument must be an object")
    return spec


def _required(spec: dict, key: str) -> str:
    value = spec.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"missing required string field {key!r}")
    return value


def _err(error: Exception) -> str:
    return "ERR " + json.dumps(
        {"kind": type(error).__name__, "message": str(error)}
    )


class ServiceServer(socketserver.ThreadingTCPServer):
    """The TCP server bound to one :class:`QueryService`.

    ``port=0`` binds an ephemeral port (tests); ``server_address``
    reports the real one after construction.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        config: ServerConfig | None = None,
    ):
        self.service = service
        self.config = config or ServerConfig()
        self.server_stats = ServerStatistics()
        self._handlers: set[_Handler] = set()
        self._registry_lock = threading.Lock()
        self._draining = False
        self._serving = threading.Event()
        super().__init__((host, port), _Handler)

    # ------------------------------------------------------------------
    # Connection registry
    # ------------------------------------------------------------------
    def _register(self, handler: _Handler) -> bool:
        with self._registry_lock:
            if self._draining:
                return False
            if len(self._handlers) >= self.config.max_connections:
                return False
            self._handlers.add(handler)
        self.server_stats.add("connections_accepted")
        return True

    def _deregister(self, handler: _Handler) -> None:
        with self._registry_lock:
            self._handlers.discard(handler)

    def active_connections(self) -> int:
        with self._registry_lock:
            return len(self._handlers)

    # ------------------------------------------------------------------
    # Health and observability
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def health(self) -> dict:
        """Readiness/liveness for the ``HEALTH`` command (and load
        balancers): drain state, queue depth, connection pressure, and
        storage degradation (quarantined pages survive restarts, so a
        degraded store stays visible here until repaired)."""
        service = self.service
        store = service.db.store
        quarantined = len(getattr(store.meta, "quarantined_pages", ()) or ())
        degraded = quarantined > 0
        draining = self._draining
        ingesting = service.ingesting
        if draining:
            status = "draining"
        elif degraded:
            status = "degraded"
        elif ingesting:
            # Still ready (reads run between batches), but degraded:
            # write gate contention and per-batch cache invalidation
            # mean reduced throughput until the ingest finishes.
            status = "degraded:ingesting"
        else:
            status = "ok"
        return {
            "status": status,
            "live": True,
            "ready": not draining and not service.closed,
            "draining": draining,
            "ingesting": ingesting,
            "degraded_store": degraded,
            "quarantined_pages": quarantined,
            "queue_depth": service.queue_size(),
            "queue_capacity": service.config.queue_depth,
            "workers": service.config.workers,
            "active_connections": self.active_connections(),
            "max_connections": self.config.max_connections,
            "generation": store.generation,
        }

    def stats(self) -> CounterSnapshot:
        """The network edge's counters (``server_*``-prefixed, so they
        merge into the service snapshot without collisions)."""
        data = self.server_stats.snapshot()
        data["server_active_connections"] = self.active_connections()
        data["server_draining"] = int(self._draining)
        return CounterSnapshot(data)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def endpoint(self) -> tuple[str, int]:
        return self.server_address[:2]

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving.set()
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving.clear()

    def serve_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests, embedding). ``shutdown()``
        stops it."""
        thread = threading.Thread(
            target=self.serve_forever, name="timber-service-server", daemon=True
        )
        thread.start()
        return thread

    def drain(self, grace: float | None = None) -> DrainReport:
        """Graceful shutdown of the network edge.

        Tells idle connections ``BYE`` (their read loops notice within
        ``poll_interval``), waits up to ``grace`` seconds for in-flight
        requests to finish, then cancels and force-closes whatever
        remains.  While the drain runs the accept loop stays up so new
        connections get a crisp ``ERR ServerDrainingError`` instead of
        hanging in the kernel backlog; it is shut down as the drain's
        last act.  Returns a :class:`DrainReport`; ``clean`` means
        nothing was forced.  The service itself is *not* closed — the
        caller owns that.
        """
        grace = self.config.drain_grace if grace is None else grace
        started = time.monotonic()
        self._draining = True
        self.server_stats.add("drains_started")
        deadline = started + grace
        while time.monotonic() < deadline:
            if self.active_connections() == 0:
                break
            time.sleep(min(0.01, self.config.poll_interval))
        with self._registry_lock:
            leftovers = list(self._handlers)
        for handler in leftovers:
            handler.force_abort("server drain grace expired")
            self.server_stats.add("drain_forced_closes")
        # Give forced handlers a bounded moment to unwind, so callers
        # can trust active_connections() after a drain.
        settle = time.monotonic() + 10 * self.config.poll_interval
        while leftovers and time.monotonic() < settle:
            if self.active_connections() == 0:
                break
            time.sleep(min(0.01, self.config.poll_interval))
        if self._serving.is_set():
            self.shutdown()  # stop the accept loop
        return DrainReport(
            clean=not leftovers,
            forced_closes=len(leftovers),
            grace_seconds=grace,
            elapsed_seconds=time.monotonic() - started,
        )

    def handle_error(self, request, client_address) -> None:  # noqa: D102
        # A handler died on something we did not anticipate.  Count it
        # (the soak asserts this stays zero) and keep the server up.
        self.server_stats.add("handler_crashes")
        kind = sys.exc_info()[0]
        name = kind.__name__ if kind else "unknown"
        print(
            f"timber-service: handler for {client_address} crashed: {name}",
            file=sys.stderr,
        )


def serve(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    config: ServerConfig | None = None,
) -> ServiceServer:
    """Bind a :class:`ServiceServer`; the caller decides foreground
    (``serve_forever``) or background (``serve_background``)."""
    return ServiceServer(service, host, port, config)
