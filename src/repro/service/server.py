"""A line-oriented TCP front end for the query service.

One request per line, one response per line — trivially scriptable
with ``nc`` and trivially testable with a raw socket.  Each connection
gets its own :class:`~repro.service.session.Session`; the protocol is
documented in ``docs/service.md``.

Requests (UTF-8, newline-terminated)::

    PING
    QUERY {"q": "FOR $b IN ...", "plan": "groupby", "timeout": 2.5}
    EXPLAIN {"q": "...", "verbose": true}
    STATS
    SESSION
    QUIT

Responses::

    OK {...json payload...}
    ERR {"kind": "QueryTimeoutError", "message": "..."}
    BYE

Errors never tear down the connection (except protocol-level garbage
after which the client is out of sync anyway — still answered with
``ERR`` and the connection stays open).  The server is a
``ThreadingTCPServer``: each connection runs in its own thread and
submits through the shared service, so admission control and the
worker pool govern total concurrency, not the socket count.
"""

from __future__ import annotations

import json
import socketserver
import threading

from ..errors import ProtocolError, ReproError
from .service import QueryService, ServiceResult

#: Refuse absurd request lines before json-decoding them (1 MiB).
MAX_LINE_BYTES = 1 << 20


def encode_result(outcome: ServiceResult) -> dict:
    """The JSON payload for a completed query."""
    return {
        "rows": len(outcome),
        "xml": outcome.result.to_xml(indent=None),
        "plan_mode": outcome.plan_mode,
        "cached": outcome.cached,
        "plan_cached": outcome.plan_cached,
        "fingerprint": outcome.fingerprint,
        "generation": outcome.generation,
        "queue_wait_seconds": outcome.queue_wait_seconds,
        "elapsed_seconds": outcome.result.elapsed_seconds,
    }


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: a session plus a request loop."""

    server: "ServiceServer"

    def handle(self) -> None:  # noqa: D102 - socketserver contract
        service = self.server.service
        session = service.open_session(name=f"tcp:{self.client_address[0]}")
        try:
            while True:
                raw = self.rfile.readline(MAX_LINE_BYTES + 1)
                if not raw:
                    return  # client hung up
                try:
                    reply = self._dispatch(raw, session)
                except ReproError as error:
                    reply = _err(error)
                except json.JSONDecodeError as error:
                    reply = _err(ProtocolError(f"bad JSON argument: {error}"))
                if reply is None:
                    self._send("BYE")
                    return
                self._send(reply)
        finally:
            try:
                service.close_session(session.session_id)
            except ReproError:
                pass  # already closed (service shutdown)

    def _dispatch(self, raw: bytes, session) -> str | None:
        if len(raw) > MAX_LINE_BYTES:
            raise ProtocolError(f"request line exceeds {MAX_LINE_BYTES} bytes")
        line = raw.decode("utf-8", errors="replace").strip()
        if not line:
            raise ProtocolError("empty request line")
        command, _, argument = line.partition(" ")
        command = command.upper()
        service = self.server.service
        if command == "PING":
            return "OK " + json.dumps({"pong": True})
        if command == "QUIT":
            return None
        if command == "STATS":
            return "OK " + json.dumps(service.stats().as_dict())
        if command == "SESSION":
            return "OK " + json.dumps(session.snapshot())
        if command == "QUERY":
            spec = _spec(argument)
            outcome = service.query(
                _required(spec, "q"),
                plan=spec.get("plan"),
                timeout=spec.get("timeout"),
                session=session,
            )
            return "OK " + json.dumps(encode_result(outcome))
        if command == "EXPLAIN":
            spec = _spec(argument)
            explanation = service.db.explain(
                _required(spec, "q"), verbose=bool(spec.get("verbose", False))
            )
            return "OK " + json.dumps(
                {"text": explanation.render(), "plans": explanation.to_dict()}
            )
        raise ProtocolError(f"unknown command {command!r}")

    def _send(self, reply: str) -> None:
        self.wfile.write(reply.encode("utf-8") + b"\n")
        self.wfile.flush()


def _spec(argument: str) -> dict:
    if not argument:
        raise ProtocolError("command needs a JSON argument")
    spec = json.loads(argument)
    if not isinstance(spec, dict):
        raise ProtocolError("JSON argument must be an object")
    return spec


def _required(spec: dict, key: str) -> str:
    value = spec.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"missing required string field {key!r}")
    return value


def _err(error: Exception) -> str:
    return "ERR " + json.dumps(
        {"kind": type(error).__name__, "message": str(error)}
    )


class ServiceServer(socketserver.ThreadingTCPServer):
    """The TCP server bound to one :class:`QueryService`.

    ``port=0`` binds an ephemeral port (tests); ``server_address``
    reports the real one after construction.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: QueryService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        super().__init__((host, port), _Handler)

    @property
    def endpoint(self) -> tuple[str, int]:
        return self.server_address[:2]

    def serve_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests, embedding). ``shutdown()``
        stops it."""
        thread = threading.Thread(
            target=self.serve_forever, name="timber-service-server", daemon=True
        )
        thread.start()
        return thread


def serve(service: QueryService, host: str = "127.0.0.1", port: int = 0) -> ServiceServer:
    """Bind a :class:`ServiceServer`; the caller decides foreground
    (``serve_forever``) or background (``serve_background``)."""
    return ServiceServer(service, host, port)
