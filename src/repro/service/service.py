"""The concurrent query service: TIMBER as a *server*, not a library.

The paper describes TIMBER as a multi-component database server
(Fig. 12); :class:`QueryService` is that front door over the embedded
:class:`~repro.query.database.Database`:

* a **worker pool** executes queries concurrently over the (now
  thread-safe) shared read path;
* **admission control** bounds the waiting queue — when it is full,
  :meth:`submit` fails fast with
  :class:`~repro.errors.AdmissionError` instead of letting latency
  grow without bound (backpressure);
* **per-query deadlines** (measured from submission, so queue wait
  counts against the budget) cancel runaway queries at the next
  cooperative checkpoint, releasing buffer pins and the read gate on
  the way out;
* a **two-tier cache** — prepared plans keyed on the normalized AST
  fingerprint, results keyed on ``(fingerprint, mode, store
  generation)`` — is invalidated wholesale by the store's generation
  counter, which every mutation bumps;
* a **reader/writer gate** lets any number of queries share the store
  while loads, drops, compaction, and repair run exclusively.

Every cache hit/miss/eviction, admission rejection, timeout, and queue
wait flows into the same :class:`~repro.observability.CounterSnapshot`
machinery as the storage counters; profiled queries carry their
service-side counters in ``profile.totals``.
"""

from __future__ import annotations

import copy
import queue
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

from ..cancellation import Deadline, deadline_scope
from ..errors import (
    AdmissionError,
    QueryCancelledError,
    QueryTimeoutError,
    ServiceError,
)
from ..observability import CounterSnapshot
from ..query.database import Database, PlanMode, PreparedQuery, QueryResult
from ..xmlmodel.node import XMLNode
from .cache import LRUCache
from .fingerprint import fingerprint_expr
from .rwlock import ReadWriteLock
from .session import Session, SessionRegistry


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for a :class:`QueryService`.

    ``queue_depth`` bounds *waiting* requests only; up to ``workers``
    more are executing, so at most ``queue_depth + workers`` queries
    are in flight.  A cache with 0 entries is disabled.
    """

    workers: int = 4
    queue_depth: int = 32
    default_timeout: float | None = None
    plan_cache_entries: int = 128
    result_cache_entries: int = 256
    #: Hand out deep copies of cached result collections, so one
    #: client mutating its trees cannot poison the cache for others.
    copy_cached_results: bool = True
    #: Streaming-ingest duty-cycle throttle.  When readers are
    #: contending for the gate, the ingest idles before each batch
    #: commit for ``pacing`` x the time it spent working since its
    #: last pause (parse + drain + gate hold), capping the ingest's
    #: foreground share at ``1 / (1 + pacing)`` — the GIL and the
    #: write gate are both duty-cycled.  On an idle service (no read
    #: admissions since the previous batch) the pause is skipped
    #: entirely, so an uncontended load runs at full speed.  0
    #: disables pacing (ingest commits back-to-back, readers starve).
    ingest_pacing: float = 6.0

    def __post_init__(self):
        if self.workers < 1:
            raise ServiceError("service needs at least one worker")
        if self.queue_depth < 1:
            # queue.Queue treats 0 as "unbounded", which would silently
            # disable admission control — refuse it instead.
            raise ServiceError("queue depth must be >= 1")


class ServiceStatistics:
    """Forward-only counters for the service layer (same discipline as
    the storage counters: snapshot and subtract for deltas)."""

    __slots__ = (
        "submitted",
        "rejected",
        "completed",
        "failed",
        "timeouts",
        "cancelled",
        "queue_waits",
        "queue_wait_us_total",
        "peak_queue_depth",
        "_lock",
    )

    def __init__(self):
        for name in self.__slots__[:-1]:
            setattr(self, name, 0)
        self._lock = threading.Lock()

    def add(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def observe_queue_depth(self, depth: int) -> None:
        with self._lock:
            if depth > self.peak_queue_depth:
                self.peak_queue_depth = depth

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "queries_submitted": self.submitted,
                "admission_rejections": self.rejected,
                "queries_completed": self.completed,
                "queries_failed": self.failed,
                "query_timeouts": self.timeouts,
                "queries_cancelled": self.cancelled,
                "queue_waits": self.queue_waits,
                "queue_wait_us_total": self.queue_wait_us_total,
                "peak_queue_depth": self.peak_queue_depth,
            }


@dataclass
class ServiceResult:
    """A query outcome plus its trip through the service."""

    result: QueryResult
    fingerprint: str
    generation: int
    cached: bool = False  # served from the result cache
    plan_cached: bool = False  # plan came from the plan cache
    queue_wait_seconds: float = 0.0
    session_id: int | None = None

    @property
    def collection(self):
        return self.result.collection

    @property
    def profile(self):
        return self.result.profile

    @property
    def plan_mode(self) -> str:
        return self.result.plan_mode

    def __len__(self) -> int:
        return len(self.result.collection)


_SHUTDOWN = object()


class QueryTicket:
    """Future-like handle for a submitted query.

    ``result()`` blocks until the query completes, re-raising whatever
    the execution raised.  ``cancel()`` flips the query's deadline to
    cancelled: a queued ticket dies on dequeue, a running one unwinds
    at its next checkpoint.
    """

    def __init__(self, deadline: Deadline, session: Session | None):
        self.deadline = deadline
        self.session = session
        self.enqueued_at = time.perf_counter()
        self._done = threading.Event()
        self._value: ServiceResult | None = None
        self._error: BaseException | None = None

    def cancel(self, reason: str | None = None) -> None:
        self.deadline.cancel(reason)

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> ServiceResult:
        if not self._done.wait(timeout):
            raise TimeoutError("query has not completed yet")
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value

    # Called by the worker.
    def _finish(self, value: ServiceResult | None, error: BaseException | None) -> None:
        self._value = value
        self._error = error
        self._done.set()


@dataclass
class _Request:
    """What travels through the admission queue."""

    ticket: QueryTicket
    text: str
    plan: str | None
    analyze: bool = False
    extra: dict = field(default_factory=dict)


class QueryService:
    """Concurrent front door over one :class:`Database`."""

    def __init__(self, db: Database, config: ServiceConfig | None = None, **overrides):
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self.db = db
        self.config = config
        self.counters = ServiceStatistics()
        self.plan_cache = LRUCache(config.plan_cache_entries)
        self.result_cache = LRUCache(config.result_cache_entries)
        self.sessions = SessionRegistry()
        self._gate = ReadWriteLock()
        self._ingest_lock = threading.Lock()
        self._ingests: set["ServiceIngest"] = set()
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=config.queue_depth)
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"query-worker-{i}", daemon=True
            )
            for i in range(config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def open_session(
        self,
        name: str = "",
        default_plan: str | None = None,
        default_timeout: float | None = None,
    ) -> Session:
        return self.sessions.open(name, default_plan, default_timeout)

    def close_session(self, session_id: int) -> Session:
        return self.sessions.close(session_id)

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def submit(
        self,
        text: str,
        *,
        plan: str | None = None,
        session: Session | None = None,
        timeout: float | None = None,
        analyze: bool = False,
    ) -> QueryTicket:
        """Admit a query for asynchronous execution.

        Raises :class:`~repro.errors.AdmissionError` immediately when
        the waiting queue is full — the caller sheds or retries; no
        partial work happened.  The deadline clock starts *now*: time
        spent waiting in the queue counts against the budget.
        """
        if self._closed:
            raise ServiceError("the query service is shut down")
        if session is not None:
            if plan is None:
                plan = session.default_plan
            if timeout is None:
                timeout = session.default_timeout
        if timeout is None:
            timeout = self.config.default_timeout
        ticket = QueryTicket(Deadline(timeout), session)
        request = _Request(ticket=ticket, text=text, plan=plan, analyze=analyze)
        self.counters.add("submitted")
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self.counters.add("rejected")
            if session is not None:
                session.rejected += 1
            raise AdmissionError(
                f"admission queue full ({self.config.queue_depth} waiting); "
                "retry later"
            ) from None
        self.counters.observe_queue_depth(self._queue.qsize())
        return ticket

    def query(
        self,
        text: str,
        *,
        plan: str | None = None,
        session: Session | None = None,
        timeout: float | None = None,
        analyze: bool = False,
        wait: float | None = None,
    ) -> ServiceResult:
        """Submit and wait — the synchronous convenience wrapper."""
        return self.submit(
            text, plan=plan, session=session, timeout=timeout, analyze=analyze
        ).result(wait)

    # ------------------------------------------------------------------
    # Data mutation (write-gated)
    # ------------------------------------------------------------------
    def load_text(self, text: str, name: str):
        with self._gate.write_locked():
            report = self.db.load(text=text, name=name)
            self._drop_stale_results()
            return report

    def load_tree(self, root: XMLNode, name: str):
        with self._gate.write_locked():
            report = self.db.load(tree=root, name=name)
            self._drop_stale_results()
            return report

    def load_file(self, path: str, name: str | None = None):
        with self._gate.write_locked():
            report = self.db.load(path=path, name=name)
            self._drop_stale_results()
            return report

    # ------------------------------------------------------------------
    # Streaming ingest (write gate taken per batch, not per load)
    # ------------------------------------------------------------------
    def begin_ingest(
        self,
        name: str,
        *,
        batch_size: int | None = None,
        on_batch=None,
    ) -> "ServiceIngest":
        """Start a streaming ingest of one document.

        Unlike :meth:`load_text` — which holds the write gate for the
        whole load — a streaming ingest takes the gate *per batch
        commit*: readers run between batches, their plan/result caches
        invalidating at batch granularity (each commit bumps the store
        generation).  While the ingest is active the server's HEALTH
        reports ``degraded:ingesting``.
        """
        if self._closed:
            raise ServiceError("the query service is shut down")
        ingest = ServiceIngest(self, name, batch_size=batch_size, on_batch=on_batch)
        with self._ingest_lock:
            self._ingests.add(ingest)
        return ingest

    def load_stream(
        self,
        chunks,
        name: str,
        *,
        batch_size: int | None = None,
        on_batch=None,
    ):
        """Streaming ingest of a whole chunk iterable (or file-like, or
        string).  A mid-stream failure aborts the ingest but keeps every
        committed batch — the document stays readable at the last batch
        boundary."""
        from ..ingest.session import chunks_of

        ingest = self.begin_ingest(name, batch_size=batch_size, on_batch=on_batch)
        try:
            for chunk in chunks_of(chunks):
                ingest.feed(chunk)
        except BaseException:
            ingest.abort()
            raise
        return ingest.finish()

    @property
    def ingesting(self) -> bool:
        """True while any streaming ingest is active (HEALTH signal)."""
        with self._ingest_lock:
            return bool(self._ingests)

    def _end_ingest(self, ingest: "ServiceIngest") -> None:
        with self._ingest_lock:
            self._ingests.discard(ingest)

    def drop_document(self, name: str) -> None:
        with self._gate.write_locked():
            self.db.drop_document(name)
            self._drop_stale_results()

    def compact(self) -> None:
        with self._gate.write_locked():
            self.db.compact()
            self._drop_stale_results()

    def repair(self):
        with self._gate.write_locked():
            report = self.db.repair()
            self._drop_stale_results()
            return report

    def _drop_stale_results(self) -> None:
        """Eagerly drop result entries for older generations.

        Correctness never needs this — stale keys are simply never
        looked up again — but dropping them keeps the LRU full of
        entries that can still hit.
        """
        generation = self.db.store.generation
        self.result_cache.invalidate(lambda key: key[2] != generation)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> CounterSnapshot:
        """One immutable snapshot across the service layer: admission,
        queue-wait, timeout, and both cache tiers' counters."""
        data: dict[str, int] = {}
        data.update(self.counters.snapshot())
        for prefix, cache in (
            ("plan_cache", self.plan_cache),
            ("result_cache", self.result_cache),
        ):
            for key, value in cache.counters.snapshot().items():
                data[f"{prefix}_{key}"] = value
        return CounterSnapshot(data)

    def cache_hit_rate(self) -> float:
        """The result cache's lifetime hit ratio."""
        return self.result_cache.counters.hit_ratio()

    def queue_size(self) -> int:
        """Requests currently *waiting* for a worker (approximate, as
        any queue depth under concurrency is) — the readiness signal
        the server's ``HEALTH`` command reports."""
        return self._queue.qsize()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop accepting work, drain the queue, and stop the workers."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(_SHUTDOWN)  # FIFO: queued requests drain first
        if wait:
            for worker in self._workers:
                worker.join()
        self.sessions.close_all()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            request: _Request = item  # type: ignore[assignment]
            ticket = request.ticket
            waited = time.perf_counter() - ticket.enqueued_at
            self.counters.add("queue_waits")
            self.counters.add("queue_wait_us_total", int(waited * 1_000_000))
            try:
                result = self._execute(request, waited)
            except BaseException as error:  # noqa: BLE001 - relayed to the caller
                self._count_failure(error, ticket.session)
                ticket._finish(None, error)
            else:
                self.counters.add("completed")
                if ticket.session is not None:
                    session = ticket.session
                    session.queries += 1
                    session.last_active = time.time()
                    if result.cached:
                        session.cache_hits += 1
                ticket._finish(result, None)

    def _count_failure(self, error: BaseException, session: Session | None) -> None:
        if isinstance(error, QueryTimeoutError):
            self.counters.add("timeouts")
            if session is not None:
                session.timeouts += 1
        elif isinstance(error, QueryCancelledError):
            self.counters.add("cancelled")
        else:
            self.counters.add("failed")

    def _execute(self, request: _Request, waited: float) -> ServiceResult:
        with deadline_scope(request.ticket.deadline) as deadline:
            deadline.check()  # a queued ticket may already be dead
            with self._gate.read_locked():
                return self._execute_locked(request, waited)

    def _execute_locked(self, request: _Request, waited: float) -> ServiceResult:
        service_before = self.stats()
        prepared, fingerprint, plan_hit = self._prepared(request.text, request.plan)
        generation = self.db.store.generation
        result_key = (
            fingerprint,
            prepared.resolved.value,
            generation,
            prepared.stats_version,
        )
        cacheable = not request.analyze and self.result_cache.enabled
        if cacheable:
            hit = self.result_cache.get(result_key)
            if hit is not None:
                return ServiceResult(
                    result=self._from_cache(hit),
                    fingerprint=result_key[0],
                    generation=generation,
                    cached=True,
                    plan_cached=plan_hit,
                    queue_wait_seconds=waited,
                    session_id=_session_id(request.ticket.session),
                )
        # Shared counters must not be reset by concurrent queries —
        # deltas come from snapshots, never from zeroing.
        result = self.db.execute(
            prepared,
            analyze=request.analyze,
            reset_statistics=False,
        )
        if self.db.consume_feedback_flag(request.text):
            # The cost model's cardinality forecast diverged beyond the
            # feedback ratio: drop the cached plan so the next request
            # re-costs against the observed cardinalities.
            self.plan_cache.invalidate(
                lambda key, fp=fingerprint: key[0] == fp
            )
        if cacheable:
            self.result_cache.put(result_key, result)
        if result.profile is not None:
            delta = self.stats() - service_before
            delta = delta + CounterSnapshot(queue_wait_us=int(waited * 1_000_000))
            result.profile = replace(
                result.profile, totals=result.profile.totals + delta
            )
        return ServiceResult(
            result=result,
            fingerprint=result_key[0],
            generation=generation,
            cached=False,
            plan_cached=plan_hit,
            queue_wait_seconds=waited,
            session_id=_session_id(request.ticket.session),
        )

    def _prepared(self, text: str, plan: str | None) -> tuple[PreparedQuery, str, bool]:
        """Plan-cache lookup: fingerprint the parsed query, reuse the
        prepared plan when it was built against the current data
        generation, rebuild (and replace) otherwise."""
        mode = Database._coerce_plan_mode(plan)
        expr = self.db.parse(text)
        fingerprint = fingerprint_expr(expr)
        # The statistics version participates in the key: a statistics
        # refresh (load/compact/repair) must never serve a plan costed
        # against the stale statistics.
        key = (fingerprint, mode.value, self.db.statistics_version)
        if self.db.consume_feedback_flag(text):
            # A pending mis-estimate flag (raised by an execution whose
            # later requests were served from the result cache): drop
            # the plan so this request re-costs with the corrections.
            self.plan_cache.invalidate(lambda k, fp=fingerprint: k[0] == fp)
        entry = self.plan_cache.get(key)
        if entry is not None and entry.generation == self.db.store.generation:
            return entry, fingerprint, True
        prepared = self.db.prepare(text, plan=plan)
        self.plan_cache.put(key, prepared)
        return prepared, fingerprint, False

    def _from_cache(self, result: QueryResult) -> QueryResult:
        """A cache hit: a fresh :class:`QueryResult` whose statistics
        honestly say "no store work was done"."""
        collection = result.collection
        if self.config.copy_cached_results:
            collection = copy.deepcopy(collection)
        return QueryResult(
            collection=collection,
            plan_mode=result.plan_mode,
            elapsed_seconds=0.0,
            statistics={},
            plan=result.plan,
            profile=None,
            io_stats={},
        )


class ServiceIngest:
    """One streaming ingest running through the service's gates.

    Wraps an :class:`~repro.ingest.session.IngestSession` so that every
    batch commit (a) holds the service write gate — readers share the
    store between batches, never during a commit — and (b) eagerly
    drops result-cache entries from older generations.  ``finish``
    persists the index snapshot (directory-backed stores) and returns
    the same :class:`~repro.query.database.LoadReport` a streaming
    ``Database.load`` would.  ``abort`` keeps every committed batch:
    the document stays readable at the last batch boundary.
    """

    def __init__(self, service: QueryService, name: str, *, batch_size=None, on_batch=None):
        self.service = service
        self.name = name
        self._worked_since = time.perf_counter()
        self._reads_seen = service._gate.reads_admitted
        db = service.db
        db.indexes.ensure_built()

        def hook(progress):
            service._drop_stale_results()
            if on_batch is not None:
                on_batch(progress)

        from ..ingest.session import IngestSession

        self._session = IngestSession(
            db.store,
            name,
            batch_size=batch_size,
            indexes=db.indexes,
            on_batch=hook,
            commit_gate=self._paced_gate,
        )

    @contextmanager
    def _paced_gate(self):
        """The write gate plus the duty-cycle throttle.

        Before each commit: if any reader was admitted since the last
        pause ended (the gate's monotonic admission count moved), idle
        for ``ingest_pacing`` x the time this ingest has been working
        since then — parse, drain, and gate hold alike, because under
        the GIL parsing steals reader throughput just as surely as
        holding the gate does.  The pause itself is gate-free, so the
        blocked readers drain the queue at full speed.  When the count
        did not move the service is idle and the pause is skipped."""
        gate = self.service._gate
        pacing = self.service.config.ingest_pacing
        if pacing > 0 and gate.reads_admitted != self._reads_seen:
            pause = (
                time.perf_counter() - self._worked_since
            ) * pacing
            if pause > 0:
                time.sleep(pause)
        self._reads_seen = gate.reads_admitted
        self._worked_since = time.perf_counter()
        with gate.write_locked():
            yield

    # ------------------------------------------------------------------
    @property
    def batches_committed(self) -> int:
        return self._session.batches_committed

    @property
    def nodes_streamed(self) -> int:
        return self._session.nodes_streamed

    @property
    def progress(self):
        return self._session.progress

    @property
    def active(self) -> bool:
        return self._session.active

    # ------------------------------------------------------------------
    def feed(self, chunk: str):
        """Parse one chunk, committing every batch it fills; returns the
        :class:`~repro.ingest.session.BatchProgress` records this call
        committed."""
        return self._session.feed(chunk)

    def finish(self):
        """Final partial batch, index-snapshot persistence, report."""
        from ..query.database import LoadReport

        db = self.service.db
        try:
            info = self._session.finish()
        except BaseException:
            self.abort()
            raise
        if db.store.directory is not None:
            db.indexes.save(db.store.directory)
        self.service._end_ingest(self)
        return LoadReport(
            document=info.name,
            nodes=info.n_nodes,
            generation=db.store.generation,
            columnar=db._columnar_state(),
            batches=self._session.batches_committed,
            nodes_streamed=self._session.nodes_streamed,
            progress=tuple(self._session.progress),
        )

    def abort(self) -> None:
        """Stop the stream, keeping committed batches.  Idempotent."""
        self._session.abort()
        self.service._end_ingest(self)


def _session_id(session: Session | None) -> int | None:
    return None if session is None else session.session_id
