"""`repro.service` — the concurrent query service over the embedded Database.

Public surface:

* :class:`QueryService` / :class:`ServiceConfig` — the worker-pool
  front door: admission control, per-query deadlines, the two-tier
  plan/result cache, and the reader/writer gate around loads;
* :class:`QueryTicket` / :class:`ServiceResult` — the async handle and
  the enriched outcome (cache/queue metadata alongside the result);
* :class:`Session` / :class:`SessionRegistry` — per-client defaults
  and accounting;
* :func:`fingerprint_text` / :func:`fingerprint_expr` — the normalized
  AST fingerprint the caches key on;
* :class:`LRUCache` — the bounded cache both tiers are built from;
* :class:`ReadWriteLock` — the load/query gate;
* :func:`serve` / :class:`ServerConfig` (in
  :mod:`repro.service.server`) — the hardened line-oriented TCP front
  end behind ``timber-py serve``: idle/write timeouts, connection-cap
  shedding, ``HEALTH``, graceful drain;
* :class:`ServiceClient` / :class:`RetryPolicy` /
  :class:`CircuitBreaker` — the resilient client library: reconnects,
  exponential backoff with full jitter, idempotent-only replay, and a
  closed/open/half-open circuit breaker;
* :class:`ChaosProxy` / :class:`NetFaultPlan` — deterministic
  network-fault injection between client and server (the
  ``repro.storage.faults`` discipline, applied to sockets).
"""

from .cache import CacheStatistics, LRUCache
from .chaos import (
    NET_FAULT_PLAN_ENV,
    NO_NET_FAULTS,
    ChaosProxy,
    NetFaultPlan,
    NetFaultStatistics,
    net_plan_from_env,
)
from .client import (
    IDEMPOTENT_COMMANDS,
    BreakerConfig,
    CircuitBreaker,
    ClientStatistics,
    HealthReport,
    RetryPolicy,
    ServiceClient,
)
from .fingerprint import (
    FINGERPRINT_HEX_CHARS,
    canonicalize,
    fingerprint_expr,
    fingerprint_text,
)
from .rwlock import ReadWriteLock
from .server import DrainReport, ServerConfig, ServiceServer, serve
from .service import (
    QueryService,
    QueryTicket,
    ServiceConfig,
    ServiceResult,
    ServiceStatistics,
)
from .session import Session, SessionRegistry

__all__ = [
    "CacheStatistics",
    "LRUCache",
    "NET_FAULT_PLAN_ENV",
    "NO_NET_FAULTS",
    "ChaosProxy",
    "NetFaultPlan",
    "NetFaultStatistics",
    "net_plan_from_env",
    "IDEMPOTENT_COMMANDS",
    "BreakerConfig",
    "CircuitBreaker",
    "ClientStatistics",
    "HealthReport",
    "RetryPolicy",
    "ServiceClient",
    "FINGERPRINT_HEX_CHARS",
    "canonicalize",
    "fingerprint_expr",
    "fingerprint_text",
    "ReadWriteLock",
    "DrainReport",
    "ServerConfig",
    "ServiceServer",
    "serve",
    "QueryService",
    "QueryTicket",
    "ServiceConfig",
    "ServiceResult",
    "ServiceStatistics",
    "Session",
    "SessionRegistry",
]
