"""`repro.service` — the concurrent query service over the embedded Database.

Public surface:

* :class:`QueryService` / :class:`ServiceConfig` — the worker-pool
  front door: admission control, per-query deadlines, the two-tier
  plan/result cache, and the reader/writer gate around loads;
* :class:`QueryTicket` / :class:`ServiceResult` — the async handle and
  the enriched outcome (cache/queue metadata alongside the result);
* :class:`Session` / :class:`SessionRegistry` — per-client defaults
  and accounting;
* :func:`fingerprint_text` / :func:`fingerprint_expr` — the normalized
  AST fingerprint the caches key on;
* :class:`LRUCache` — the bounded cache both tiers are built from;
* :class:`ReadWriteLock` — the load/query gate;
* :func:`serve` (in :mod:`repro.service.server`) — the line-oriented
  TCP front end behind ``timber-py serve``.
"""

from .cache import CacheStatistics, LRUCache
from .fingerprint import (
    FINGERPRINT_HEX_CHARS,
    canonicalize,
    fingerprint_expr,
    fingerprint_text,
)
from .rwlock import ReadWriteLock
from .service import (
    QueryService,
    QueryTicket,
    ServiceConfig,
    ServiceResult,
    ServiceStatistics,
)
from .session import Session, SessionRegistry

__all__ = [
    "CacheStatistics",
    "LRUCache",
    "FINGERPRINT_HEX_CHARS",
    "canonicalize",
    "fingerprint_expr",
    "fingerprint_text",
    "ReadWriteLock",
    "QueryService",
    "QueryTicket",
    "ServiceConfig",
    "ServiceResult",
    "ServiceStatistics",
    "Session",
    "SessionRegistry",
]
