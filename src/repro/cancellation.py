"""Cooperative deadlines and cancellation for query execution.

Query evaluation in this repo is pure Python: there is no blocking
syscall to interrupt, so cancellation is *cooperative*.  The execution
engines (interpreter, pattern matcher, physical operators, store
materialization) call :func:`checkpoint` inside their hot loops; when a
:class:`Deadline` is active on the current thread and has expired (or
was cancelled), the checkpoint raises and the query unwinds through the
normal exception path — ``finally`` blocks release buffer pins and
locks on the way out.

The active deadline is thread-local, installed with
:func:`deadline_scope`.  Code outside any scope pays one attribute
lookup per checkpoint; engines never need to thread a deadline object
through their call graphs.

This module deliberately sits below every subsystem (like
:mod:`repro.errors`) so the storage, pattern, and query layers can
import it without touching :mod:`repro.service`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from .errors import QueryCancelledError, QueryTimeoutError


class Deadline:
    """A per-query time budget plus an explicit cancellation flag.

    ``seconds=None`` means no time limit — the deadline is then only a
    cancellation token.  ``cancel()`` may be called from any thread;
    the running query observes it at its next checkpoint.
    """

    __slots__ = ("seconds", "expires_at", "_cancelled", "_cancel_reason")

    def __init__(self, seconds: float | None = None):
        self.seconds = seconds
        self.expires_at = None if seconds is None else time.monotonic() + seconds
        self._cancelled = False
        self._cancel_reason: str | None = None

    def cancel(self, reason: str | None = None) -> None:
        """Request cancellation; takes effect at the next checkpoint.

        ``reason`` (e.g. "server drain grace expired", "client
        disconnected") is carried into the
        :class:`~repro.errors.QueryCancelledError` message so operators
        can tell *why* a query died.
        """
        self._cancel_reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def remaining(self) -> float | None:
        """Seconds left, or ``None`` for an unbounded deadline."""
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - time.monotonic())

    def expired(self) -> bool:
        return self.expires_at is not None and time.monotonic() >= self.expires_at

    def check(self) -> None:
        """Raise if cancelled or past the deadline; otherwise return."""
        if self._cancelled:
            message = "query was cancelled"
            if self._cancel_reason:
                message += f" ({self._cancel_reason})"
            raise QueryCancelledError(message)
        if self.expires_at is not None and time.monotonic() >= self.expires_at:
            raise QueryTimeoutError(
                f"query exceeded its deadline of {self.seconds:.3f}s"
            )


_local = threading.local()


def current_deadline() -> Deadline | None:
    """The deadline active on this thread, if any."""
    return getattr(_local, "deadline", None)


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Install ``deadline`` as this thread's active deadline.

    Scopes nest: the innermost wins while active and the outer one is
    restored on exit.  ``None`` runs the body without a deadline (and
    shields it from an enclosing one — used by maintenance paths that
    must not be cancelled half way).
    """
    previous = current_deadline()
    _local.deadline = deadline
    try:
        yield deadline
    finally:
        _local.deadline = previous


def checkpoint() -> None:
    """Cancellation point: cheap no-op without an active deadline.

    Execution engines call this once per loop iteration (per outer
    binding, per candidate label, per materialized node...).  Raises
    :class:`~repro.errors.QueryTimeoutError` or
    :class:`~repro.errors.QueryCancelledError` when the thread's
    deadline says stop.
    """
    deadline = getattr(_local, "deadline", None)
    if deadline is not None:
        deadline.check()
