"""Per-query execution profiles: timed operator spans + counter deltas.

An :class:`ExecutionProfile` is what ``db.query(text, analyze=True)``
attaches to its result: the operator tree that actually ran, where each
node records wall-clock time, output cardinality, and the counter
deltas (values populated, records fetched, pages touched, ...) caused
by the operator *and its inputs*.  ``self_counters()`` subtracts the
children, isolating each operator's own work — the per-operator cost
accounting the paper's Sec. 6 discussion reasons with.

The rendering contract is stable: :meth:`ExecutionProfile.to_dict` for
programmatic consumers, :meth:`ExecutionProfile.render` for the
human-readable tree.  The CLI, the examples, and the benchmark harness
all go through these two methods.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from .counters import EMPTY_SNAPSHOT, CounterSnapshot

#: Counters shown on rendered span lines, with their short display names.
_RENDERED = (
    ("value_lookups", "values"),
    ("record_lookups", "records"),
    ("pages_touched", "pages"),
    ("physical_reads", "reads"),
    ("nodes_materialized", "materialized"),
    ("witnesses", "witnesses"),
    ("join_candidates", "join_candidates"),
)


def result_cardinality(result) -> int:
    """Best-effort "rows out" of an operator result.

    Works across the physical executor's intermediate shapes (witness
    sets, joined sets, grouped sets) and plain collections without
    importing any of them.
    """
    for attribute in ("matches", "pairs", "groups"):
        sequence = getattr(result, attribute, None)
        if isinstance(sequence, list):
            return len(sequence)
    try:
        return len(result)
    except TypeError:
        return 1


@dataclass
class ProfileNode:
    """One operator span: cumulative time/counters over its subtree."""

    op: str
    detail: str = ""
    seconds: float = 0.0
    output_rows: int | None = None
    counters: CounterSnapshot = EMPTY_SNAPSHOT
    children: list["ProfileNode"] = field(default_factory=list)

    def self_counters(self) -> CounterSnapshot:
        """This operator's own counter deltas, inputs excluded."""
        own = self.counters
        for child in self.children:
            own = own - child.counters
        return own

    def self_seconds(self) -> float:
        return max(0.0, self.seconds - sum(c.seconds for c in self.children))

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, op: str) -> list["ProfileNode"]:
        return [node for node in self.walk() if node.op == op]

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "detail": self.detail,
            "seconds": self.seconds,
            "output_rows": self.output_rows,
            "counters": self.counters.as_dict(),
            "self_counters": self.self_counters().as_dict(),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent: int = 0) -> str:
        own = self.self_counters()
        parts = [f"rows={self.output_rows}" if self.output_rows is not None else "rows=?"]
        parts.append(f"{self.self_seconds() * 1000:.2f}ms")
        for key, short in _RENDERED:
            value = own.get(key, 0)
            if value:
                parts.append(f"{short}={value}")
        line = "  " * indent + f"{self.op} {self.detail}".rstrip() + f"  [{' '.join(parts)}]"
        lines = [line]
        lines.extend(child.render(indent + 1) for child in self.children)
        return "\n".join(lines)


@dataclass
class ExecutionProfile:
    """The analyze output for one query execution."""

    query: str
    plan_mode: str
    elapsed_seconds: float
    root: ProfileNode
    totals: CounterSnapshot = EMPTY_SNAPSHOT

    def find(self, op: str) -> list[ProfileNode]:
        """All spans running the given operator."""
        return self.root.find(op)

    def total(self, counter: str) -> int:
        """One query-wide counter total (0 when the counter never moved)."""
        return self.totals.get(counter, 0)

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "plan_mode": self.plan_mode,
            "elapsed_seconds": self.elapsed_seconds,
            "totals": self.totals.as_dict(),
            "root": self.root.to_dict(),
        }

    def render(self) -> str:
        """The human-readable profile tree (EXPLAIN ANALYZE output)."""
        moved = self.totals.nonzero()
        headline = ", ".join(
            f"{short}={moved[key]}" for key, short in _RENDERED if key in moved
        )
        lines = [
            f"[{self.plan_mode}] {self.elapsed_seconds:.4f}s"
            + (f"  totals: {headline}" if headline else ""),
            self.root.render(),
        ]
        return "\n".join(lines)


class Profiler:
    """Builds a span tree around nested operator executions.

    Executors call :meth:`operator` around each handler; nesting follows
    the call stack, so the resulting tree mirrors the plan tree that
    actually ran.  ``counter_source`` is a zero-argument callable
    returning the current :class:`CounterSnapshot`.
    """

    def __init__(self, counter_source: Callable[[], CounterSnapshot]):
        self._source = counter_source
        self._stack: list[ProfileNode] = []
        self.roots: list[ProfileNode] = []

    @contextmanager
    def operator(self, op: str, detail: str = ""):
        node = ProfileNode(op=op, detail=detail)
        before = self._source()
        self._stack.append(node)
        started = time.perf_counter()
        try:
            yield node
        finally:
            node.seconds = time.perf_counter() - started
            self._stack.pop()
            node.counters = self._source() - before
            if self._stack:
                self._stack[-1].children.append(node)
            else:
                self.roots.append(node)

    def root(self) -> ProfileNode:
        """The single completed root span (errors if none or several)."""
        if len(self.roots) != 1:
            raise ValueError(f"profiler recorded {len(self.roots)} root spans")
        return self.roots[0]
