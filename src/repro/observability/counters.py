"""Immutable counter snapshots over the execution substrate.

Every layer of the stack keeps mutable counters (the store's logical
lookups, the buffer pool's hits and misses, the disk manager's physical
I/O, the index lookups, the matcher's candidate streams, the structural
join's pair counts).  Observability never reads those objects directly:
it takes a :class:`CounterSnapshot` before and after a unit of work and
subtracts.  Snapshots are immutable, so a captured profile cannot drift
when execution continues.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Iterator


class CounterSnapshot(Mapping):
    """An immutable ``name -> int`` view of a set of counters.

    Behaves like a read-only mapping; ``a - b`` yields the per-key
    difference (keys are the union of both operands, missing keys count
    as zero) — the delta of work done between two snapshots.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Mapping | None = None, **extra: int):
        merged = dict(data) if data else {}
        merged.update(extra)
        object.__setattr__(self, "_data", merged)

    # -- Mapping protocol ------------------------------------------------
    def __getitem__(self, key: str) -> int:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: str, default: int = 0) -> int:
        return self._data.get(key, default)

    # -- immutability ----------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        raise TypeError("CounterSnapshot is immutable")

    def __setitem__(self, key: str, value) -> None:
        raise TypeError("CounterSnapshot is immutable")

    # -- arithmetic ------------------------------------------------------
    def __sub__(self, other: "CounterSnapshot | Mapping") -> "CounterSnapshot":
        keys = set(self._data) | set(other)
        return CounterSnapshot(
            {key: self.get(key, 0) - other.get(key, 0) for key in keys}
        )

    def __add__(self, other: "CounterSnapshot | Mapping") -> "CounterSnapshot":
        keys = set(self._data) | set(other)
        return CounterSnapshot(
            {key: self.get(key, 0) + other.get(key, 0) for key in keys}
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, CounterSnapshot):
            return self._data == other._data
        if isinstance(other, Mapping):
            return self._data == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._data.items()))

    def as_dict(self) -> dict[str, int]:
        """A mutable copy (for JSON serialization and the like)."""
        return dict(self._data)

    def nonzero(self) -> dict[str, int]:
        """Only the counters that moved — compact delta rendering."""
        return {key: value for key, value in self._data.items() if value}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._data.items()))
        return f"<CounterSnapshot {inner}>"


EMPTY_SNAPSHOT = CounterSnapshot()


def snapshot_counters(store, indexes=None, matcher=None) -> CounterSnapshot:
    """One flat snapshot across every instrumented layer.

    ``store`` is required (it owns the buffer pool and disk manager);
    ``indexes`` and ``matcher`` are included when provided.  The
    module-global structural-join counters are always included.  All
    arguments are duck-typed so this module imports none of the layers
    it observes.
    """
    from ..indexing.columnar import columnar_statistics
    from ..pattern.structural_join import join_statistics
    from ..query.optimizer import optimizer_statistics

    data: dict[str, int] = {}
    data.update(store.counters.snapshot())
    data.update(store.pool.counters.snapshot())
    data.update(store.disk.counters.snapshot())
    data.update(join_statistics().snapshot())
    data.update(columnar_statistics().snapshot())
    data.update(optimizer_statistics().snapshot())
    # Fault-injection and crash-recovery layers, when present (the disk
    # may be a FaultyDiskManager; the store keeps recovery counters).
    recovery = getattr(store, "recovery", None)
    if recovery is not None:
        data.update(recovery.snapshot())
    fault_counters = getattr(store.disk, "fault_counters", None)
    if fault_counters is not None:
        data.update(fault_counters.snapshot())
    ingest_stats = getattr(store, "ingest_stats", None)
    if ingest_stats is not None:
        data.update(ingest_stats.snapshot())
    if indexes is not None:
        data.update(indexes.work_counters())
    if matcher is not None:
        data.update(matcher.stats.snapshot())
    # Derived: pages touched = logical page requests against the pool.
    data["pages_touched"] = data.get("hits", 0) + data.get("misses", 0)
    return CounterSnapshot(data)
