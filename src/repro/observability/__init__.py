"""Execution observability: counters, per-operator profiles, traces.

The paper's evaluation (Sec. 6) argues about *why* the GROUPBY plan
wins — pages touched, values populated, witnesses sorted — not just how
long it took.  This package is the instrument panel for those claims:

* :mod:`repro.observability.counters` — immutable point-in-time
  snapshots of every counter the substrate maintains (store, buffer
  pool, disk, indexes, matcher, structural joins), with snapshot
  subtraction for deltas;
* :mod:`repro.observability.profile` — the per-query
  :class:`ExecutionProfile`: a tree of timed operator spans, each
  carrying output cardinality and the counter deltas its subtree
  caused;
* :mod:`repro.observability.trace` — :class:`QueryTrace`, a
  context-manager hook that hands every profiled query to external
  collectors.

Entry points are on the :class:`~repro.query.database.Database` facade:
``db.query(text, analyze=True)`` attaches a profile to the result, and
``db.explain(text)`` describes the plans without executing them.
"""

from .counters import CounterSnapshot, snapshot_counters
from .profile import ExecutionProfile, ProfileNode, Profiler, result_cardinality
from .trace import QueryTrace, TraceEvent, active_traces, tracing_is_active

__all__ = [
    "CounterSnapshot",
    "snapshot_counters",
    "ExecutionProfile",
    "ProfileNode",
    "Profiler",
    "result_cardinality",
    "QueryTrace",
    "TraceEvent",
    "active_traces",
    "tracing_is_active",
]
