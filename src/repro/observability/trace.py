"""Query tracing: a context-manager hook API for external collectors.

A :class:`QueryTrace` subscribes to query executions while its ``with``
block is open.  Every query the :class:`~repro.query.database.Database`
runs inside the block is profiled (as if ``analyze=True``) and handed
to the trace as a :class:`TraceEvent`:

>>> with QueryTrace() as trace:
...     db.query(QUERY)
>>> trace.events[0].profile.render()

External collectors plug in via ``on_event``:

>>> with QueryTrace(on_event=lambda event: log.info(event.plan_mode)):
...     db.query(QUERY)

Traces nest; every active trace receives every event.  A trace can also
be passed explicitly to one call — ``db.query(text, trace=trace)`` —
without being globally active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .counters import CounterSnapshot
from .profile import ExecutionProfile


@dataclass(frozen=True)
class TraceEvent:
    """One traced query execution."""

    query: str
    plan_mode: str
    elapsed_seconds: float
    profile: ExecutionProfile
    counters: CounterSnapshot

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "plan_mode": self.plan_mode,
            "elapsed_seconds": self.elapsed_seconds,
            "counters": self.counters.as_dict(),
            "profile": self.profile.to_dict(),
        }


# The stack of globally active traces (outermost first).  Session-scoped
# by design: the reproduction is single-process, and the Database reads
# this at query time.
_ACTIVE: list["QueryTrace"] = []


def active_traces() -> tuple["QueryTrace", ...]:
    """The traces currently subscribed via ``with`` blocks."""
    return tuple(_ACTIVE)


def tracing_is_active() -> bool:
    return bool(_ACTIVE)


@dataclass
class QueryTrace:
    """Collects :class:`TraceEvent` records for queries run under it."""

    on_event: Callable[[TraceEvent], None] | None = None
    events: list[TraceEvent] = field(default_factory=list)

    @property
    def profiles(self) -> list[ExecutionProfile]:
        return [event.profile for event in self.events]

    def record(self, event: TraceEvent) -> None:
        """Deliver one event (called by the Database)."""
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(event)

    def __enter__(self) -> "QueryTrace":
        _ACTIVE.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        # Remove this specific trace even under exotic exit orders.
        for index in range(len(_ACTIVE) - 1, -1, -1):
            if _ACTIVE[index] is self:
                del _ACTIVE[index]
                break
